"""Trace serialization: JSONL, Chrome trace-event JSON, and a timeline.

Two machine formats and one human format:

* :func:`to_jsonl` — one JSON object per line, schema-stable, greppable;
  the archival format.
* :func:`to_chrome` — the Chrome trace-event format, loadable in
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Stall
  windows become duration spans on per-processor tracks; protocol
  messages become flow arrows between endpoint tracks.  Simulation
  cycles map 1:1 onto the format's microsecond timestamps, so "1 us" in
  the viewer reads as "1 cycle".
* :func:`format_timeline` — an aligned plain-text timeline for terminal
  inspection (the ``repro trace`` subcommand's default output).

Flow arrows need anchors: Perfetto binds ``s``/``f`` flow records to the
*enclosing slice* on their track, so every send/delivery event is given
a 1-cycle complete slice (``X``) for the arrow to attach to.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import TraceEvent

#: Formats the CLI accepts for ``--trace-format``.
FORMATS: Tuple[str, ...] = ("jsonl", "chrome")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl(events: Sequence[TraceEvent]) -> str:
    """One JSON object per event, one event per line.

    Key order is insertion order (``sort_keys`` would scramble the
    ``args`` pairs, which are ordered by the emitting site), so the
    output is deterministic and round-trips through :func:`from_jsonl`.
    """
    return "\n".join(json.dumps(event.to_dict()) for event in events)


def from_jsonl(text: str) -> Tuple[TraceEvent, ...]:
    """Parse :func:`to_jsonl` output back into events."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        events.append(
            TraceEvent(
                time=record["time"],
                category=record["category"],
                name=record["name"],
                phase=record.get("phase", "I"),
                track=record.get("track", ""),
                args=tuple(record.get("args", {}).items()),
                flow_id=record.get("flow_id"),
            )
        )
    return tuple(events)


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _track_ids(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """Stable thread ids: processor tracks first (P0, P1, ...), then the
    other components alphabetically."""
    tracks = {event.track for event in events}
    procs = sorted(
        (t for t in tracks if t.startswith("P") and t[1:].isdigit()),
        key=lambda t: int(t[1:]),
    )
    rest = sorted(tracks - set(procs))
    return {track: tid for tid, track in enumerate(procs + rest)}


def chrome_events(
    events: Sequence[TraceEvent], pid: int = 0
) -> List[dict]:
    """The ``traceEvents`` records of one run, under process id ``pid``."""
    tids = _track_ids(events)
    records: List[dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    # Perfetto sorts threads by sort_index, not name.
    records.extend(
        {
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "thread_sort_index",
            "args": {"sort_index": tid},
        }
        for tid in tids.values()
    )
    for event in events:
        tid = tids[event.track]
        base = {
            "pid": pid,
            "tid": tid,
            "ts": event.time,
            "cat": event.category,
            "name": event.name,
            "args": dict(event.args),
        }
        if event.phase == "B":
            records.append({**base, "ph": "B"})
        elif event.phase == "E":
            records.append({**base, "ph": "E"})
        elif event.phase in ("S", "F"):
            # A 1-cycle anchor slice for the flow arrow to bind to, then
            # the flow record itself (start or finish, matched by id).
            # Un-linked deliveries (flow_id None) keep the slice only.
            records.append({**base, "ph": "X", "dur": 1})
            if event.flow_id is not None:
                records.append(
                    {
                        **base,
                        "ph": "s" if event.phase == "S" else "f",
                        "id": event.flow_id,
                        **({"bp": "e"} if event.phase == "F" else {}),
                    }
                )
        else:
            records.append({**base, "ph": "i", "s": "t"})
    return records


def to_chrome(
    groups: Sequence[Tuple[str, Sequence[TraceEvent]]],
) -> dict:
    """A Chrome trace-event JSON object from one or more event streams.

    Each ``(label, events)`` group becomes its own process (pid) named
    ``label``, so a multi-run campaign trace opens in Perfetto as one
    process per run with per-processor threads inside it.
    """
    records: List[dict] = []
    for pid, (label, events) in enumerate(groups):
        records.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": label},
            }
        )
        records.extend(chrome_events(events, pid=pid))
    return {"traceEvents": records, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# File output
# ----------------------------------------------------------------------
def write_trace(
    path: str,
    groups: Sequence[Tuple[str, Sequence[TraceEvent]]],
    fmt: str = "chrome",
) -> None:
    """Write event groups to ``path`` in ``fmt`` (``jsonl``/``chrome``).

    JSONL output prefixes each event with its group label under the
    ``"run"`` key so multi-run files stay self-describing.
    """
    if fmt == "chrome":
        with open(path, "w") as handle:
            json.dump(to_chrome(groups), handle)
        return
    if fmt == "jsonl":
        with open(path, "w") as handle:
            for label, events in groups:
                for event in events:
                    record = event.to_dict()
                    record["run"] = label
                    handle.write(json.dumps(record) + "\n")
        return
    raise ValueError(f"unknown trace format {fmt!r}; choose from {FORMATS}")


# ----------------------------------------------------------------------
# Terminal timeline
# ----------------------------------------------------------------------
_PHASE_GLYPH = {"I": "*", "B": "[", "E": "]", "S": ">", "F": "<"}


def format_timeline(
    events: Sequence[TraceEvent], limit: Optional[int] = None
) -> str:
    """An aligned, human-readable timeline of an event stream.

    Span closes (``]``) carry a ``+N`` duration suffix matched against
    the opening ``[`` on the same track — on pipelined-core traces this
    reads off each issue-slot occupancy (``P0.s1 ] core.read@x +14``)
    without hunting for the opening line.
    """
    shown = list(events[:limit]) if limit is not None else list(events)
    if not shown:
        return "(no events)"
    time_width = len(str(shown[-1].time))
    track_width = max(len(event.track) for event in shown)
    open_spans: Dict[Tuple[str, str, str], int] = {}
    lines = []
    for event in shown:
        glyph = _PHASE_GLYPH.get(event.phase, "?")
        args = " ".join(f"{k}={v}" for k, v in event.args)
        flow = f" ~{event.flow_id}" if event.flow_id is not None else ""
        span_key = (event.track, event.category, event.name)
        duration = ""
        if event.phase == "B":
            open_spans[span_key] = event.time
        elif event.phase == "E" and span_key in open_spans:
            duration = f" +{event.time - open_spans.pop(span_key)}"
        lines.append(
            f"@{event.time:>{time_width}} {event.track:<{track_width}} "
            f"{glyph} {event.category}.{event.name}"
            + (f" {args}" if args else "")
            + duration
            + flow
        )
    if limit is not None and len(events) > limit:
        lines.append(f"... ({len(events) - limit} more events)")
    return "\n".join(lines)
