"""Job kinds: from wire parameters to executable, digestable work.

A service job is a *request for verification work*, named by content:
every job normalizes its parameters, derives the exact work it stands
for, and hashes that into a **digest** — for campaign-shaped kinds
(``litmus``, ``conformance``) the digest is the
:func:`~repro.campaign.journal.campaign_digest` over the batch's
:class:`RunSpec` digests, i.e. the same content hash the journal and
cache key on; for search-shaped kinds (``explore``, ``verify``) it is a
hash of the canonical parameters.  Two submissions asking for the same
work therefore collide on the digest no matter how their JSON was
spelled, which is what makes service-level dedup sound: coalescing two
jobs with equal digests can never conflate different work.

Only catalog-named litmus tests are accepted over the wire — the
service runs *named* verification workloads, it does not execute
arbitrary uploaded programs.

Job results are plain JSON-ready dicts (summaries, not pickled
internals), so any HTTP client can consume them without this package.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign import PolicySpec, RunSpec
from repro.campaign.journal import campaign_digest
from repro.conformance import plan_conformance, judge_conformance
from repro.litmus.catalog import catalog_by_name, standard_catalog
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import config_by_name
from repro.models.policies import policy_by_name

#: Supported job kinds, in documentation order.
JOB_KINDS = ("litmus", "explore", "verify", "conformance")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class JobError(ValueError):
    """A submission is malformed: unknown kind, bad parameter, ..."""


def _require_int(params: Dict[str, Any], key: str, default: int,
                 low: int, high: int) -> int:
    value = params.get(key, default)
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise JobError(f"{key} must be an integer, got {value!r}")
    if not low <= value <= high:
        raise JobError(f"{key} must be in [{low}, {high}], got {value}")
    return value


def _lookup_test(name: str):
    try:
        return catalog_by_name()[name]
    except KeyError:
        raise JobError(f"unknown litmus test {name!r}")


def _require_test(params: Dict[str, Any]) -> str:
    name = str(params.get("test", "fig1_dekker"))
    _lookup_test(name)
    return name


def _require_policy(params: Dict[str, Any]) -> str:
    name = str(params.get("policy", "DEF2"))
    try:
        policy_by_name(name)
    except ValueError as exc:
        raise JobError(str(exc))
    return name


def _require_machine(params: Dict[str, Any]) -> str:
    name = str(params.get("machine", "net_cache"))
    try:
        config_by_name(name)
    except ValueError as exc:
        raise JobError(str(exc))
    return name


def _obs_key(observable) -> str:
    """A canonical JSON string for an Observable (dict-key friendly)."""
    return json.dumps(
        {"registers": observable.registers, "memory": observable.memory},
        default=list,
        separators=(",", ":"),
    )


def _params_digest(kind: str, params: Dict[str, Any]) -> str:
    canon = json.dumps({"kind": kind, "params": params}, sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()


@dataclass
class JobWork:
    """A normalized job: its identity and how to execute it.

    ``specs`` is the campaign batch for campaign-shaped kinds (empty
    for search-shaped kinds, which run via ``direct``).  Exactly one of
    ``collect`` (summarise a finished campaign) and ``direct`` (execute
    in-process and summarise) is set.
    """

    kind: str
    params: Dict[str, Any]
    digest: str
    specs: List[RunSpec] = field(default_factory=list)
    collect: Optional[Callable[[Any], Dict[str, Any]]] = None
    direct: Optional[Callable[[], Dict[str, Any]]] = None

    @property
    def total_runs(self) -> int:
        return len(self.specs)


# ----------------------------------------------------------------------
# Kind builders
# ----------------------------------------------------------------------
def _build_litmus(params: Dict[str, Any]) -> JobWork:
    test_name = _require_test(params)
    policy = _require_policy(params)
    machine = _require_machine(params)
    runs = _require_int(params, "runs", 50, 1, 10_000)
    base_seed = _require_int(params, "base_seed", 12345, 0, 2**31)
    max_cycles = _require_int(params, "max_cycles", 1_000_000, 1, 10**8)
    norm = {
        "test": test_name, "policy": policy, "machine": machine,
        "runs": runs, "base_seed": base_seed, "max_cycles": max_cycles,
    }
    runner = LitmusRunner()
    test = _lookup_test(test_name)
    policy_spec = PolicySpec.of(policy_by_name(policy))
    config = config_by_name(machine)
    specs = runner.campaign_specs(
        test, policy_spec, config, runs, base_seed, max_cycles=max_cycles,
    )

    def collect(campaign) -> Dict[str, Any]:
        result = runner.collect(
            test, policy_spec.name, config.name, campaign.results
        )
        return {
            "test": test_name,
            "policy": result.policy_name,
            "machine": result.config_name,
            "runs": result.runs,
            "completed_runs": result.completed_runs,
            "failed_runs": result.failed_runs,
            "histogram": {
                ",".join(map(str, outcome)): count
                for outcome, count in sorted(result.histogram.items())
            },
            "sc_violations": {
                ",".join(map(str, outcome)): count
                for outcome, count in sorted(result.sc_violations.items())
            },
            "violated_sc": result.violated_sc,
            "mean_cycles": result.mean_cycles,
            "preempted": result.preempted,
        }

    return JobWork(
        kind="litmus",
        params=norm,
        digest=campaign_digest(s.digest() for s in specs),
        specs=specs,
        collect=collect,
    )


def _build_conformance(params: Dict[str, Any]) -> JobWork:
    machines = params.get("machines")
    policies = params.get("policies")
    tests = params.get("tests")
    runs_per_test = _require_int(params, "runs_per_test", 30, 1, 1_000)
    base_seed = _require_int(params, "base_seed", 2024, 0, 2**31)
    if machines is not None:
        if not isinstance(machines, (list, tuple)) or not machines:
            raise JobError("machines must be a non-empty list of names")
        configs = []
        for name in machines:
            try:
                configs.append(config_by_name(str(name)))
            except ValueError as exc:
                raise JobError(str(exc))
    else:
        configs = None
    if policies is not None:
        if not isinstance(policies, (list, tuple)) or not policies:
            raise JobError("policies must be a non-empty list of names")
        factories = []
        for name in policies:
            try:
                factories.append(policy_by_name(str(name)))
            except ValueError as exc:
                raise JobError(str(exc))
    else:
        factories = None
    if tests is not None:
        if not isinstance(tests, (list, tuple)) or not tests:
            raise JobError("tests must be a non-empty list of names")
        battery = [_lookup_test(str(name)) for name in tests]
    else:
        battery = None

    kwargs: Dict[str, Any] = {
        "runs_per_test": runs_per_test, "base_seed": base_seed,
    }
    if configs is not None:
        kwargs["configs"] = configs
    if factories is not None:
        kwargs["policies"] = factories
    if battery is not None:
        kwargs["tests"] = battery
    plan = plan_conformance(**kwargs)
    norm = {
        "machines": [c.name for c in (configs or [])] or None,
        "policies": (list(map(str, policies)) if policies else None),
        "tests": [t.name for t in (battery or standard_catalog())],
        "runs_per_test": runs_per_test,
        "base_seed": base_seed,
    }

    def collect(campaign) -> Dict[str, Any]:
        report = judge_conformance(plan, campaign)
        return {
            "runs_per_test": report.runs_per_test,
            "preempted": report.preempted,
            "cells": [
                {
                    "machine": cell.config_name,
                    "policy": cell.policy_name,
                    "verdict": cell.verdict,
                    "violated_tests": cell.violated_tests,
                    "incomplete": cell.incomplete,
                }
                for cell in report.cells
            ],
            "table": report.describe(),
        }

    return JobWork(
        kind="conformance",
        params=norm,
        digest=campaign_digest(s.digest() for s in plan.specs),
        specs=plan.specs,
        collect=collect,
    )


def _build_explore(params: Dict[str, Any]) -> JobWork:
    test_name = _require_test(params)
    policy = _require_policy(params)
    machine = _require_machine(params)
    max_delays = _require_int(params, "max_delays", 2, 0, 16)
    max_runs = _require_int(params, "max_runs", 5_000, 1, 200_000)
    max_cycles = _require_int(params, "max_cycles", 200_000, 1, 10**8)
    norm = {
        "test": test_name, "policy": policy, "machine": machine,
        "max_delays": max_delays, "max_runs": max_runs,
        "max_cycles": max_cycles,
    }

    def direct() -> Dict[str, Any]:
        from repro.api import explore

        report = explore(
            _lookup_test(test_name).program,
            policy,
            machine=machine,
            max_delays=max_delays,
            max_runs=max_runs,
            max_cycles=max_cycles,
        )
        return {
            "test": test_name,
            "policy": report.policy_name,
            "machine": machine,
            "max_delays": report.max_delays,
            "runs": report.runs,
            "exhausted": report.exhausted,
            "preempted": report.preempted,
            "pruned_decisions": report.pruned_decisions,
            "outcomes": {
                _obs_key(outcome): count
                for outcome, count in report.outcomes.items()
            },
        }

    return JobWork(
        kind="explore",
        params=norm,
        digest=_params_digest("explore", norm),
        direct=direct,
    )


def _build_verify(params: Dict[str, Any]) -> JobWork:
    test_name = _require_test(params)
    max_states = _require_int(params, "max_states", 2_000_000, 1, 10**8)
    norm = {"test": test_name, "max_states": max_states}

    def direct() -> Dict[str, Any]:
        from repro.api import verify_sc

        test = _lookup_test(test_name)
        sc_set = verify_sc(test.program, max_states=max_states)
        forbidden = test.forbidden
        projected = {test.project(obs) for obs in sc_set}
        return {
            "test": test_name,
            "sc_outcomes": sorted(_obs_key(obs) for obs in sc_set),
            "forbidden": (
                ",".join(map(str, forbidden))
                if forbidden is not None else None
            ),
            "forbidden_is_sc": (
                tuple(forbidden) in projected
                if forbidden is not None else None
            ),
        }

    return JobWork(
        kind="verify",
        params=norm,
        digest=_params_digest("verify", norm),
        direct=direct,
    )


_BUILDERS = {
    "litmus": _build_litmus,
    "conformance": _build_conformance,
    "explore": _build_explore,
    "verify": _build_verify,
}


def build_job(kind: str, params: Optional[Dict[str, Any]] = None) -> JobWork:
    """Normalize and validate a submission into executable work.

    Raises :class:`JobError` for anything malformed; the HTTP layer
    maps that to a 400 with the message as the body, so every rejection
    says exactly which parameter was wrong.
    """
    if kind not in _BUILDERS:
        raise JobError(
            f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
        )
    params = dict(params or {})
    unknown = set(params) - _ALLOWED_PARAMS[kind]
    if unknown:
        raise JobError(
            f"unknown parameter(s) for {kind}: {sorted(unknown)}"
        )
    return _BUILDERS[kind](params)


_ALLOWED_PARAMS = {
    "litmus": {"test", "policy", "machine", "runs", "base_seed",
               "max_cycles"},
    "conformance": {"machines", "policies", "tests", "runs_per_test",
                    "base_seed"},
    "explore": {"test", "policy", "machine", "max_delays", "max_runs",
                "max_cycles"},
    "verify": {"test", "max_states"},
}
