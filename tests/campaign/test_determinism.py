"""Serial/parallel equivalence: the campaign layer's core guarantee.

For a fixed ``(test, policy, config, base_seed)`` the parallel executor
must reproduce the serial executor's histograms and ``sc_violations``
exactly — scheduling (worker count, completion order) can never leak
into results.  The quick tests cover representative cells; the ``slow``
test sweeps the whole litmus catalog.
"""

import pytest

from repro.campaign import ParallelExecutor, SerialExecutor
from repro.conformance import run_conformance
from repro.litmus.catalog import (
    fig1_dekker,
    fig1_dekker_all_sync,
    message_passing_sync,
    standard_catalog,
)
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import NET_CACHE, NET_NOCACHE
from repro.models.policies import Def2Policy, RelaxedPolicy, SCPolicy


@pytest.fixture(scope="module")
def parallel():
    with ParallelExecutor(jobs=2) as executor:
        yield executor


def _assert_equivalent(runner, parallel, test, policy, config, runs=15, seed=77):
    serial_result = runner.run(
        test, policy, config, runs=runs, base_seed=seed,
        executor=SerialExecutor(),
    )
    parallel_result = runner.run(
        test, policy, config, runs=runs, base_seed=seed, executor=parallel
    )
    assert serial_result.histogram == parallel_result.histogram
    assert serial_result.sc_violations == parallel_result.sc_violations
    assert serial_result.completed_runs == parallel_result.completed_runs
    assert serial_result.mean_cycles == parallel_result.mean_cycles


class TestRunnerEquivalence:
    def test_relaxed_on_network(self, parallel):
        _assert_equivalent(
            LitmusRunner(), parallel, fig1_dekker(), RelaxedPolicy, NET_NOCACHE
        )

    def test_def2_on_caches(self, parallel):
        _assert_equivalent(
            LitmusRunner(), parallel, message_passing_sync(), Def2Policy,
            NET_CACHE, runs=10,
        )

    @pytest.mark.slow
    def test_full_catalog_equivalence(self, parallel):
        runner = LitmusRunner()
        for test in standard_catalog():
            for policy, config in (
                (RelaxedPolicy, NET_NOCACHE),
                (SCPolicy, NET_NOCACHE),
                (Def2Policy, NET_CACHE),
            ):
                _assert_equivalent(
                    runner, parallel, test, policy, config, runs=12
                )


class TestConformanceEquivalence:
    def test_small_grid_equivalence(self, parallel):
        kwargs = dict(
            configs=[NET_NOCACHE, NET_CACHE],
            policies=[RelaxedPolicy, SCPolicy, Def2Policy],
            tests=[fig1_dekker(), fig1_dekker_all_sync()],
            runs_per_test=8,
        )
        serial_report = run_conformance(executor=SerialExecutor(), **kwargs)
        parallel_report = run_conformance(executor=parallel, **kwargs)
        for s_cell, p_cell in zip(serial_report.cells, parallel_report.cells):
            assert s_cell.config_name == p_cell.config_name
            assert s_cell.policy_name == p_cell.policy_name
            assert s_cell.verdict == p_cell.verdict
            assert s_cell.violations == p_cell.violations
            assert s_cell.incomplete == p_cell.incomplete


class TestExplorerEquivalence:
    def test_explore_serial_vs_parallel(self, parallel):
        from repro.explore.explorer import explore_program

        program = fig1_dekker(warm=True).executable_program()
        serial_report = explore_program(
            program, RelaxedPolicy, max_delays=2, executor=SerialExecutor()
        )
        parallel_report = explore_program(
            program, RelaxedPolicy, max_delays=2, executor=parallel
        )
        assert serial_report.outcomes == parallel_report.outcomes
        assert serial_report.runs == parallel_report.runs
        assert serial_report.exhausted == parallel_report.exhausted
