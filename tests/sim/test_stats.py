"""Unit tests for run statistics and stall accounting."""

from repro.sim.stats import StallReason, Stats


class TestCounters:
    def test_bump_and_count(self):
        stats = Stats()
        stats.bump("msgs")
        stats.bump("msgs", 4)
        assert stats.count("msgs") == 5

    def test_unknown_counter_zero(self):
        assert Stats().count("nothing") == 0


class TestStallAccounting:
    def test_window_accumulates(self):
        stats = Stats()
        stats.stall_begin(0, StallReason.READ_VALUE, now=10)
        stats.stall_end(0, StallReason.READ_VALUE, now=25)
        assert stats.stall_cycles(proc=0, reason=StallReason.READ_VALUE) == 15

    def test_begin_idempotent_while_open(self):
        stats = Stats()
        stats.stall_begin(0, StallReason.READ_VALUE, now=10)
        stats.stall_begin(0, StallReason.READ_VALUE, now=20)  # ignored
        stats.stall_end(0, StallReason.READ_VALUE, now=30)
        assert stats.stall_cycles() == 20

    def test_end_without_begin_is_noop(self):
        stats = Stats()
        stats.stall_end(0, StallReason.READ_VALUE, now=5)
        assert stats.stall_cycles() == 0

    def test_multiple_windows_sum(self):
        stats = Stats()
        for start, end in [(0, 5), (10, 12)]:
            stats.stall_begin(1, StallReason.SC_PREVIOUS_GP, now=start)
            stats.stall_end(1, StallReason.SC_PREVIOUS_GP, now=end)
        assert stats.stall_cycles(proc=1) == 7

    def test_filtering(self):
        stats = Stats()
        stats.stall_begin(0, StallReason.READ_VALUE, now=0)
        stats.stall_end(0, StallReason.READ_VALUE, now=3)
        stats.stall_begin(1, StallReason.DEF2_SYNC_COMMIT, now=0)
        stats.stall_end(1, StallReason.DEF2_SYNC_COMMIT, now=5)
        assert stats.stall_cycles() == 8
        assert stats.stall_cycles(proc=0) == 3
        assert stats.stall_cycles(reason=StallReason.DEF2_SYNC_COMMIT) == 5
        assert stats.stall_cycles(proc=0, reason=StallReason.DEF2_SYNC_COMMIT) == 0

    def test_end_all_closes_open_windows(self):
        stats = Stats()
        stats.stall_begin(0, StallReason.READ_VALUE, now=10)
        stats.end_all_stalls(now=50)
        assert stats.stall_cycles() == 40
        # closing again adds nothing
        stats.end_all_stalls(now=99)
        assert stats.stall_cycles() == 40

    def test_breakdown(self):
        stats = Stats()
        stats.stall_begin(2, StallReason.SAME_LOCATION, now=1)
        stats.stall_end(2, StallReason.SAME_LOCATION, now=4)
        assert stats.stall_breakdown() == {(2, StallReason.SAME_LOCATION): 3}

    def test_describe_includes_everything(self):
        stats = Stats()
        stats.total_cycles = 100
        stats.bump("x")
        stats.stall_begin(0, StallReason.READ_VALUE, now=0)
        stats.stall_end(0, StallReason.READ_VALUE, now=9)
        text = stats.describe()
        assert "100" in text and "x: 1" in text and "read_value" in text
