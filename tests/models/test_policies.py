"""Unit tests for the ordering policies' gate and protocol decisions."""

import pytest

from repro.core.operation import OpKind
from repro.cpu.access import MemoryAccess
from repro.models.base import BlockKind
from repro.models.base import policy_names
from repro.models.policies import (
    Def1Policy,
    Def2Policy,
    Def2RPolicy,
    PSOPolicy,
    RelaxedPolicy,
    SCPolicy,
    TSOPolicy,
    policy_by_name,
)
from repro.sim.stats import StallReason


class FakeCache:
    def __init__(self, over_capacity=False, reserved=False):
        self._over = over_capacity
        self._reserved = reserved

    @property
    def over_capacity(self):
        return self._over

    def any_reserved(self):
        return self._reserved


class FakeProc:
    def __init__(self, pending=(), cache=None):
        self.pending_accesses = list(pending)
        self.cache = cache


def access(kind, committed=False, gp=False):
    a = MemoryAccess(proc=0, kind=kind, location="x")
    if committed or gp:
        a.mark_committed(0)
    if gp:
        a.mark_globally_performed(0)
    return a


class TestRelaxed:
    def test_never_gates(self):
        policy = RelaxedPolicy()
        proc = FakeProc(pending=[access(OpKind.WRITE)])
        for kind in OpKind:
            assert policy.issue_gate(proc, kind) is None

    def test_block_none(self):
        assert RelaxedPolicy().block_kind(OpKind.WRITE) is BlockKind.NONE


class TestSC:
    def test_gates_on_any_pending(self):
        policy = SCPolicy()
        proc = FakeProc(pending=[access(OpKind.READ)])
        assert policy.issue_gate(proc, OpKind.WRITE) is StallReason.SC_PREVIOUS_GP

    def test_clear_when_no_pending(self):
        assert SCPolicy().issue_gate(FakeProc(), OpKind.WRITE) is None


class TestDef1:
    def test_condition2_sync_waits_for_previous(self):
        policy = Def1Policy()
        proc = FakeProc(pending=[access(OpKind.WRITE)])
        assert (
            policy.issue_gate(proc, OpKind.SYNC_WRITE)
            is StallReason.DEF1_SYNC_WAITS_PREV
        )

    def test_condition3_everything_waits_for_sync_gp(self):
        policy = Def1Policy()
        proc = FakeProc(pending=[access(OpKind.SYNC_WRITE, committed=True)])
        assert (
            policy.issue_gate(proc, OpKind.READ) is StallReason.DEF1_WAITS_SYNC_GP
        )

    def test_data_overlaps_data(self):
        policy = Def1Policy()
        proc = FakeProc(pending=[access(OpKind.WRITE)])
        assert policy.issue_gate(proc, OpKind.READ) is None

    def test_clear_after_gp(self):
        assert Def1Policy().issue_gate(FakeProc(), OpKind.SYNC_WRITE) is None


class TestDef2:
    def test_condition4_waits_for_sync_commit_only(self):
        policy = Def2Policy()
        uncommitted_sync = access(OpKind.SYNC_WRITE)
        proc = FakeProc(pending=[uncommitted_sync], cache=FakeCache())
        assert (
            policy.issue_gate(proc, OpKind.READ) is StallReason.DEF2_SYNC_COMMIT
        )

    def test_committed_sync_releases_the_gate(self):
        """The whole point: commit suffices, global perform does not gate."""
        policy = Def2Policy()
        committed_sync = access(OpKind.SYNC_WRITE, committed=True)
        proc = FakeProc(pending=[committed_sync], cache=FakeCache())
        assert policy.issue_gate(proc, OpKind.READ) is None

    def test_data_never_gates_data(self):
        policy = Def2Policy()
        proc = FakeProc(pending=[access(OpKind.WRITE)], cache=FakeCache())
        assert policy.issue_gate(proc, OpKind.WRITE) is None

    def test_flush_stall_when_over_capacity(self):
        policy = Def2Policy()
        proc = FakeProc(cache=FakeCache(over_capacity=True))
        assert (
            policy.issue_gate(proc, OpKind.READ)
            is StallReason.DEF2_FLUSH_RESERVED
        )

    def test_miss_bound_while_reserved(self):
        policy = Def2Policy(miss_bound_while_reserved=1)
        proc = FakeProc(
            pending=[access(OpKind.WRITE)], cache=FakeCache(reserved=True)
        )
        assert policy.issue_gate(proc, OpKind.READ) is StallReason.DEF2_MISS_BOUND
        unreserved = FakeProc(pending=[access(OpKind.WRITE)], cache=FakeCache())
        assert policy.issue_gate(unreserved, OpKind.READ) is None

    def test_sync_blocks_to_commit(self):
        policy = Def2Policy()
        assert policy.block_kind(OpKind.SYNC_WRITE) is BlockKind.COMMIT
        assert policy.block_kind(OpKind.SYNC_RMW) is BlockKind.COMMIT
        assert policy.block_kind(OpKind.WRITE) is BlockKind.NONE

    def test_sync_reads_treated_as_writes(self):
        policy = Def2Policy()
        assert policy.needs_exclusive(OpKind.SYNC_READ)
        assert policy.sync_protocol(OpKind.SYNC_READ)

    def test_requires_cache(self):
        assert Def2Policy.requires_cache


class TestDef2R:
    def test_sync_read_is_protocol_data(self):
        policy = Def2RPolicy()
        assert not policy.needs_exclusive(OpKind.SYNC_READ)
        assert not policy.sync_protocol(OpKind.SYNC_READ)

    def test_writing_syncs_unchanged(self):
        policy = Def2RPolicy()
        assert policy.needs_exclusive(OpKind.SYNC_WRITE)
        assert policy.sync_protocol(OpKind.SYNC_RMW)


class TestTSO:
    def test_loads_pass_buffered_stores(self):
        """The one TSO relaxation: a read overtakes pending writes."""
        policy = TSOPolicy()
        proc = FakeProc(pending=[access(OpKind.WRITE)])
        assert policy.issue_gate(proc, OpKind.READ) is None

    def test_load_load_order_kept(self):
        policy = TSOPolicy()
        proc = FakeProc(pending=[access(OpKind.READ)])
        assert (
            policy.issue_gate(proc, OpKind.READ)
            is StallReason.TSO_LOAD_ORDER
        )

    def test_stores_never_pass_loads(self):
        policy = TSOPolicy()
        proc = FakeProc(pending=[access(OpKind.READ)])
        assert (
            policy.issue_gate(proc, OpKind.WRITE)
            is StallReason.TSO_STORE_ORDER
        )

    def test_store_store_serialized_only_on_cached_machines(self):
        policy = TSOPolicy()
        buffered = FakeProc(pending=[access(OpKind.WRITE)])
        assert policy.issue_gate(buffered, OpKind.WRITE) is None
        cached = FakeProc(pending=[access(OpKind.WRITE)], cache=FakeCache())
        assert (
            policy.issue_gate(cached, OpKind.WRITE)
            is StallReason.TSO_STORE_ORDER
        )

    def test_atomics_are_full_fences(self):
        policy = TSOPolicy()
        proc = FakeProc(pending=[access(OpKind.WRITE)])
        assert (
            policy.issue_gate(proc, OpKind.SYNC_RMW)
            is StallReason.TSO_ATOMIC_FENCE
        )
        pending_sync = FakeProc(pending=[access(OpKind.SYNC_WRITE)])
        assert (
            policy.issue_gate(pending_sync, OpKind.READ)
            is StallReason.TSO_ATOMIC_FENCE
        )

    def test_clear_when_nothing_pending(self):
        policy = TSOPolicy()
        for kind in OpKind:
            assert policy.issue_gate(FakeProc(), kind) is None

    def test_forwarding_allowed(self):
        assert TSOPolicy.allows_store_forwarding


class TestPSO:
    def test_store_store_relaxed_even_with_caches(self):
        policy = PSOPolicy()
        cached = FakeProc(pending=[access(OpKind.WRITE)], cache=FakeCache())
        assert policy.issue_gate(cached, OpKind.WRITE) is None

    def test_load_ordering_stays_tso(self):
        policy = PSOPolicy()
        proc = FakeProc(pending=[access(OpKind.READ)])
        assert (
            policy.issue_gate(proc, OpKind.READ)
            is StallReason.TSO_LOAD_ORDER
        )
        assert (
            policy.issue_gate(proc, OpKind.WRITE)
            is StallReason.TSO_STORE_ORDER
        )

    def test_atomics_still_fence(self):
        policy = PSOPolicy()
        proc = FakeProc(pending=[access(OpKind.WRITE)], cache=FakeCache())
        assert (
            policy.issue_gate(proc, OpKind.SYNC_WRITE)
            is StallReason.TSO_ATOMIC_FENCE
        )


class TestProtocolTreatment:
    def test_data_ops_never_sync_protocol(self):
        for policy in (RelaxedPolicy(), SCPolicy(), Def1Policy(), Def2Policy()):
            assert not policy.sync_protocol(OpKind.READ)
            assert not policy.sync_protocol(OpKind.WRITE)

    def test_writes_always_need_exclusive(self):
        for policy in (RelaxedPolicy(), SCPolicy(), Def1Policy(), Def2Policy()):
            assert policy.needs_exclusive(OpKind.WRITE)
            assert policy.needs_exclusive(OpKind.SYNC_RMW)

    def test_plain_reads_never_need_exclusive(self):
        for policy in (RelaxedPolicy(), SCPolicy(), Def1Policy(), Def2Policy()):
            assert not policy.needs_exclusive(OpKind.READ)


class TestPolicyByName:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("RELAXED", RelaxedPolicy),
            ("sc", SCPolicy),
            ("def1", Def1Policy),
            ("DEF2", Def2Policy),
            ("def2-r", Def2RPolicy),
            ("DEF2_R", Def2RPolicy),
            ("tso", TSOPolicy),
            ("PSO", PSOPolicy),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(policy_by_name(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            policy_by_name("release-consistency")

    def test_program_specific_policies_not_name_constructible(self):
        from repro.delayset.policy import DelayPolicy  # registers it

        assert DelayPolicy.name not in policy_names()
        with pytest.raises(ValueError):
            policy_by_name(DelayPolicy.name)

    def test_registry_drives_the_lookup(self):
        for name in policy_names():
            assert policy_by_name(name).name == name
