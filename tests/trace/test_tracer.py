"""Tracer mechanics: the overhead contract, filtering, and the ring."""

import pickle

import pytest

from repro.sim.engine import Simulator
from repro.trace import CATEGORIES, TraceEvent, TraceSpec
from repro.trace.tracer import Tracer


def make_tracer():
    sim = Simulator()
    return sim, sim.tracer


class TestDisabledByDefault:
    def test_simulator_tracer_starts_disabled(self):
        _, tracer = make_tracer()
        assert not tracer.enabled

    def test_emit_while_disabled_records_nothing(self):
        _, tracer = make_tracer()
        tracer.emit("proc", "issue", track="P0")
        tracer.begin("stall", "READ_VALUE", track="P0")
        assert len(tracer) == 0
        assert tracer.snapshot() == ()

    def test_wants_is_false_when_disabled(self):
        _, tracer = make_tracer()
        assert not tracer.wants("proc")


class TestRecording:
    def test_emit_records_time_from_simulator(self):
        sim, tracer = make_tracer()
        tracer.enable()
        sim.schedule(10, lambda: tracer.emit("proc", "issue", track="P0"))
        sim.run()
        (event,) = tracer.snapshot()
        assert event.time == 10
        assert event.category == "proc"
        assert event.name == "issue"
        assert event.track == "P0"
        assert event.phase == "I"

    def test_category_filter_drops_unwanted(self):
        _, tracer = make_tracer()
        tracer.enable(categories=("stall",))
        tracer.emit("proc", "issue", track="P0")
        tracer.begin("stall", "READ_VALUE", track="P0")
        events = tracer.snapshot()
        assert [e.category for e in events] == ["stall"]

    def test_wants_respects_filter(self):
        _, tracer = make_tracer()
        tracer.enable(categories=("msg", "dir"))
        assert tracer.wants("msg")
        assert tracer.wants("dir")
        assert not tracer.wants("proc")

    def test_wants_everything_with_no_filter(self):
        _, tracer = make_tracer()
        tracer.enable()
        assert all(tracer.wants(category) for category in CATEGORIES)

    def test_flow_ids_are_fresh(self):
        _, tracer = make_tracer()
        first = tracer.next_flow_id()
        second = tracer.next_flow_id()
        assert first != second

    def test_drain_clears(self):
        _, tracer = make_tracer()
        tracer.enable()
        tracer.emit("proc", "issue", track="P0")
        drained = tracer.drain()
        assert len(drained) == 1
        assert len(tracer) == 0


class TestRingBuffer:
    def test_ring_keeps_newest_and_counts_dropped(self):
        _, tracer = make_tracer()
        tracer.enable(ring=3)
        for i in range(7):
            tracer.emit("counter", f"tick{i}", track="P0")
        events = tracer.snapshot()
        assert [e.name for e in events] == ["tick4", "tick5", "tick6"]
        assert tracer.dropped == 4

    def test_unbounded_never_drops(self):
        _, tracer = make_tracer()
        tracer.enable()
        for i in range(100):
            tracer.emit("counter", "tick", track="P0")
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_ring_below_one_rejected(self):
        _, tracer = make_tracer()
        with pytest.raises(ValueError):
            tracer.enable(ring=0)


class TestTraceSpec:
    def test_parse_filter_none_means_all(self):
        assert TraceSpec.parse_filter(None).categories is None
        assert TraceSpec.parse_filter("").categories is None

    def test_parse_filter_splits_and_strips(self):
        spec = TraceSpec.parse_filter(" stall, msg ")
        assert spec.categories == ("stall", "msg")

    def test_parse_filter_rejects_unknown_category(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            TraceSpec.parse_filter("stall,bogus")

    def test_parse_filter_forwards_kwargs(self):
        spec = TraceSpec.parse_filter("proc", ring=64, summary=False)
        assert spec.categories == ("proc",)
        assert spec.ring == 64
        assert spec.summary is False

    def test_spec_is_picklable(self):
        spec = TraceSpec(categories=("stall",), ring=128)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_configure_applies_spec(self):
        _, tracer = make_tracer()
        tracer.configure(TraceSpec(categories=("stall",), ring=2))
        assert tracer.enabled
        assert tracer.wants("stall")
        assert not tracer.wants("proc")
        for _ in range(4):
            tracer.begin("stall", "READ_VALUE", track="P0")
        assert len(tracer) == 2
        assert tracer.dropped == 2


class TestEventValueSemantics:
    def test_events_are_hashable_and_picklable(self):
        event = TraceEvent(
            time=5, category="msg", name="Inval", phase="S",
            track="cache0", args=(("dst", 1),), flow_id=9,
        )
        assert hash(event) == hash(pickle.loads(pickle.dumps(event)))
        assert pickle.loads(pickle.dumps(event)) == event

    def test_arg_lookup(self):
        event = TraceEvent(
            time=0, category="proc", name="commit", track="P0",
            args=(("proc", 0), ("location", "x")),
        )
        assert event.arg("location") == "x"
        assert event.arg("missing") is None
        assert event.arg("missing", 7) == 7
