"""Unit tests for the schedule oracle and scheduled interconnect."""

from repro.explore.oracle import ReplayOracle, ScheduledInterconnect
from repro.sim.engine import Simulator
from repro.sim.stats import Stats


class TestReplayOracle:
    def test_defaults_to_fifo(self):
        oracle = ReplayOracle()
        assert oracle.choose(3) == 0
        assert oracle.choose(1) == 0

    def test_replays_decisions(self):
        oracle = ReplayOracle((2, 1))
        assert oracle.choose(4) == 2
        assert oracle.choose(2) == 1
        assert oracle.choose(2) == 0  # past the prefix

    def test_decisions_clamped_to_pending(self):
        oracle = ReplayOracle((5,))
        assert oracle.choose(2) == 1

    def test_log_records_pool_sizes(self):
        oracle = ReplayOracle()
        oracle.choose(3)
        oracle.choose(1)
        assert oracle.log == [3, 1]
        assert oracle.choice_points == 2


class Harness:
    def __init__(self, decisions=()):
        self.sim = Simulator()
        self.stats = Stats()
        self.oracle = ReplayOracle(decisions)
        self.net = ScheduledInterconnect(self.sim, self.stats, self.oracle)
        self.delivered = []
        for endpoint in ("a", "b", "c"):
            self.net.register(
                endpoint,
                lambda payload, src, ep=endpoint: self.delivered.append(
                    (ep, payload)
                ),
            )


class TestScheduledInterconnect:
    def test_default_is_fifo(self):
        harness = Harness()
        harness.net.send("a", "b", 1)
        harness.net.send("a", "c", 2)
        harness.net.send("b", "c", 3)
        harness.sim.run()
        assert [p for _, p in harness.delivered] == [1, 2, 3]

    def test_decision_reorders_across_channels(self):
        harness = Harness(decisions=(1,))
        harness.net.send("a", "b", "first")
        harness.net.send("a", "c", "second")
        harness.sim.run()
        assert [p for _, p in harness.delivered] == ["second", "first"]

    def test_same_channel_fifo_preserved(self):
        """Messages on one (src, dst) pair can never be reordered, no
        matter the decisions."""
        for decisions in [(), (1,), (1, 1), (2, 2, 2)]:
            harness = Harness(decisions=decisions)
            harness.net.send("a", "b", 1)
            harness.net.send("a", "b", 2)
            harness.net.send("a", "b", 3)
            harness.sim.run()
            assert [p for _, p in harness.delivered] == [1, 2, 3]

    def test_eligibility_mixes_channels(self):
        """With two channels pending, decision 1 picks the other channel
        but same-channel order still holds."""
        harness = Harness(decisions=(1, 1))
        harness.net.send("a", "b", "b1")
        harness.net.send("a", "b", "b2")
        harness.net.send("a", "c", "c1")
        harness.sim.run()
        payloads = [p for _, p in harness.delivered]
        assert payloads.index("b1") < payloads.index("b2")

    def test_deterministic_for_fixed_decisions(self):
        def run(decisions):
            harness = Harness(decisions=decisions)
            for i in range(5):
                harness.net.send("a", "b" if i % 2 else "c", i)
            harness.sim.run()
            return harness.delivered

        assert run((1, 0, 1)) == run((1, 0, 1))
