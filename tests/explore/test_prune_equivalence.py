"""Pruned vs unpruned delay-bounded exploration: identical outcome sets.

Message-level pruning (:mod:`repro.explore.prune`) claims every skipped
delay decision could only replay already-reachable observables.  The
claim is validated empirically here: over the full litmus catalog and
the synchronization workloads, pruned and unpruned exploration must
reach byte-identical outcome sets — and on workloads with conflict-free
lines the pruned search must do so in at least 3x fewer runs.
"""

import pytest

from repro.explore.explorer import ExplorationReport, explore_program
from repro.explore.prune import conflict_free_locations, decision_redundant
from repro.litmus.catalog import standard_catalog
from repro.models.policies import Def2Policy, RelaxedPolicy
from repro.workloads.barrier import barrier_program
from repro.workloads.locks import critical_section_program
from repro.workloads.ticket_lock import ticket_lock_program

CATALOG = standard_catalog()


class TestCatalogEquivalence:
    @pytest.mark.parametrize(
        "test", CATALOG, ids=[t.name for t in CATALOG]
    )
    def test_relaxed_outcome_sets_identical(self, test):
        program = test.executable_program()
        pruned = explore_program(
            program, RelaxedPolicy, max_delays=2, max_runs=50_000
        )
        full = explore_program(
            program, RelaxedPolicy, max_delays=2, max_runs=50_000,
            prune=False,
        )
        assert pruned.exhausted and full.exhausted
        assert pruned.observables == full.observables
        assert pruned.runs + pruned.pruned_decisions >= full.runs or (
            # A pruned decision collapses a whole subtree, so the counts
            # relate loosely; what must hold exactly is the outcome set.
            pruned.runs <= full.runs
        )

    def test_def2_outcome_sets_identical_on_sync_dekker(self):
        test = next(t for t in CATALOG if t.name == "fig1_dekker_sync_warm")
        program = test.executable_program()
        pruned = explore_program(
            program, Def2Policy, max_delays=3, max_runs=50_000
        )
        full = explore_program(
            program, Def2Policy, max_delays=3, max_runs=50_000, prune=False
        )
        assert pruned.exhausted and full.exhausted
        assert pruned.observables == full.observables


WORKLOADS = [
    critical_section_program(2, 1, private_writes=2),
    critical_section_program(
        2, 1, private_writes=3, use_test_test_and_set=True
    ),
    barrier_program(2, private_writes=2),
]


class TestWorkloadEquivalenceAndReduction:
    @pytest.mark.parametrize("program", WORKLOADS, ids=lambda p: p.name)
    def test_outcomes_identical_with_3x_fewer_runs(self, program):
        pruned = explore_program(
            program, Def2Policy, max_delays=2, max_runs=100_000
        )
        full = explore_program(
            program, Def2Policy, max_delays=2, max_runs=100_000, prune=False
        )
        assert pruned.exhausted and full.exhausted
        assert pruned.observables == full.observables
        assert pruned.pruned_decisions > 0
        assert full.runs >= 3 * pruned.runs

    def test_ticket_lock_outcomes_identical(self):
        # All of the ticket lock's lines are shared, so pruning must
        # recognise there is nothing to skip — and lose nothing.
        program = ticket_lock_program(2, 1)
        pruned = explore_program(
            program, Def2Policy, max_delays=2, max_runs=100_000
        )
        full = explore_program(
            program, Def2Policy, max_delays=2, max_runs=100_000, prune=False
        )
        assert pruned.observables == full.observables
        assert pruned.runs == full.runs


class TestConflictFreeLocations:
    def test_private_and_shared_lines_classified(self):
        program = critical_section_program(2, 1, private_writes=1)
        free = conflict_free_locations(program)
        assert "lock" not in free
        assert "count" not in free
        assert {"w0_0", "w1_0"} <= free

    def test_read_only_shared_line_is_conflict_free(self):
        from repro.core.program import Program, ThreadBuilder

        ta = ThreadBuilder("P0").load("r0", "ro").store("x", 1).build()
        tb = ThreadBuilder("P1").load("r0", "ro").store("x", 2).build()
        program = Program([ta, tb], name="ro-shared")
        free = conflict_free_locations(program)
        assert "ro" in free
        assert "x" not in free


class TestDecisionRedundant:
    FREE = frozenset({"p0", "p1"})

    def test_overtaking_conflict_free_line_is_redundant(self):
        assert decision_redundant(("x", "p0"), 1, self.FREE)

    def test_two_racing_lines_never_redundant(self):
        assert not decision_redundant(("x", "y"), 1, self.FREE)

    def test_unknown_location_never_redundant(self):
        assert not decision_redundant((None, "p0"), 1, self.FREE)
        assert not decision_redundant(("p0", None), 1, self.FREE)

    def test_same_line_never_redundant(self):
        assert not decision_redundant(("p0", "p0"), 1, self.FREE)

    def test_decision_past_pool_never_redundant(self):
        assert not decision_redundant(("p0",), 3, self.FREE)


class TestExhaustedFlag:
    def test_report_starts_pessimistic(self):
        program = critical_section_program(2, 1)
        report = ExplorationReport(
            program=program, policy_name="DEF2", max_delays=2, runs=0
        )
        assert report.exhausted is False

    def test_completed_walk_sets_exhausted(self):
        program = barrier_program(2)
        report = explore_program(program, Def2Policy, max_delays=1)
        assert report.exhausted is True

    def test_truncated_walk_stays_unexhausted(self):
        program = critical_section_program(2, 1)
        report = explore_program(
            program, Def2Policy, max_delays=3, max_runs=3
        )
        assert report.exhausted is False
        assert report.runs == 3

    def test_describe_reports_pruned_decisions(self):
        program = critical_section_program(2, 1, private_writes=2)
        report = explore_program(program, Def2Policy, max_delays=2)
        assert report.pruned_decisions > 0
        assert "pruned as commuting" in report.describe()
