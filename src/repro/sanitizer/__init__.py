"""Protocol sanitizer, deadlock diagnosis, and failure triage.

The robustness layer of the reproduction: a per-simulation
:class:`Sanitizer` checks the protocol invariants the paper's
correctness argument rests on (single-writer/multiple-reader,
directory–cache agreement, reserve-bit/counter consistency, write-buffer
FIFO, message conservation, end-of-run quiescence); on a watchdog trip
:func:`~repro.sanitizer.deadlock.diagnose` rebuilds the wait-for graph
and names the deadlock cycle; and on any failing
:class:`~repro.campaign.spec.RunSpec` the
:func:`~repro.sanitizer.shrink.shrink_spec` delta-debugger minimizes
the spec into a deterministic, replayable
:class:`~repro.sanitizer.bundle.ReproBundle` that campaigns triage into
a bundles directory (``repro replay`` re-runs one).

Only :mod:`~repro.sanitizer.checker` is imported eagerly: the simulator
engine imports it at startup, so everything that reaches back into the
simulation stack (bundle/shrink/triage/deadlock) resolves lazily via
module ``__getattr__`` to keep the import graph acyclic.
"""

from repro.sanitizer.checker import (
    MODES,
    ProtocolError,
    Sanitizer,
    SanitizerViolation,
    Violation,
    parse_mode,
)

#: Lazily resolved exports (PEP 562) — see module docstring.
_LAZY = {
    "BUNDLE_FORMAT": "repro.sanitizer.bundle",
    "ReproBundle": "repro.sanitizer.bundle",
    "spec_from_dict": "repro.sanitizer.bundle",
    "spec_to_dict": "repro.sanitizer.bundle",
    "DeadlockDiagnosis": "repro.sanitizer.deadlock",
    "WaitEdge": "repro.sanitizer.deadlock",
    "diagnose": "repro.sanitizer.deadlock",
    "ShrinkResult": "repro.sanitizer.shrink",
    "failure_signature": "repro.sanitizer.shrink",
    "shrink_spec": "repro.sanitizer.shrink",
    "TriageConfig": "repro.sanitizer.triage",
    "TriageReport": "repro.sanitizer.triage",
    "triage_failures": "repro.sanitizer.triage",
}

__all__ = [
    "MODES",
    "ProtocolError",
    "Sanitizer",
    "SanitizerViolation",
    "Violation",
    "parse_mode",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
