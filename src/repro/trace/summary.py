"""Distilling an event stream into campaign-sized telemetry.

A full event trace is a per-run artifact; campaigns need something that
aggregates.  :class:`TraceSummary` is that distillate: per-reason stall
histograms (cycles and window counts), protocol message counts by
payload type, and a longest-stall leaderboard — the "where did the time
go" report Figure 3 asks of every run.  Summaries merge associatively,
so :func:`repro.campaign.api.run_campaign` can fold the per-run
summaries of a whole campaign into one record on its
:class:`~repro.campaign.metrics.CampaignMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.trace.events import TraceEvent

#: Longest-stall leaderboard length.
TOP_STALLS = 5

#: One leaderboard entry: (duration, reason, track, begin time, end time).
StallSpan = Tuple[int, str, str, int, int]


@dataclass(frozen=True)
class TraceSummary:
    """Aggregated telemetry of one traced run (or a merged campaign).

    All fields are plain tuples of strings/ints: picklable, orderable,
    and JSON-serializable via :meth:`to_dict` without custom encoders.
    """

    #: (stall reason value, total cycles), sorted by reason.
    stall_cycles_by_reason: Tuple[Tuple[str, int], ...] = ()
    #: (stall reason value, number of stall windows), sorted by reason.
    stall_windows_by_reason: Tuple[Tuple[str, int], ...] = ()
    #: (protocol payload type name, deliveries), sorted by type name.
    message_counts: Tuple[Tuple[str, int], ...] = ()
    #: The longest individual stall windows, longest first.
    longest_stalls: Tuple[StallSpan, ...] = ()
    events_recorded: int = 0
    #: Events lost to the ring bound; > 0 flags a truncated stream.
    events_dropped: int = 0
    #: Runs folded into this summary (1 for a single run).
    runs: int = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: Sequence[TraceEvent], dropped: int = 0
    ) -> "TraceSummary":
        """Distill one run's event stream.

        Stall windows are paired ``B``/``E`` events per ``(track,
        name)``; an unmatched ``B`` (possible only under ring
        truncation, since :meth:`Stats.end_all_stalls` closes every
        window at end of run) is ignored rather than guessed at.
        """
        stall_cycles: Dict[str, int] = {}
        stall_windows: Dict[str, int] = {}
        messages: Dict[str, int] = {}
        open_stalls: Dict[Tuple[str, str], int] = {}
        longest: List[StallSpan] = []
        for event in events:
            if event.category == "stall":
                key = (event.track, event.name)
                if event.phase == "B":
                    open_stalls[key] = event.time
                elif event.phase == "E":
                    start = open_stalls.pop(key, None)
                    if start is None:
                        continue
                    duration = event.time - start
                    stall_cycles[event.name] = (
                        stall_cycles.get(event.name, 0) + duration
                    )
                    stall_windows[event.name] = stall_windows.get(event.name, 0) + 1
                    longest.append(
                        (duration, event.name, event.track, start, event.time)
                    )
            elif event.category == "msg" and event.phase == "F":
                messages[event.name] = messages.get(event.name, 0) + 1
        longest.sort(key=lambda span: (-span[0], span[3], span[2]))
        return cls(
            stall_cycles_by_reason=tuple(sorted(stall_cycles.items())),
            stall_windows_by_reason=tuple(sorted(stall_windows.items())),
            message_counts=tuple(sorted(messages.items())),
            longest_stalls=tuple(longest[:TOP_STALLS]),
            events_recorded=len(events),
            events_dropped=dropped,
            runs=1,
        )

    @classmethod
    def merged(cls, summaries: Iterable["TraceSummary"]) -> Optional["TraceSummary"]:
        """Fold many run summaries into one (None for an empty input)."""
        summaries = [s for s in summaries if s is not None]
        if not summaries:
            return None
        cycles: Dict[str, int] = {}
        windows: Dict[str, int] = {}
        messages: Dict[str, int] = {}
        longest: List[StallSpan] = []
        recorded = dropped = runs = 0
        for summary in summaries:
            for reason, value in summary.stall_cycles_by_reason:
                cycles[reason] = cycles.get(reason, 0) + value
            for reason, value in summary.stall_windows_by_reason:
                windows[reason] = windows.get(reason, 0) + value
            for name, value in summary.message_counts:
                messages[name] = messages.get(name, 0) + value
            longest.extend(summary.longest_stalls)
            recorded += summary.events_recorded
            dropped += summary.events_dropped
            runs += summary.runs
        longest.sort(key=lambda span: (-span[0], span[3], span[2]))
        return cls(
            stall_cycles_by_reason=tuple(sorted(cycles.items())),
            stall_windows_by_reason=tuple(sorted(windows.items())),
            message_counts=tuple(sorted(messages.items())),
            longest_stalls=tuple(longest[:TOP_STALLS]),
            events_recorded=recorded,
            events_dropped=dropped,
            runs=runs,
        )

    # ------------------------------------------------------------------
    # Queries / presentation
    # ------------------------------------------------------------------
    def stall_cycles(self, reason: str) -> int:
        for name, cycles in self.stall_cycles_by_reason:
            if name == reason:
                return cycles
        return 0

    def message_count(self, payload_type: str) -> int:
        for name, count in self.message_counts:
            if name == payload_type:
                return count
        return 0

    @property
    def total_stall_cycles(self) -> int:
        return sum(cycles for _, cycles in self.stall_cycles_by_reason)

    @property
    def total_messages(self) -> int:
        return sum(count for _, count in self.message_counts)

    def to_dict(self) -> dict:
        return {
            "stall_cycles_by_reason": dict(self.stall_cycles_by_reason),
            "stall_windows_by_reason": dict(self.stall_windows_by_reason),
            "message_counts": dict(self.message_counts),
            "longest_stalls": [list(span) for span in self.longest_stalls],
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
            "runs": self.runs,
        }

    def describe(self) -> str:
        lines = [
            f"trace summary ({self.runs} run(s), "
            f"{self.events_recorded} events"
            + (f", {self.events_dropped} dropped" if self.events_dropped else "")
            + ")"
        ]
        if self.stall_cycles_by_reason:
            lines.append("  stalls:")
            window_counts = dict(self.stall_windows_by_reason)
            for reason, cycles in self.stall_cycles_by_reason:
                lines.append(
                    f"    {reason}: {cycles} cycles over "
                    f"{window_counts.get(reason, 0)} window(s)"
                )
        if self.message_counts:
            lines.append(f"  messages: {self.total_messages}")
            for name, count in self.message_counts:
                lines.append(f"    {name}: {count}")
        if self.longest_stalls:
            lines.append("  longest stalls:")
            for duration, reason, track, start, end in self.longest_stalls:
                lines.append(
                    f"    {track} {reason}: {duration} cycles "
                    f"[@{start}..@{end}]"
                )
        return "\n".join(lines)
