"""Systematic (delay-bounded) exploration of hardware schedules."""

from repro.explore.explorer import (
    ExplorationReport,
    explore_program,
    explore_to_fixpoint,
    verify_weak_ordering,
)
from repro.explore.oracle import ReplayOracle, ScheduledInterconnect

__all__ = [
    "ExplorationReport",
    "ReplayOracle",
    "ScheduledInterconnect",
    "explore_program",
    "explore_to_fixpoint",
    "verify_weak_ordering",
]
