"""Unit tests for the invalidation-virtual-channel protocol paths.

When invalidations ride their own network they can overtake the data
response they logically follow; the cache then installs the fill
*use-once* (value delivered, line not retained).  These tests drive the
cache handlers directly with the reordered message sequence.
"""

import pytest

from repro.coherence.cache import Cache
from repro.coherence.directory import DIRECTORY_ENDPOINT
from repro.coherence.line import LineState
from repro.coherence.protocol import DataS, DataX, Inval, InvalAck
from repro.core.operation import OpKind
from repro.cpu.access import MemoryAccess
from repro.interconnect.base import Interconnect
from repro.sim.engine import Simulator
from repro.sim.stats import Stats


class CaptureInterconnect(Interconnect):
    """Instant delivery to registered endpoints; records dir-bound mail."""

    def __init__(self, sim, stats):
        super().__init__(sim, stats, "capture")
        self.to_dir = []
        self.register(DIRECTORY_ENDPOINT, lambda p, s: self.to_dir.append(p))

    def send(self, src, dst, payload):
        self._deliver(src, dst, payload)


class Harness:
    def __init__(self):
        self.sim = Simulator()
        self.stats = Stats()
        self.net = CaptureInterconnect(self.sim, self.stats)
        self.cache = Cache(self.sim, 0, self.net, self.stats)

    def read(self, loc):
        access = MemoryAccess(proc=0, kind=OpKind.READ, location=loc)
        self.cache.submit(access)
        self.sim.run()
        return access

    def deliver(self, payload):
        self.net._deliver(DIRECTORY_ENDPOINT, "cache:0", payload)
        self.sim.run()


class TestUseOnceFill:
    def test_inval_overtaking_datas_marks_use_once(self):
        harness = Harness()
        access = harness.read("x")  # miss -> GetS sent, outstanding
        assert not access.has_value
        # The invalidation arrives first (separate channel), then DataS.
        harness.deliver(Inval("x"))
        assert any(isinstance(m, InvalAck) for m in harness.net.to_dir)
        harness.deliver(DataS("x", 7))
        # Value delivered, but the copy was not retained.
        assert access.value == 7
        assert access.globally_performed
        assert harness.cache.line_state("x") is LineState.INVALID

    def test_normal_order_retains_the_line(self):
        harness = Harness()
        access = harness.read("x")
        harness.deliver(DataS("x", 7))
        assert access.value == 7
        assert harness.cache.line_state("x") is LineState.SHARED
        # A later invalidation then drops it normally.
        harness.deliver(Inval("x"))
        assert harness.cache.line_state("x") is LineState.INVALID

    def test_fresh_exclusive_grant_clears_stale_mark(self):
        harness = Harness()
        access = MemoryAccess(
            proc=0, kind=OpKind.WRITE, location="x",
            compute_write=lambda old: 5, needs_exclusive=True,
        )
        harness.cache.submit(access)
        harness.sim.run()
        # A stale invalidation (for the previous, already-lost copy)
        # arrives while the GetX is outstanding.
        harness.deliver(Inval("x"))
        harness.deliver(DataX("x", 0, pending_acks=0))
        # The exclusive grant supersedes the stale mark: line retained.
        assert harness.cache.line_state("x") is LineState.EXCLUSIVE
        assert harness.cache.line_value("x") == 5
        assert access.globally_performed

    def test_use_once_read_still_counts_as_progress(self):
        """The counter must not leak on the use-once path."""
        harness = Harness()
        harness.read("x")
        assert harness.cache.counter.value == 1
        harness.deliver(Inval("x"))
        harness.deliver(DataS("x", 7))
        assert harness.cache.counter.zero
