"""Durable campaign journal: crash-safe progress, exact resume.

A :class:`CampaignJournal` is an append-only JSONL file recording a
campaign's progress as it happens: a ``campaign`` header per
:func:`~repro.campaign.api.run_campaign` call (label, content digest of
the spec batch, batch size), one ``result`` record per completed
:class:`~repro.campaign.spec.RunSpec` (keyed by the spec's digest, the
same content hash the :class:`~repro.campaign.cache.ResultCache` uses),
periodic ``checkpoint`` markers, and arbitrary consumer checkpoints
(the delay-bounded explorer snapshots its decision frontier here).

Durability model:

* **Append-only, fsync'd.**  Every record is one JSON line, flushed and
  ``fsync``'d before :meth:`append` returns (tunable via
  ``fsync_every``), so a ``SIGKILL`` at any instant loses at most the
  record currently being written.
* **Torn tails are expected, not fatal.**  A kill mid-write leaves a
  truncated final line; :meth:`load` skips unparseable lines (counting
  them in ``torn_records``) instead of refusing the journal, so a
  crashed campaign is always resumable.
* **Results are recorded at most once per digest.**  :meth:`record`
  is idempotent — a digest already present (from this process or a
  previous incarnation replayed at open) is never appended again.
  Because a spec's digest determines its result exactly, this is what
  gives resumed campaigns exactly-once semantics: every spec's result
  appears in the journal exactly once, byte-identical to what an
  uninterrupted campaign would have produced.
* **Appending to a torn tail never corrupts the successor.**  A journal
  opened over a file whose final line is torn (the previous owner may
  have died mid-write, or may even still be flushing) starts its own
  appends on a fresh line, so the torn fragment stays confined to one
  unparseable line instead of fusing with the first new record.
* **Writes are thread-safe.**  The service tier runs several campaigns
  against one shared journal from concurrent worker threads; every
  mutating method takes the journal's lock, so records never interleave
  mid-line and the idempotence check is atomic with the append.

Only results that are pure functions of their spec are worth
journaling; environment-dependent failures (wall-clock timeouts, lost
workers, preemption) are filtered by the campaign layer so a resume
re-attempts them, mirroring the :class:`ResultCache` policy.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.campaign.spec import RunResult
from repro.obs import METRICS

#: Bucket bounds for journal I/O latencies: 10µs to ~0.6s.
_IO_BUCKETS = tuple(1e-5 * 4 ** i for i in range(9))


class JournalError(Exception):
    """A journal cannot be used as requested (identity mismatch, ...)."""


#: Journal format version, stamped on every ``campaign`` record.
JOURNAL_VERSION = 1


def campaign_digest(digests: Iterable[str]) -> str:
    """A content hash of a whole spec batch (by digest), order-sensitive."""
    joined = "\x1d".join(digests)
    return hashlib.sha256(joined.encode()).hexdigest()


def _encode_result(result: RunResult) -> str:
    return base64.b64encode(pickle.dumps(result)).decode("ascii")


def _decode_result(blob: str) -> RunResult:
    result = pickle.loads(base64.b64decode(blob.encode("ascii")))
    if not isinstance(result, RunResult):
        raise JournalError(f"journal result decodes to {type(result).__name__}")
    return result


class CampaignJournal:
    """An append-only, fsync'd JSONL record of campaign progress.

    Opening a path that already holds a journal *replays* it: every
    previously recorded result becomes available in :attr:`replayed`
    (digest -> :class:`RunResult`), and subsequent appends continue the
    same file.  The campaign layer consults :attr:`replayed` before the
    result cache, which is what makes ``--resume`` skip completed work.

    ``fsync_every=1`` (the default) makes every record durable before
    the run that produced it can be considered complete; larger values
    trade a bounded window of re-executable work for fewer syncs.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync_every: int = 1,
        checkpoint_interval: int = 64,
    ) -> None:
        self.path = Path(path)
        self.fsync_every = max(1, fsync_every)
        self.checkpoint_interval = max(1, checkpoint_interval)
        #: Digest -> result for every result record already on disk.
        self.replayed: Dict[str, RunResult] = {}
        #: Most recent consumer checkpoint per kind (last one wins).
        self._checkpoints: Dict[str, dict] = {}
        #: ``campaign`` header records seen on load, in file order.
        self.campaigns: List[dict] = []
        #: Unparseable lines tolerated on load (torn tails from kills).
        self.torn_records = 0
        #: Records appended by this instance.
        self.appended = 0
        self._unsynced = 0
        self._since_checkpoint = 0
        self._lock = threading.RLock()
        #: True when the existing file ends mid-line (torn tail from a
        #: killed — or still-flushing — previous owner); the first
        #: append then starts on a fresh line so the new record cannot
        #: fuse with the fragment.
        self._tail_open = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._load()
        self._handle = self.path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Reading (replay)
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        self._tail_open = bool(raw) and not raw.endswith(b"\n")
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                kind = record["type"]
                if kind == "result":
                    self.replayed[record["digest"]] = _decode_result(
                        record["result"]
                    )
                elif kind == "campaign":
                    self.campaigns.append(record)
                elif kind == "checkpoint":
                    if record.get("kind"):
                        self._checkpoints[record["kind"]] = record
            except Exception:
                # A kill mid-append tears at most the line being
                # written; anything unparseable is dropped, never
                # trusted, and never blocks the resume.
                self.torn_records += 1

    def last_checkpoint(self, kind: str) -> Optional[dict]:
        """The most recent checkpoint record of ``kind`` (or None)."""
        return self._checkpoints.get(kind)

    def __contains__(self, digest: str) -> bool:
        return digest in self.replayed

    def __len__(self) -> int:
        return len(self.replayed)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        started = time.perf_counter() if METRICS.enabled else 0.0
        if self._tail_open:
            # Seal the torn fragment off on its own line before the
            # first new record; the fragment stays one unparseable
            # (tolerated) line instead of swallowing this append.
            self._handle.write("\n")
            self._tail_open = False
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.appended += 1
        self._unsynced += 1
        if METRICS.enabled:
            METRICS.inc("repro_journal_appends_total",
                        help="Journal records appended")
            METRICS.observe(
                "repro_journal_append_seconds",
                time.perf_counter() - started,
                help="Journal append (write+flush) latency",
                buckets=_IO_BUCKETS,
            )
        if self._unsynced >= self.fsync_every:
            self.sync()

    def begin_campaign(self, label: str, digest: str, total: int) -> None:
        """Stamp a campaign header: what batch this journal is serving."""
        with self._lock:
            self._append(
                {
                    "type": "campaign",
                    "version": JOURNAL_VERSION,
                    "label": label,
                    "digest": digest,
                    "total": total,
                    "already_completed": len(self.replayed),
                }
            )

    def record(self, digest: str, result: RunResult) -> bool:
        """Append one completed run; idempotent per digest.

        Returns True when the record was appended, False when the digest
        was already journaled (replayed or recorded earlier).  The
        membership check and the append happen under the journal lock,
        so concurrent campaigns sharing one journal (the service tier)
        still record each digest at most once.
        """
        with self._lock:
            if digest in self.replayed:
                return False
            self.replayed[digest] = result
            self._append(
                {
                    "type": "result",
                    "digest": digest,
                    "result": _encode_result(result),
                }
            )
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.checkpoint_interval:
                self._append(
                    {"type": "checkpoint", "kind": "",
                     "completed": len(self.replayed)}
                )
                self._since_checkpoint = 0
            return True

    def checkpoint(self, kind: str, payload: Dict[str, Any]) -> None:
        """Append a consumer checkpoint (e.g. an explorer frontier)."""
        record = {
            "type": "checkpoint",
            "kind": kind,
            "completed": len(self.replayed),
            "payload": payload,
        }
        with self._lock:
            self._append(record)
            self._checkpoints[kind] = record

    def sync(self) -> None:
        """Flush and fsync pending appends to disk."""
        with self._lock:
            if self._handle is None or self._unsynced == 0:
                return
            started = time.perf_counter() if METRICS.enabled else 0.0
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            self._unsynced = 0
        if METRICS.enabled:
            METRICS.inc("repro_journal_fsyncs_total",
                        help="Journal fsync group commits")
            METRICS.observe(
                "repro_journal_fsync_seconds",
                time.perf_counter() - started,
                help="Journal fsync latency",
                buckets=_IO_BUCKETS,
            )

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self.sync()
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_journal(
    journal: Union["CampaignJournal", str, Path, None],
    resume: bool = False,
) -> Optional[CampaignJournal]:
    """Coerce a journal argument (object, path, or None) to a journal.

    With ``resume=True`` the path must already exist — resuming from a
    journal that was never written is almost certainly a typo, and
    silently starting fresh would turn "continue my campaign" into
    "redo everything".
    """
    if journal is None or isinstance(journal, CampaignJournal):
        return journal
    path = Path(journal)
    if resume and not path.exists():
        raise JournalError(f"cannot resume: journal {path} does not exist")
    return CampaignJournal(path)
