"""System composition: program + policy + machine configuration -> a run.

:class:`System` wires processors, the ordering policy, and either the
cache-coherent substrate (caches + directory) or the cache-less one
(write buffers + memory module) onto the configured interconnect, runs
the program to quiescence, and packages the outcome as a
:class:`HardwareRun` — observable result, commit-ordered trace, and full
statistics.  This is the hardware-side counterpart of
:func:`repro.sc.interleaving.enumerate_results`: Definition 2 is checked
by comparing the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.coherence.cache import Cache
from repro.coherence.directory import Directory
from repro.coherence.snooping import SnoopCoordinator, SnoopingCache
from repro.core.execution import Execution, Observable
from repro.core.operation import Location, Value
from repro.core.program import Program
from repro.cpu.core import ProcessorCore, core_class_by_name
from repro.cpu.write_buffer import WriteBufferPort
from repro.faults import FaultPlan, FaultyInterconnect
from repro.interconnect.bus import Bus
from repro.interconnect.network import Network
from repro.memsys.config import CoherenceStyle, InterconnectKind, MachineConfig
from repro.memsys.memory import MemoryModule
from repro.models.base import OrderingPolicy
from repro.sanitizer.checker import Violation
from repro.sanitizer.deadlock import DeadlockDiagnosis, diagnose
from repro.sim.engine import SimulationTimeout, Simulator
from repro.sim.rng import TimingRng
from repro.sim.stats import Stats
from repro.trace.summary import TraceSummary
from repro.trace.tracer import TraceSpec


class ConfigurationError(ValueError):
    """Policy and machine configuration are incompatible."""


def ensure_compatible(
    policy: OrderingPolicy, config: MachineConfig, core: str = "simple"
) -> None:
    """Raise :class:`ConfigurationError` if the triple cannot be built.

    Shared by :class:`System` and the campaign layer, which pre-flights
    (policy, config, core) cells before fanning specs out to workers.
    """
    if policy.requires_cache and not config.has_caches:
        raise ConfigurationError(
            f"policy {policy.name} requires caches; configuration "
            f"{config.name!r} has none"
        )
    if (
        config.has_caches
        and config.coherence is CoherenceStyle.SNOOPING
        and config.interconnect is not InterconnectKind.BUS
    ):
        raise ConfigurationError("snooping coherence requires the atomic bus")
    core_class_by_name(core)  # unknown core names fail loudly
    if core not in policy.supported_cores:
        raise ConfigurationError(
            f"policy {policy.name} does not support core {core!r}; "
            f"supported: {list(policy.supported_cores)}"
        )


@dataclass
class HardwareRun:
    """The outcome of one hardware execution."""

    program: Program
    policy_name: str
    config_name: str
    seed: int
    observable: Observable
    #: Trace of committed operations, ordered by commit time.
    execution: Execution
    stats: Stats
    cycles: int
    #: True when every processor ran its thread to completion.
    completed: bool
    halt_times: List[Optional[int]] = field(default_factory=list)
    #: True when the run was cut off by the cycle-budget watchdog (as
    #: opposed to quiescing early with unfinished threads — a deadlock).
    timed_out: bool = False
    #: Recorded trace events (None unless run with a TraceSpec asking
    #: for events) and their distilled summary (ditto).
    trace_events: Optional[tuple] = None
    trace_summary: Optional[TraceSummary] = None
    #: Sanitizer violations collected in ``log`` mode (``strict`` raises
    #: instead; empty when the sanitizer was off).
    sanitizer_violations: tuple = ()
    #: Wait-for-graph diagnosis, present whenever the run failed to
    #: complete (watchdog trip or quiet deadlock) — regardless of the
    #: sanitizer mode.
    deadlock: Optional[DeadlockDiagnosis] = None

    def describe(self) -> str:
        status = "completed" if self.completed else "DID NOT COMPLETE"
        text = (
            f"[{self.config_name}/{self.policy_name} seed={self.seed}] "
            f"{status} in {self.cycles} cycles: {self.observable.describe()}"
        )
        if self.deadlock is not None:
            text += "\n" + self.deadlock.describe()
        return text


class System:
    """A concrete simulated machine executing one program."""

    def __init__(
        self,
        program: Program,
        policy: OrderingPolicy,
        config: MachineConfig,
        seed: int = 0,
        interconnect_factory=None,
        fault_plan: Optional[FaultPlan] = None,
        trace: Optional[TraceSpec] = None,
        sanitize: Optional[str] = None,
        core: Optional[str] = None,
    ) -> None:
        """Build the machine.

        ``interconnect_factory(sim, stats, rng) -> Interconnect``
        overrides the configured bus/network — the hook the systematic
        explorer (:mod:`repro.explore`) uses to substitute its
        schedule-controlled transport.

        ``fault_plan`` wraps the configured interconnect in a
        :class:`~repro.faults.FaultyInterconnect` driven by an RNG
        stream derived from ``(seed, plan.salt)``.  Injection is
        incompatible with a custom ``interconnect_factory`` (the
        explorer's scheduled transport is already adversarial and
        replay-exact).

        ``sanitize`` turns on the protocol-invariant checker
        (:mod:`repro.sanitizer`): ``"log"`` collects violations on the
        result, ``"strict"`` raises
        :class:`~repro.sanitizer.checker.SanitizerViolation` at the
        first one.  ``None``/``"off"`` costs one branch per cycle.

        ``core`` names the processor-core shape (``"simple"`` /
        ``"pipelined"``, see :mod:`repro.cpu.core`); ``None`` defers to
        the ``core`` attribute :func:`~repro.models.policies.policy_by_name`
        may have stamped on the policy, defaulting to ``"simple"``.
        """
        if core is None:
            core = getattr(policy, "core", "simple")
        ensure_compatible(policy, config, core)
        self.program = program
        self.policy = policy
        self.config = config
        self.core_name = core
        self._core_cls = core_class_by_name(core)
        self.seed = seed
        self.fault_plan = fault_plan
        self.trace_spec = trace
        self.sanitize_mode = sanitize

        self.sim = Simulator()
        self.stats = Stats()
        self.rng = TimingRng(seed)
        if trace is not None:
            # Configure before any component builds: construction-time
            # wiring (counter observers) keys off tracer.wants().
            self.sim.tracer.configure(trace)
            self.stats.tracer = self.sim.tracer
        if sanitize is not None:
            self.sim.sanitizer.configure(sanitize)
            if self.sim.sanitizer.enabled:
                self.sim.sanitizer.attach(self)

        if interconnect_factory is not None:
            if fault_plan is not None and not fault_plan.is_null:
                raise ConfigurationError(
                    "fault injection cannot wrap a custom interconnect "
                    "(schedule replay must stay exact)"
                )
            self.interconnect = interconnect_factory(self.sim, self.stats, self.rng)
        elif config.interconnect is InterconnectKind.BUS:
            self.interconnect = Bus(
                self.sim, self.stats, transfer_cycles=config.bus_transfer_cycles
            )
        else:
            # Cache-coherent machines assume per-channel FIFO delivery
            # (virtual channels): without it a Recall can overtake the
            # DataX grant it chases.  Messages on *different* channel
            # pairs still arrive with independent latencies, which is the
            # reordering Figure 1's fourth configuration relies on.
            self.interconnect = Network(
                self.sim,
                self.stats,
                self.rng,
                base_latency=config.network_base_latency,
                jitter=config.network_jitter,
                point_to_point_fifo=config.has_caches,
                inval_virtual_channel=config.inval_virtual_channel,
            )
        if fault_plan is not None and not fault_plan.is_null:
            # Duplicates are only legal where receivers deduplicate: the
            # cache-less request/response protocol carries per-request
            # tokens; the directory protocol assumes exactly-once
            # channels, as the paper does.
            self.interconnect = FaultyInterconnect(
                self.sim,
                self.stats,
                self.interconnect,
                plan=fault_plan,
                rng=self.rng.fork(0x5EED ^ fault_plan.salt),
                allow_duplicates=(
                    not config.has_caches
                    and config.interconnect is InterconnectKind.NETWORK
                ),
                inval_virtual_channel=config.inval_virtual_channel,
            )

        self.caches: List = []
        self.directory: Optional[Directory] = None
        self.snoop_coordinator: Optional[SnoopCoordinator] = None
        self.memory: Optional[MemoryModule] = None
        self.processors: List[ProcessorCore] = []

        if not config.has_caches:
            self._build_cacheless()
        elif config.coherence is CoherenceStyle.SNOOPING:
            self._build_snooping()
        else:
            self._build_cached()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_cached(self) -> None:
        self.directory = Directory(
            self.sim,
            self.interconnect,
            self.stats,
            initial_memory=dict(self.program.initial_memory),
            retry_delay=self.config.directory_retry_delay,
        )
        for proc_id, thread in enumerate(self.program.threads):
            cache = Cache(
                self.sim,
                proc_id,
                self.interconnect,
                self.stats,
                capacity=self.config.cache_capacity,
                hit_latency=self.config.cache_hit_latency,
                reserve_enabled=self.policy.reserve_enabled,
                nack_mode=self.policy.nack_mode,
            )
            self.caches.append(cache)
            processor = self._core_cls(
                self.sim,
                proc_id,
                thread,
                self.policy,
                port=cache,
                stats=self.stats,
                local_cycles=self.config.local_cycles,
                cache=cache,
            )
            self.processors.append(processor)

    def _build_snooping(self) -> None:
        self.snoop_coordinator = SnoopCoordinator(
            self.sim,
            self.interconnect,
            self.stats,
            initial_memory=dict(self.program.initial_memory),
            retry_delay=self.config.directory_retry_delay,
        )
        for proc_id, thread in enumerate(self.program.threads):
            cache = SnoopingCache(
                self.sim,
                proc_id,
                self.interconnect,
                self.snoop_coordinator,
                self.stats,
                capacity=self.config.cache_capacity,
                hit_latency=self.config.cache_hit_latency,
                reserve_enabled=self.policy.reserve_enabled,
            )
            self.caches.append(cache)
            processor = self._core_cls(
                self.sim,
                proc_id,
                thread,
                self.policy,
                port=cache,
                stats=self.stats,
                local_cycles=self.config.local_cycles,
                cache=cache,
            )
            self.processors.append(processor)

    def _build_cacheless(self) -> None:
        self.memory = MemoryModule(
            self.sim,
            self.interconnect,
            self.stats,
            initial_memory=dict(self.program.initial_memory),
            service_latency=self.config.memory_service_latency,
        )
        for proc_id, thread in enumerate(self.program.threads):
            port = WriteBufferPort(
                self.sim,
                proc_id,
                self.interconnect,
                self.stats,
                drain_delay=self.config.write_buffer_drain_delay,
                capacity=self.config.write_buffer_capacity,
            )
            processor = self._core_cls(
                self.sim,
                proc_id,
                thread,
                self.policy,
                port=port,
                stats=self.stats,
                local_cycles=self.config.local_cycles,
                cache=None,
            )
            self.processors.append(processor)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 1_000_000) -> HardwareRun:
        for processor in self.processors:
            skew = self.rng.latency(0, self.config.start_skew)
            self.sim.schedule(skew, processor.start)
        completed = True
        timed_out = False
        try:
            cycles = self.sim.run(max_cycles=max_cycles)
        except SimulationTimeout:
            cycles = self.sim.now
            completed = False
            timed_out = True
        if not all(p.halted for p in self.processors):
            completed = False
        self.stats.end_all_stalls(self.sim.now)
        self.stats.total_cycles = cycles

        # A failed run always gets a wait-for diagnosis (watchdog trip
        # or quiet deadlock); the sanitizer's end-of-run checks run only
        # when enabled — in strict mode a violation raises from here.
        deadlock = diagnose(self, timed_out=timed_out) if not completed else None
        sanitizer = self.sim.sanitizer
        if sanitizer.enabled:
            sanitizer.finish(completed=completed)
        violations = tuple(sanitizer.violations)

        trace_events = trace_summary = None
        spec = self.trace_spec
        if spec is not None:
            recorded = self.sim.tracer.snapshot()
            if spec.events:
                trace_events = recorded
            if spec.summary:
                trace_summary = TraceSummary.from_events(
                    recorded, dropped=self.sim.tracer.dropped
                )

        return HardwareRun(
            program=self.program,
            policy_name=self.policy.name,
            config_name=self.config.name,
            seed=self.seed,
            observable=self._observable(),
            execution=self._trace(),
            stats=self.stats,
            cycles=cycles,
            completed=completed,
            halt_times=self._halt_times_by_thread(),
            timed_out=timed_out,
            trace_events=trace_events,
            trace_summary=trace_summary,
            sanitizer_violations=violations,
            deadlock=deadlock,
        )

    # ------------------------------------------------------------------
    # Outcome extraction
    # ------------------------------------------------------------------
    def final_memory(self) -> Dict[Location, Value]:
        """Memory contents with dirty cache lines folded in."""
        memory: Dict[Location, Value] = {}
        for loc in self.program.locations():
            memory[loc] = self.program.initial_value(loc)
        if self.directory is not None:
            for loc in self.program.locations():
                memory[loc] = self.directory.memory_value(loc)
            for cache in self.caches:
                memory.update(cache.dirty_lines())
        elif self.snoop_coordinator is not None:
            for loc in self.program.locations():
                memory[loc] = self.snoop_coordinator.memory_value(loc)
            for cache in self.caches:
                memory.update(cache.dirty_lines())
        elif self.memory is not None:
            memory.update(self.memory.contents())
        return memory

    def _observable(self) -> Observable:
        # Register files are keyed by *logical* processor (thread id):
        # after a migration the thread's registers live on the target.
        registers = [dict() for _ in self.processors]
        for processor in self.processors:
            registers[processor.logical_proc] = processor.regs.as_dict()
        return Observable.create(registers=registers, memory=self.final_memory())

    def _halt_times_by_thread(self) -> List[Optional[int]]:
        halts: List[Optional[int]] = [None] * len(self.processors)
        for processor in self.processors:
            halts[processor.logical_proc] = processor.halt_time
        return halts

    def _trace(self) -> Execution:
        ops = [op for p in self.processors for op in p.trace]
        ops.sort(key=lambda op: (op.commit_time, op.proc))
        execution = Execution(ops=ops, completed=all(p.halted for p in self.processors))
        execution.observable = self._observable()
        return execution


def run_program(
    program: Program,
    policy: OrderingPolicy,
    config: MachineConfig,
    seed: int = 0,
    max_cycles: int = 1_000_000,
    fault_plan: Optional[FaultPlan] = None,
    trace: Optional[TraceSpec] = None,
    sanitize: Optional[str] = None,
) -> HardwareRun:
    """One-shot convenience: build a system and run it."""
    system = System(
        program, policy, config, seed=seed, fault_plan=fault_plan,
        trace=trace, sanitize=sanitize,
    )
    return system.run(max_cycles=max_cycles)
