"""Per-model allow/forbid pins for the classic litmus shapes.

The table below is the textbook memory-model matrix; each cell is
deterministic (pure candidate enumeration, no hardware runs), so any
drift in the ppo rules or the axioms fails loudly here.
"""

import pytest

from repro.axiomatic import (
    AXIOMATIC_MODELS,
    axiomatic_model_names,
    model_by_name,
    model_for_policy,
)
from repro.axiomatic.crosscheck import allowed_outcomes
from repro.drf.drf0 import check_program
from repro.drf.models import DRF0, DRF0_R
from repro.litmus.catalog import catalog_by_name, forwarding_catalog
from repro.litmus.runner import LitmusRunner

MODELS = ("SC", "TSO", "PSO", "WO", "WO-DRF0", "RELAXED")

#: test name -> models that allow the test's designated forbidden
#: outcome (every model absent from the set must forbid it).
ALLOWING_MODELS = {
    # SB: the write-to-read relaxation, the first thing TSO gives up.
    "fig1_dekker": {"TSO", "PSO", "WO", "WO-DRF0", "RELAXED"},
    # SB with same-location reads: store forwarding, same relaxation.
    "store_forward_dekker": {"TSO", "PSO", "WO", "WO-DRF0", "RELAXED"},
    # MP: needs write-to-write relaxation; TSO keeps it, PSO drops it.
    "message_passing": {"PSO", "WO", "WO-DRF0", "RELAXED"},
    # LB: needs read-to-write relaxation; only the weak models have it.
    "load_buffering": {"WO", "WO-DRF0", "RELAXED"},
    # IRIW: needs non-multi-copy-atomic stores or read reordering.
    "iriw": {"WO", "WO-DRF0", "RELAXED"},
    # Fenced SB: fences restore SC under every model.
    "fig1_dekker_fenced": set(),
    # Per-location coherence holds under every model (sc-per-location).
    "coherence_corr": set(),
}


def _test_by_name(name):
    catalog = catalog_by_name()
    if name in catalog:
        return catalog[name]
    return {t.name: t for t in forwarding_catalog()}[name]


@pytest.mark.parametrize("test_name", sorted(ALLOWING_MODELS))
def test_forbidden_outcome_matrix(test_name):
    test = _test_by_name(test_name)
    assert test.forbidden is not None
    runner = LitmusRunner()
    program = runner.executable(test)
    drf0 = check_program(test.program, DRF0, max_executions=5_000).obeys
    drf0_r = check_program(test.program, DRF0_R, max_executions=5_000).obeys
    for model_name in MODELS:
        allowed = allowed_outcomes(
            program, model_by_name(model_name), drf0=drf0, drf0_r=drf0_r
        )
        projected = {test.project(obs) for obs in allowed}
        expected = model_name in ALLOWING_MODELS[test_name]
        assert (test.forbidden in projected) == expected, (
            f"{test_name} under {model_name}: expected "
            f"{'allowed' if expected else 'forbidden'}"
        )


class TestConditionalModels:
    """WO-DRF0 is Definition 2 itself: SC iff the program obeys DRF0."""

    def test_drf_program_gets_exactly_sc(self):
        test = catalog_by_name()["fig1_dekker_sync"]
        runner = LitmusRunner()
        program = runner.executable(test)
        sc_set = frozenset(runner.verifier.sc_result_set(program))
        assert check_program(test.program, DRF0, max_executions=5_000).obeys
        assert allowed_outcomes(
            program, model_by_name("WO-DRF0"), drf0=True, drf0_r=True
        ) == sc_set

    def test_racy_program_gets_the_weak_contract(self):
        test = catalog_by_name()["fig1_dekker"]
        program = LitmusRunner().executable(test)
        racy = allowed_outcomes(
            program, model_by_name("WO-DRF0"), drf0=False, drf0_r=False
        )
        relaxed = allowed_outcomes(program, model_by_name("RELAXED"))
        assert racy == relaxed


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        assert axiomatic_model_names() == tuple(sorted(AXIOMATIC_MODELS))

    def test_lookup_normalizes(self):
        assert model_by_name("tso").name == "TSO"
        assert model_by_name("wo_drf0").name == "WO-DRF0"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown axiomatic model"):
            model_by_name("release-consistency")

    def test_every_policy_maps_to_a_model(self):
        from repro.models.base import policy_names

        expected = {
            "SC": "SC",
            "TSO": "TSO",
            "PSO": "PSO",
            "DEF1": "WO",
            "ALL-SYNC": "WO",
            "DEF2": "WO-DRF0",
            "DEF2-R": "WO-DRF0R",
            "RELAXED": "RELAXED",
            "RP3-FENCE": "RELAXED",
        }
        for policy in policy_names():
            assert model_for_policy(policy).name == expected[policy]
