"""Ordering policies: the models under test, looked up by name.

The canonical way to obtain a policy is the registry::

    from repro.models import policy_by_name
    policy = policy_by_name("TSO", core="pipelined")

Importing the concrete classes from this package
(``from repro.models import SCPolicy``) is deprecated — it still works
for one release via a ``__getattr__`` shim, but warns; import from
:mod:`repro.models.policies` or use the registry instead.

Registered policies (derived from the registry, so this list can never
go stale):

"""

import warnings

from repro.models import policies as _policies  # populate the registry
from repro.models.base import (
    BlockKind,
    OrderingPolicy,
    policy_class_by_name,
    policy_names,
    registered_policies,
)
from repro.models.policies import policy_by_name


def _policy_table() -> str:
    """One docstring bullet per registered policy, from its summary."""
    return "\n".join(
        f"* ``{name}`` — {cls.summary}"
        for name, cls in sorted(registered_policies().items())
    )


__doc__ += _policy_table() + "\n"

__all__ = [
    "BlockKind",
    "OrderingPolicy",
    "policy_by_name",
    "policy_class_by_name",
    "policy_names",
    "registered_policies",
]

#: Legacy class-name exports (``from repro.models import SCPolicy``):
#: resolved lazily with a DeprecationWarning for one release.
_DEPRECATED_CLASSES = {
    cls.__name__: cls for cls in registered_policies().values()
}


def __getattr__(name: str):
    cls = _DEPRECATED_CLASSES.get(name)
    if cls is not None:
        warnings.warn(
            f"importing {name} from repro.models is deprecated; use "
            f"repro.models.policy_by_name({cls.name!r}) or import from "
            f"repro.models.policies",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED_CLASSES))
