"""Augmented executions (Section 4).

To account for the initial state of memory, the paper assumes that before
the actual execution one processor performs a hypothetical initializing
write to every location followed by a hypothetical synchronization
operation on a special location, and every other processor then performs
a synchronization operation on that location before its real work.  A
symmetric set of final synchronizations and final reads accounts for the
final state.

The augmentation guarantees that every read has at least one hb-ordered
prior write (the initializing write) and that the final memory state is
an hb-observable quantity — both needed for Lemma 1 to be well formed.

We realize the hypothetical operations as real :class:`MemoryOp` values
on the pseudo-processors ``INIT_PROC``/``FINAL_PROC``, woven into the
trace so that trace order remains a legal completion order.  The per-
processor boundary synchronizations are read-write operations and the
init/final anchors write/read respectively, so the augmentation creates
ordering under both the DRF0 sync-edge rule and the stricter
writer-to-reader rule of Section 6.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.execution import Execution
from repro.core.operation import Location, MemoryOp, OpKind, Value

#: Special synchronization locations used by the hypothetical operations.
#: The final-state handshake uses one location *per processor*: under the
#: Section 6 refinement (writer->reader so edges only) two releases to a
#: shared location would be an unordered conflicting pair, poisoning
#: every program's DRF0-R verdict.
INIT_SYNC_LOCATION = "__init_sync__"
FINAL_SYNC_LOCATION = "__final_sync__"


def final_sync_location(proc: int) -> Location:
    return f"{FINAL_SYNC_LOCATION}{proc}"


def _is_reserved_location(location: Location) -> bool:
    return location.startswith(INIT_SYNC_LOCATION) or location.startswith(
        FINAL_SYNC_LOCATION
    )


class AugmentationError(ValueError):
    """The program uses a location reserved for augmentation."""


def augment_execution(
    execution: Execution,
    locations: Optional[Iterable[Location]] = None,
    initial_memory: Optional[dict] = None,
) -> Execution:
    """Return a new execution with Section 4's hypothetical operations.

    Args:
        execution: the real execution (trace order = completion order).
        locations: all shared locations to initialize/finalize; defaults
            to the locations appearing in the trace.
        initial_memory: initial values (default 0 for every location).
    """
    initial_memory = dict(initial_memory or {})
    locs: Set[Location] = set(locations) if locations is not None else set()
    for op in execution.ops:
        locs.add(op.location)
    if any(_is_reserved_location(loc) for loc in locs):
        raise AugmentationError(
            f"program locations may not start with {INIT_SYNC_LOCATION!r} "
            f"or {FINAL_SYNC_LOCATION!r}"
        )
    procs = sorted({op.proc for op in execution.ops})

    augmented = Execution(completed=execution.completed)

    # Initializing writes, then the release on the special location.
    for idx, loc in enumerate(sorted(locs)):
        augmented.append(
            MemoryOp(
                proc=MemoryOp.INIT_PROC,
                kind=OpKind.WRITE,
                location=loc,
                value_written=initial_memory.get(loc, 0),
                issue_index=idx,
            )
        )
    augmented.append(
        MemoryOp(
            proc=MemoryOp.INIT_PROC,
            kind=OpKind.SYNC_WRITE,
            location=INIT_SYNC_LOCATION,
            value_written=1,
            issue_index=2**62,
        )
    )
    # Each real processor acquires before its first real operation.
    for proc in procs:
        augmented.append(
            MemoryOp(
                proc=proc,
                kind=OpKind.SYNC_RMW,
                location=INIT_SYNC_LOCATION,
                value_read=1,
                value_written=1,
                issue_index=-1,  # program-ordered before all real ops
            )
        )

    # The real trace, unchanged and in order.
    for op in execution.ops:
        augmented.append(op)

    # Each real processor releases after its last real operation.  The
    # releases are write-only (no read component) so that every read in
    # the augmented trace has a well-defined hb-prior write, and each
    # targets a per-processor location so two releases never conflict.
    for proc in procs:
        augmented.append(
            MemoryOp(
                proc=proc,
                kind=OpKind.SYNC_WRITE,
                location=final_sync_location(proc),
                value_written=1,
                issue_index=2**62,  # program-ordered after all real ops
            )
        )
    # The final processor acquires every release, then reads every location.
    for idx, proc in enumerate(procs):
        augmented.append(
            MemoryOp(
                proc=MemoryOp.FINAL_PROC,
                kind=OpKind.SYNC_RMW,
                location=final_sync_location(proc),
                value_read=1,
                value_written=1,
                issue_index=-(len(procs) - idx),
            )
        )
    final_memory = dict(initial_memory)
    final_memory.update(execution.final_memory())
    for idx, loc in enumerate(sorted(locs)):
        augmented.append(
            MemoryOp(
                proc=MemoryOp.FINAL_PROC,
                kind=OpKind.READ,
                location=loc,
                value_read=final_memory.get(loc, 0),
                issue_index=idx,
            )
        )
    augmented.observable = execution.observable
    return augmented


def strip_augmentation(execution: Execution) -> Execution:
    """Inverse of :func:`augment_execution` (drops hypothetical ops)."""
    real = Execution(completed=execution.completed)
    for op in execution.ops:
        if op.is_hypothetical:
            continue
        if _is_reserved_location(op.location):
            continue
        real.append(op)
    real.observable = execution.observable
    return real
