"""Unit tests for the Section 5.3 counter/reserve-bit machinery."""

import pytest

from repro.coherence.line import LineState
from repro.core.operation import OpKind

from .conftest import ProtocolHarness


def slow_reserve_harness(num_caches=3, nack_mode=True, capacity=None):
    """High bus latency so misses stay outstanding long enough to observe."""
    return ProtocolHarness(
        num_caches=num_caches,
        reserve_enabled=True,
        nack_mode=nack_mode,
        transfer_cycles=10,
        capacity=capacity,
    )


class TestCounter:
    def test_counter_tracks_data_misses(self):
        harness = slow_reserve_harness()
        cache = harness.caches[0]
        harness.access(0, OpKind.READ, "a")
        harness.access(0, OpKind.WRITE, "b", write_value=1)
        harness.sim.run_for(2)  # misses sent, responses still in flight
        assert cache.counter.value == 2
        harness.run()
        assert cache.counter.zero

    def test_sync_miss_not_counted_in_flight(self):
        harness = slow_reserve_harness()
        cache = harness.caches[0]
        harness.access(0, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.sim.run_for(2)
        assert cache.counter.zero
        harness.run()
        assert cache.counter.zero

    def test_sync_counted_from_commit_to_memack(self):
        harness = slow_reserve_harness()
        # Cache 1 and 2 share s, so cache 0's sync write needs invals.
        harness.read(1, "s")
        harness.read(2, "s")
        sync = harness.access(0, OpKind.SYNC_WRITE, "s", write_value=1)
        harness.sim.run_until(lambda: sync.committed)
        assert harness.caches[0].counter.value == 1
        harness.run()
        assert harness.caches[0].counter.zero
        assert sync.globally_performed


class TestReserveBit:
    def _reserve_scenario(self, nack_mode=True):
        """Cache 0 has a slow outstanding data write, then commits a sync."""
        harness = slow_reserve_harness(nack_mode=nack_mode)
        # Give cache 1 an exclusive copy of x so cache 0's write is slow.
        harness.write(1, "x", 1)
        data = harness.access(0, OpKind.WRITE, "x", write_value=2)
        sync = harness.access(0, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.sim.run_until(lambda: sync.committed)
        return harness, data, sync

    def test_reserve_set_while_accesses_outstanding(self):
        harness, data, sync = self._reserve_scenario()
        if not data.globally_performed:
            assert harness.caches[0].is_reserved("s")
            assert harness.stats.count("cache.reserves_set") == 1
        harness.run()

    def test_reserve_cleared_when_counter_drains(self):
        harness, data, sync = self._reserve_scenario()
        harness.run()
        assert not harness.caches[0].is_reserved("s")
        assert not harness.caches[0].any_reserved()

    def _held_reserve_scenario(self, nack_mode):
        """Deterministic condition-5 setup: the counter is held positive
        (standing in for a slow outstanding data access) while cache 0
        commits a sync, so the reserve bit is guaranteed set when the
        rival's recall arrives."""
        harness = slow_reserve_harness(nack_mode=nack_mode)
        harness.caches[0].counter.increment()  # the "outstanding" access
        sync = harness.access(0, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.run()
        assert sync.committed and harness.caches[0].is_reserved("s")
        return harness, sync

    def test_remote_sync_nacked_while_reserved(self):
        harness, sync = self._held_reserve_scenario(nack_mode=True)
        rival = harness.access(1, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.sim.run_for(300)  # NACK/retry loop spins while reserved
        assert not rival.committed
        assert harness.stats.count("dir.sync_nacks") >= 1
        assert rival.nacks >= 1
        release_time = harness.sim.now
        harness.caches[0].counter.decrement()  # data access "completes"
        harness.run()
        assert rival.committed
        assert rival.commit_time >= release_time

    def test_remote_sync_queued_while_reserved(self):
        harness, sync = self._held_reserve_scenario(nack_mode=False)
        rival = harness.access(1, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.sim.run_for(300)
        assert not rival.committed
        assert harness.stats.count("cache.recalls_stalled") >= 1
        assert harness.stats.count("dir.sync_nacks") == 0
        harness.caches[0].counter.decrement()
        harness.run()
        assert rival.committed

    def test_rival_sees_sync_value_after_stall(self):
        harness, data, sync = self._reserve_scenario()
        rival = harness.access(1, OpKind.SYNC_RMW, "s", compute=lambda old: old)
        harness.run()
        assert rival.value == 1  # observes cache 0's TAS result

    def test_no_reserve_without_outstanding_accesses(self):
        harness = slow_reserve_harness()
        sync = harness.access(0, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.run()
        assert not harness.caches[0].is_reserved("s")

    def test_reserve_disabled_policy_never_reserves(self):
        harness = ProtocolHarness(
            num_caches=2, reserve_enabled=False, transfer_cycles=10
        )
        harness.write(1, "x", 1)
        harness.access(0, OpKind.WRITE, "x", write_value=2)
        sync = harness.access(0, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.run()
        assert harness.stats.count("cache.reserves_set") == 0


class TestReservedEviction:
    def test_reserved_line_never_chosen_as_victim(self):
        harness = slow_reserve_harness(num_caches=2, capacity=2)
        harness.write(1, "x", 1)  # make cache 0's write to x slow
        data = harness.access(0, OpKind.WRITE, "x", write_value=2)
        sync = harness.access(0, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.sim.run_until(lambda: sync.committed)
        if not harness.caches[0].is_reserved("s"):
            pytest.skip("timing did not reserve the line")
        # Fill a third line: the reserved s must survive.
        harness.access(0, OpKind.READ, "other")
        harness.run()
        assert harness.caches[0].line_value("s") is not None

    def test_over_capacity_resolves_after_drain(self):
        harness = slow_reserve_harness(num_caches=2, capacity=1)
        harness.write(1, "x", 1)
        harness.access(0, OpKind.WRITE, "x", write_value=2)
        harness.access(0, OpKind.SYNC_RMW, "s", compute=lambda old: 1)
        harness.run()
        assert not harness.caches[0].over_capacity
