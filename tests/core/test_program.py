"""Unit tests for programs, threads and the builder."""

import pytest

from repro.core.instructions import Branch, Condition, Jump, Load, Store
from repro.core.program import (
    Program,
    ProgramError,
    Thread,
    ThreadBuilder,
    straightline,
)


class TestThread:
    def test_label_resolution(self):
        thread = Thread("T", (Jump("end"), Load("r", "x")), {"end": 2})
        assert thread.target_of(thread.instructions[0]) == 2

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ProgramError):
            Thread("T", (Load("r", "x"),), {"bad": 5})

    def test_label_at_end_allowed(self):
        Thread("T", (Load("r", "x"),), {"end": 1})

    def test_undefined_branch_target_rejected(self):
        with pytest.raises(ProgramError):
            Thread("T", (Branch(Condition.EQ, "r", 0, "nowhere"),), {})

    def test_memory_locations(self):
        thread = Thread("T", (Load("r", "x"), Store("y", 1)), {})
        assert thread.memory_locations() == {"x", "y"}

    def test_len(self):
        assert len(straightline("T", [Load("r", "x")])) == 1


class TestProgram:
    def test_requires_a_thread(self):
        with pytest.raises(ProgramError):
            Program([])

    def test_duplicate_thread_names_rejected(self):
        t = straightline("T", [Load("r", "x")])
        with pytest.raises(ProgramError):
            Program([t, straightline("T", [Load("r", "y")])])

    def test_num_procs(self):
        t0 = straightline("P0", [Load("r", "x")])
        t1 = straightline("P1", [Load("r", "x")])
        assert Program([t0, t1]).num_procs == 2

    def test_locations_includes_initial_memory(self):
        t = straightline("P0", [Load("r", "x")])
        program = Program([t], initial_memory={"z": 5})
        assert program.locations() == {"x", "z"}

    def test_initial_value_default_zero(self):
        t = straightline("P0", [Load("r", "x")])
        program = Program([t], initial_memory={"x": 3})
        assert program.initial_value("x") == 3
        assert program.initial_value("y") == 0

    def test_threads_are_tuple(self):
        t = straightline("P0", [Load("r", "x")])
        assert isinstance(Program([t]).threads, tuple)


class TestThreadBuilder:
    def test_fluent_chain_builds_in_order(self):
        thread = (
            ThreadBuilder("P0").store("x", 1).load("r1", "y").nop().build()
        )
        assert len(thread) == 3
        assert isinstance(thread.instructions[0], Store)
        assert isinstance(thread.instructions[1], Load)

    def test_labels_point_at_next_instruction(self):
        thread = (
            ThreadBuilder("P0")
            .load("a", "x")
            .label("mid")
            .load("b", "y")
            .build()
        )
        assert thread.labels["mid"] == 1

    def test_duplicate_label_rejected(self):
        builder = ThreadBuilder("P0").label("l")
        with pytest.raises(ProgramError):
            builder.label("l")

    def test_spin_loop_shape(self):
        thread = (
            ThreadBuilder("P0")
            .label("spin")
            .test_and_set("t", "lock")
            .bne("t", 0, "spin")
            .build()
        )
        assert thread.labels["spin"] == 0
        branch = thread.instructions[1]
        assert isinstance(branch, Branch)
        assert thread.target_of(branch) == 0

    def test_all_branch_helpers(self):
        thread = (
            ThreadBuilder("P0")
            .label("l")
            .beq("a", 0, "l")
            .bne("a", 0, "l")
            .blt("a", 0, "l")
            .bge("a", 0, "l")
            .build()
        )
        conds = [i.cond for i in thread.instructions]
        assert conds == [Condition.EQ, Condition.NE, Condition.LT, Condition.GE]

    def test_nop_count(self):
        assert len(ThreadBuilder("P0").nop(5).build()) == 5

    def test_position_property(self):
        builder = ThreadBuilder("P0")
        assert builder.position == 0
        builder.nop(3)
        assert builder.position == 3

    def test_arithmetic_helpers(self):
        thread = (
            ThreadBuilder("P0")
            .mov("a", 1)
            .add("b", "a", 2)
            .sub("c", "b", 1)
            .mul("d", "c", 3)
            .build()
        )
        assert len(thread) == 4

    def test_sync_helpers_produce_sync_kinds(self):
        thread = (
            ThreadBuilder("P0")
            .sync_load("r", "s")
            .sync_store("s", 0)
            .test_and_set("t", "s")
            .swap("u", "s", 1)
            .fetch_and_add("v", "s", 1)
            .build()
        )
        assert all(i.kind.is_sync for i in thread.instructions)

    def test_halt_and_jump(self):
        thread = ThreadBuilder("P0").label("top").jump("top").halt().build()
        assert thread.target_of(thread.instructions[0]) == 0
