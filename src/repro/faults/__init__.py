"""repro.faults — seeded fault injection for adversarial timings.

Definition 2 promises SC to DRF0 software under *any* legal timing of
coherence messages.  This package supplies the adversary:

* :class:`FaultPlan` — a picklable, seed-derived description of a fault
  regime (latency jitter, bounded cross-channel reordering, duplicate
  deliveries), with CLI parsing and named presets
  (``repro.faults.plan``);
* :class:`FaultyInterconnect` — wraps any interconnect and perturbs
  message hand-off while preserving the per-channel FIFO contract the
  coherence protocols assume (``repro.faults.interconnect``).

Plans ride inside :class:`~repro.campaign.spec.RunSpec`, so litmus
campaigns, the conformance grid, and the CLI (``--faults``) can all
assert the DRF0 => SC contract under injected faults — and non-DRF
programs still surface their violations.
"""

from repro.faults.interconnect import FaultyInterconnect
from repro.faults.plan import PRESETS, FaultPlan, parse_fault_plan

__all__ = [
    "PRESETS",
    "FaultPlan",
    "FaultyInterconnect",
    "parse_fault_plan",
]
