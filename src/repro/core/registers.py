"""Per-thread register files.

Registers are named by strings (``"r1"``, ``"tmp"``, ...).  Unwritten
registers read as 0, matching the convention that memory also starts
zeroed (see :data:`repro.core.operation.INITIAL_VALUE`).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

Register = str


class RegisterFile:
    """A mutable mapping of register names to integer values.

    The register file is deliberately tiny: it supports exactly what the
    instruction set needs (read, write, snapshot) and hashable snapshots
    so the interleaving enumerator can memoize machine states.
    """

    __slots__ = ("_regs",)

    def __init__(self, initial: Mapping[Register, int] = ()) -> None:
        self._regs: Dict[Register, int] = dict(initial)

    def read(self, reg: Register) -> int:
        """Return the register's value; unwritten registers are 0."""
        return self._regs.get(reg, 0)

    def write(self, reg: Register, value: int) -> None:
        if not isinstance(value, int):
            raise TypeError(f"register {reg!r} must hold an int, got {value!r}")
        self._regs[reg] = value

    def snapshot(self) -> Tuple[Tuple[Register, int], ...]:
        """A hashable, canonical view of the register state.

        Zero-valued entries are dropped so that an explicitly-written 0 is
        indistinguishable from the default — which is exactly the
        semantics of :meth:`read`.
        """
        return tuple(sorted((r, v) for r, v in self._regs.items() if v != 0))

    def as_dict(self) -> Dict[Register, int]:
        """A plain-dict copy (zero-defaulted entries omitted)."""
        return {r: v for r, v in self._regs.items() if v != 0}

    def copy(self) -> "RegisterFile":
        return RegisterFile(self._regs)

    def __iter__(self) -> Iterator[Register]:
        return iter(self._regs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __hash__(self) -> int:
        return hash(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterFile({self.as_dict()})"
