"""Unit tests for the timing RNG."""

from repro.sim.rng import TimingRng, seed_stream


class TestTimingRng:
    def test_deterministic_by_seed(self):
        a = TimingRng(42)
        b = TimingRng(42)
        assert [a.latency(5, 10) for _ in range(20)] == [
            b.latency(5, 10) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = [TimingRng(1).latency(0, 1000) for _ in range(5)]
        b = [TimingRng(2).latency(0, 1000) for _ in range(5)]
        assert a != b

    def test_latency_bounds(self):
        rng = TimingRng(7)
        for _ in range(200):
            latency = rng.latency(5, 10)
            assert 5 <= latency <= 15

    def test_zero_jitter_exact(self):
        rng = TimingRng(7)
        assert all(rng.latency(4, 0) == 4 for _ in range(10))

    def test_fork_independent_and_deterministic(self):
        a = TimingRng(42).fork(1)
        b = TimingRng(42).fork(1)
        c = TimingRng(42).fork(2)
        assert a.latency(0, 100) == b.latency(0, 100)
        assert a.seed != c.seed

    def test_shuffled_leaves_original(self):
        rng = TimingRng(1)
        items = [1, 2, 3, 4, 5]
        out = rng.shuffled(items)
        assert sorted(out) == items
        assert items == [1, 2, 3, 4, 5]

    def test_choice_and_randint(self):
        rng = TimingRng(1)
        assert rng.choice([3]) == 3
        assert 1 <= rng.randint(1, 2) <= 2


class TestSeedStream:
    def test_count(self):
        assert len(list(seed_stream(1, 10))) == 10

    def test_deterministic(self):
        assert list(seed_stream(5, 5)) == list(seed_stream(5, 5))

    def test_mostly_distinct(self):
        seeds = list(seed_stream(9, 100))
        assert len(set(seeds)) > 95
