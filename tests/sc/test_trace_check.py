"""Tests for the direct (constraint-graph) SC trace checker."""

import pytest

from repro.core.execution import Execution
from repro.core.operation import MemoryOp, OpKind
from repro.litmus.catalog import fig1_dekker, message_passing
from repro.memsys.config import NET_CACHE, NET_NOCACHE
from repro.memsys.system import run_program
from repro.models.policies import Def2Policy, RelaxedPolicy, SCPolicy
from repro.sc.trace_check import check_trace_sc
from repro.sc.verifier import SCVerifier
from repro.workloads.random_programs import random_racy_program


def op(kind, loc, proc, pos=0, read=None, written=None, commit=None):
    o = MemoryOp(
        proc=proc, kind=kind, location=loc, thread_pos=pos,
        value_read=read, value_written=written,
    )
    o.commit_time = commit
    return o


class TestManualTraces:
    def test_empty_trace_is_sc(self):
        assert check_trace_sc(Execution()).is_sc

    def test_simple_handoff_is_sc(self):
        trace = Execution(
            ops=[
                op(OpKind.WRITE, "x", 0, written=1, commit=1),
                op(OpKind.READ, "x", 1, read=1, commit=2),
            ]
        )
        assert check_trace_sc(trace).is_sc

    def test_dekker_violation_has_cycle(self):
        """Both reads returning 0 with both writes present: the classic
        po+fr cycle."""
        trace = Execution(
            ops=[
                op(OpKind.WRITE, "x", 0, pos=0, written=1, commit=1),
                op(OpKind.WRITE, "y", 1, pos=0, written=1, commit=2),
                op(OpKind.READ, "y", 0, pos=1, read=0, commit=3),
                op(OpKind.READ, "x", 1, pos=1, read=0, commit=4),
            ]
        )
        result = check_trace_sc(trace)
        assert not result.is_sc
        assert result.cycle

    def test_mp_stale_read_has_cycle(self):
        trace = Execution(
            ops=[
                op(OpKind.WRITE, "x", 0, pos=0, written=42, commit=1),
                op(OpKind.WRITE, "f", 0, pos=1, written=1, commit=2),
                op(OpKind.READ, "f", 1, pos=0, read=1, commit=3),
                op(OpKind.READ, "x", 1, pos=1, read=0, commit=4),
            ]
        )
        assert not check_trace_sc(trace).is_sc

    def test_thin_air_read_reported(self):
        trace = Execution(
            ops=[op(OpKind.READ, "x", 0, read=9, commit=1)]
        )
        result = check_trace_sc(trace)
        assert not result.is_sc
        assert result.unexplained_reads

    def test_initial_value_read_before_write_is_sc(self):
        trace = Execution(
            ops=[
                op(OpKind.READ, "x", 1, read=0, commit=1),
                op(OpKind.WRITE, "x", 0, written=1, commit=2),
            ]
        )
        assert check_trace_sc(trace).is_sc

    def test_rmw_chain_is_sc(self):
        trace = Execution(
            ops=[
                op(OpKind.SYNC_RMW, "l", 0, read=0, written=1, commit=1),
                op(OpKind.SYNC_RMW, "l", 1, read=1, written=2, commit=2),
            ]
        )
        assert check_trace_sc(trace).is_sc

    def test_describe(self):
        good = check_trace_sc(Execution())
        assert "sequentially consistent" in good.describe()


class TestAgainstHardwareRuns:
    def test_sc_policy_traces_always_pass(self):
        for seed in range(10):
            program = random_racy_program(seed, num_procs=2, ops_per_proc=4)
            run = run_program(program, SCPolicy(), NET_CACHE, seed=seed)
            assert run.completed
            result = check_trace_sc(run.execution, dict(program.initial_memory))
            assert result.is_sc, result.describe()

    def test_relaxed_violations_fail(self):
        """Where the result-set oracle says non-SC, the trace checker
        must find a cycle (distinct written values -> exact)."""
        verifier = SCVerifier()
        test = fig1_dekker(warm=True)
        program = test.executable_program()
        sc_set = verifier.sc_result_set(program)
        checked = 0
        for seed in range(60):
            run = run_program(program, RelaxedPolicy(), NET_CACHE, seed=seed)
            if not run.completed:
                continue
            expected = run.observable in sc_set
            result = check_trace_sc(run.execution, dict(program.initial_memory))
            assert result.is_sc == expected, (seed, result.describe())
            checked += 1
        assert checked >= 50

    def test_agreement_with_oracle_on_mp(self):
        verifier = SCVerifier()
        test = message_passing(warm=True)
        program = test.executable_program()
        sc_set = verifier.sc_result_set(program)
        for seed in range(40):
            run = run_program(program, RelaxedPolicy(), NET_CACHE, seed=seed)
            if not run.completed:
                continue
            result = check_trace_sc(run.execution, dict(program.initial_memory))
            assert result.is_sc == (run.observable in sc_set), seed

    def test_def2_drf0_traces_pass(self):
        from repro.workloads.random_programs import random_drf0_program

        for seed in range(6):
            program = random_drf0_program(seed)
            run = run_program(program, Def2Policy(), NET_CACHE, seed=seed)
            assert run.completed
            result = check_trace_sc(run.execution, dict(program.initial_memory))
            assert result.is_sc, result.describe()
