"""Generate ``BENCH_prN.json`` — the committed perf-trajectory snapshot.

The ROADMAP asks for a committed perf trajectory: one JSON per PR at the
repo root recording the wall-clock of the three headline benchmarks
(figure3, verify, explore) plus, from PR 6 on, the same litmus campaign
timed on both processor cores and the disabled-tracing baseline that
``bench_trace`` budgets against, from PR 7 on, the campaign-journal
durability overhead measured by ``bench_journal``, from PR 8 on,
the metrics-registry overhead (the same campaign with the registry off
and on) plus a ``host`` block stamping where the numbers came from,
and, from PR 10 on, the axiomatic checker's candidate-enumeration
kernel (Dekker across every model, warm IRIW's 4096 candidates).
The PR number is derived from the output filename.  Run from the repo
root::

    PYTHONPATH=src python benchmarks/make_bench_json.py BENCH_pr8.json

Numbers are best-of-N wall-clock on whatever box runs the script —
comparable *along* the trajectory only when the box stays the same,
which is why CI regenerates its own copy as an artifact instead of
diffing against the committed one, and why
``benchmarks/bench_compare.py`` (which *does* diff two snapshots)
applies generous tolerance bands to ``_s``-suffixed timings.
"""

import json
import os
import platform
import re
import sys
import tempfile
import time

from repro.analysis.figure3 import figure3_sweep
from repro.explore.explorer import explore_program
from repro.litmus.catalog import (
    fig1_dekker,
    store_forward_chain,
    store_forward_dekker,
)
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import NET_CACHE
from repro.models.policies import RelaxedPolicy, policy_by_name
from repro.sc.verifier import SCVerifier

REPEATS = 3
CAMPAIGN_RUNS = 40


def best_of(fn, repeats=REPEATS):
    result = fn()  # warm caches outside the timed region
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def core_campaign(core):
    runner = LitmusRunner()
    results = []
    for make_test in (store_forward_dekker, store_forward_chain):
        results.append(
            runner.run(
                make_test(),
                lambda: policy_by_name("DEF1", core=core),
                NET_CACHE,
                runs=CAMPAIGN_RUNS,
                base_seed=7,
            )
        )
    return results


def obs_overhead():
    """The metrics registry's campaign-level cost, off and on.

    The disabled number is the one the ≤5% budget protects (one
    attribute load and one branch per site); the enabled number is
    informational — turning observability on is allowed to cost more.
    """
    from repro.litmus.catalog import fig1_dekker as make_dekker
    from repro.obs import METRICS

    runner = LitmusRunner()

    def campaign():
        return runner.run(
            make_dekker(), RelaxedPolicy, NET_CACHE,
            runs=CAMPAIGN_RUNS, base_seed=11,
        )

    was_enabled = METRICS.enabled
    try:
        METRICS.disable()
        disabled_s, _ = best_of(campaign)
        METRICS.enable()
        enabled_s, _ = best_of(campaign)
    finally:
        METRICS.enabled = was_enabled
    return {
        "campaign_disabled_s": round(disabled_s, 4),
        "campaign_enabled_s": round(enabled_s, 4),
        "overhead_enabled_pct": round(
            (enabled_s - disabled_s) / disabled_s * 100, 4
        ),
        "runs": CAMPAIGN_RUNS,
    }


def axiomatic_kernel():
    """The cross-checker's unit of work, on its bounding shapes."""
    from repro.axiomatic import enumerate_candidates, model_by_name
    from repro.axiomatic.crosscheck import allowed_outcomes
    from repro.litmus.catalog import iriw

    runner = LitmusRunner()
    dekker = runner.executable(fig1_dekker())
    iriw_program = runner.executable(iriw(warm=True))
    models = ("SC", "TSO", "PSO", "WO", "RELAXED")

    dekker_s, sets = best_of(
        lambda: {
            name: allowed_outcomes(dekker, model_by_name(name))
            for name in models
        }
    )
    iriw_s, candidates = best_of(
        lambda: sum(1 for _ in enumerate_candidates(iriw_program))
    )
    return {
        "dekker_all_models_s": round(dekker_s, 4),
        "iriw_enumerate_s": round(iriw_s, 4),
        "iriw_candidates": candidates,
        "sc_outcomes": len(sets["SC"]),
    }


def pr_number(out_path):
    """The PR number a ``BENCH_prN.json`` filename names (None if odd)."""
    match = re.search(r"pr(\d+)", os.path.basename(str(out_path)))
    return int(match.group(1)) if match else None


def host_metadata():
    """Where the numbers came from — the context that decides whether
    two snapshots are comparable at all."""
    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "platform": platform.system(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
    }


def main(out_path):
    fig3_s, _ = best_of(
        lambda: figure3_sweep(latencies=[4, 16, 64], seeds=[1, 2])
    )
    verify_s, sc_set = best_of(
        lambda: SCVerifier().sc_result_set(fig1_dekker().program)
    )
    explore_s, report = best_of(
        lambda: explore_program(
            fig1_dekker().executable_program(), RelaxedPolicy, max_delays=1
        )
    )

    cores = {}
    for core in ("simple", "pipelined"):
        campaign_s, results = best_of(lambda: core_campaign(core))
        cores[core] = {
            "campaign_s": round(campaign_s, 4),
            "mean_cycles": round(
                sum(r.mean_cycles for r in results) / len(results), 1
            ),
            "runs": sum(r.runs for r in results),
        }

    from bench_journal import measure_journal_overhead

    with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
        journal = {
            key: round(value, 4)
            for key, value in measure_journal_overhead(tmp).items()
        }

    obs = obs_overhead()

    snapshot = {
        "schema": "repro-bench/1",
        "pr": pr_number(out_path),
        "host": host_metadata(),
        "bench_figure3": {"sweep_s": round(fig3_s, 4)},
        "bench_verify": {
            "dekker_sc_set_s": round(verify_s, 4),
            "sc_outcomes": len(sc_set),
        },
        "bench_explore": {
            "dekker_1delay_s": round(explore_s, 4),
            "runs": report.runs,
        },
        "cores": cores,
        "bench_axiomatic": axiomatic_kernel(),
        "bench_journal": journal,
        "bench_obs": obs,
        "trace_baseline_untraced_s": 0.028,
    }
    with open(out_path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(snapshot, indent=2, sort_keys=True))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr10.json")
