"""Unit tests for the instruction set."""

import pytest

from repro.core.instructions import (
    Arith,
    BinOp,
    Branch,
    Condition,
    FetchAndAdd,
    Jump,
    Load,
    Mov,
    Nop,
    Store,
    Swap,
    SyncLoad,
    SyncStore,
    TestAndSet,
    operand_value,
)
from repro.core.operation import OpKind
from repro.core.registers import RegisterFile


class TestOperands:
    def test_immediate(self):
        assert operand_value(RegisterFile(), 7) == 7

    def test_register(self):
        regs = RegisterFile({"r": 5})
        assert operand_value(regs, "r") == 5

    def test_unset_register_is_zero(self):
        assert operand_value(RegisterFile(), "r") == 0


class TestMemoryInstructions:
    def test_load_kind_and_dest(self):
        instr = Load("r1", "x")
        assert instr.kind is OpKind.READ
        assert instr.dest == "r1"
        with pytest.raises(TypeError):
            instr.compute_write(RegisterFile(), 0)

    def test_store_value_from_register(self):
        regs = RegisterFile({"v": 9})
        assert Store("x", "v").compute_write(regs, old_value=123) == 9

    def test_store_value_immediate_ignores_old(self):
        assert Store("x", 4).compute_write(RegisterFile(), old_value=77) == 4

    def test_sync_load_is_read_only_sync(self):
        instr = SyncLoad("r1", "s")
        assert instr.kind is OpKind.SYNC_READ
        with pytest.raises(TypeError):
            instr.compute_write(RegisterFile(), 0)

    def test_sync_store_is_write_only_sync(self):
        instr = SyncStore("s", 0)
        assert instr.kind is OpKind.SYNC_WRITE
        assert instr.dest is None
        assert instr.compute_write(RegisterFile(), 1) == 0

    def test_test_and_set_writes_one(self):
        instr = TestAndSet("r1", "s")
        assert instr.kind is OpKind.SYNC_RMW
        assert instr.compute_write(RegisterFile(), old_value=0) == 1
        assert instr.compute_write(RegisterFile(), old_value=1) == 1

    def test_swap_writes_operand(self):
        regs = RegisterFile({"v": 3})
        assert Swap("r1", "s", "v").compute_write(regs, old_value=8) == 3

    def test_fetch_and_add_uses_old_value(self):
        regs = RegisterFile({"inc": 2})
        assert FetchAndAdd("r1", "c", "inc").compute_write(regs, old_value=10) == 12
        assert FetchAndAdd("r1", "c", 1).compute_write(regs, old_value=10) == 11


class TestRegisterInstructions:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (BinOp.ADD, 2, 3, 5),
            (BinOp.SUB, 2, 3, -1),
            (BinOp.MUL, 2, 3, 6),
            (BinOp.AND, 6, 3, 2),
            (BinOp.OR, 6, 3, 7),
            (BinOp.XOR, 6, 3, 5),
        ],
    )
    def test_binop_table(self, op, a, b, expected):
        assert op.evaluate(a, b) == expected

    def test_arith_applies(self):
        regs = RegisterFile({"a": 4})
        Arith(BinOp.ADD, "d", "a", 1).apply(regs)
        assert regs.read("d") == 5

    def test_mov(self):
        regs = RegisterFile({"s": 7})
        Mov("d", "s").apply(regs)
        assert regs.read("d") == 7
        Mov("d", 2).apply(regs)
        assert regs.read("d") == 2

    def test_nop_changes_nothing(self):
        regs = RegisterFile({"a": 1})
        Nop().apply(regs)
        assert regs.as_dict() == {"a": 1}


class TestControlFlow:
    @pytest.mark.parametrize(
        "cond,a,b,expected",
        [
            (Condition.EQ, 1, 1, True),
            (Condition.EQ, 1, 2, False),
            (Condition.NE, 1, 2, True),
            (Condition.LT, 1, 2, True),
            (Condition.LT, 2, 2, False),
            (Condition.LE, 2, 2, True),
            (Condition.GT, 3, 2, True),
            (Condition.GE, 2, 2, True),
            (Condition.GE, 1, 2, False),
        ],
    )
    def test_condition_table(self, cond, a, b, expected):
        assert cond.holds(a, b) == expected

    def test_branch_taken_reads_registers(self):
        regs = RegisterFile({"r": 0})
        assert Branch(Condition.EQ, "r", 0, "target").taken(regs)
        regs.write("r", 1)
        assert not Branch(Condition.EQ, "r", 0, "target").taken(regs)

    def test_jump_carries_target(self):
        assert Jump("loop").target == "loop"
