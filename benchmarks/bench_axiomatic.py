"""MODELS — the axiomatic checker's candidate-enumeration cost.

The cross-checker's unit of work is `allowed_outcomes(program, model)`:
enumerate every candidate execution (rf choices x co permutations,
fixpoint value resolution) and filter by the model's acyclicity axioms.
This benchmark times that kernel on the two catalog shapes that bound
the practical range — Dekker's SB (the common 2x2 case) and IRIW (the
4-processor worst case in the catalog, 4096 candidates) — and asserts:

* exactness holds while we time it (SC == exhaustive interleaving);
* the whole-catalog cross-check stays cheap enough to live in CI —
  enumerating Dekker under every model fits a tight per-call budget.
"""

import time

from repro.axiomatic import enumerate_candidates, model_by_name
from repro.axiomatic.crosscheck import allowed_outcomes
from repro.litmus.catalog import fig1_dekker, iriw
from repro.litmus.runner import LitmusRunner

MODELS = ("SC", "TSO", "PSO", "WO", "RELAXED")


def _enumerate_all_models(program):
    return {
        name: allowed_outcomes(program, model_by_name(name))
        for name in MODELS
    }


def test_axiomatic_enumeration_cost(benchmark):
    runner = LitmusRunner()
    dekker = runner.executable(fig1_dekker())
    # Warm IRIW: the warm-up loads multiply the rf choices, making this
    # the biggest candidate space in the catalog (4096).
    iriw_program = runner.executable(iriw(warm=True))
    _enumerate_all_models(dekker)  # warm imports outside the timed region

    sets = benchmark.pedantic(
        lambda: _enumerate_all_models(dekker), rounds=3, iterations=1
    )

    start = time.perf_counter()
    candidates = sum(1 for _ in enumerate_candidates(iriw_program))
    iriw_s = time.perf_counter() - start

    sc_set = frozenset(runner.verifier.sc_result_set(dekker))
    print(f"\n[AXIOMATIC] dekker x {len(MODELS)} models: "
          f"{', '.join(f'{m}={len(s)}' for m, s in sets.items())}")
    print(f"  iriw: {candidates} candidates in {iriw_s * 1e3:.1f} ms")

    # Exactness while we time it: the SC axioms reproduce enumeration.
    assert sets["SC"] == sc_set
    # The relaxation ladder is strict where it must be.
    assert sets["SC"] < sets["TSO"] <= sets["PSO"] <= sets["RELAXED"]
    # Cheap enough for the per-cell CI cross-check.
    assert iriw_s < 30.0
    assert candidates == 4096
