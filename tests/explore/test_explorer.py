"""Tests for delay-bounded systematic exploration."""

import pytest

from repro.core.program import Program, ThreadBuilder
from repro.explore.explorer import explore_program, verify_weak_ordering
from repro.litmus.catalog import fig1_dekker, fig1_dekker_all_sync
from repro.models.policies import Def2Policy, RelaxedPolicy, SCPolicy
from repro.sc.verifier import SCVerifier


@pytest.fixture(scope="module")
def verifier():
    return SCVerifier()


class TestExploreProgram:
    def test_budget_zero_is_single_fifo_run(self):
        program = fig1_dekker().program
        report = explore_program(program, RelaxedPolicy, max_delays=0)
        assert report.runs == 1
        assert report.exhausted

    def test_runs_grow_with_budget(self):
        program = fig1_dekker().program
        runs = [
            explore_program(program, RelaxedPolicy, max_delays=d).runs
            for d in (0, 1, 2)
        ]
        assert runs[0] < runs[1] < runs[2]

    def test_outcome_sets_monotone_in_budget(self):
        program = fig1_dekker(warm=True).executable_program()
        smaller = explore_program(program, RelaxedPolicy, max_delays=1)
        larger = explore_program(program, RelaxedPolicy, max_delays=2)
        assert smaller.observables <= larger.observables

    def test_finds_the_figure1_violation(self, verifier):
        program = fig1_dekker(warm=True).executable_program()
        sc_set = verifier.sc_result_set(program)
        report = explore_program(program, RelaxedPolicy, max_delays=2)
        assert any(outcome not in sc_set for outcome in report.observables)

    def test_max_runs_truncation_reported(self):
        program = fig1_dekker().program
        report = explore_program(
            program, RelaxedPolicy, max_delays=3, max_runs=5
        )
        assert not report.exhausted
        assert report.runs == 5

    def test_deterministic(self):
        program = fig1_dekker().program
        a = explore_program(program, RelaxedPolicy, max_delays=2)
        b = explore_program(program, RelaxedPolicy, max_delays=2)
        assert a.outcomes == b.outcomes
        assert a.runs == b.runs

    def test_describe(self):
        program = fig1_dekker().program
        text = explore_program(program, RelaxedPolicy, max_delays=1).describe()
        assert "schedules" in text and "outcome" in text


class TestVerifyWeakOrdering:
    def test_def2_holds_on_drf0_dekker(self, verifier):
        program = fig1_dekker_all_sync(warm=True).executable_program()
        holds, report = verify_weak_ordering(
            program, Def2Policy, verifier.sc_result_set(program), max_delays=3
        )
        assert holds
        assert report.exhausted
        assert report.incomplete_runs == 0

    def test_sc_policy_holds_even_for_racy_program(self, verifier):
        program = fig1_dekker(warm=True).executable_program()
        holds, _ = verify_weak_ordering(
            program, SCPolicy, verifier.sc_result_set(program), max_delays=2
        )
        assert holds

    def test_relaxed_fails_on_racy_program(self, verifier):
        program = fig1_dekker(warm=True).executable_program()
        holds, _ = verify_weak_ordering(
            program, RelaxedPolicy, verifier.sc_result_set(program), max_delays=2
        )
        assert not holds

    def test_def2_holds_on_lock_program(self, verifier):
        from repro.workloads.locks import critical_section_program

        program = critical_section_program(2, 1)
        holds, report = verify_weak_ordering(
            program, Def2Policy, verifier.sc_result_set(program), max_delays=2
        )
        assert holds
        assert report.exhausted


class TestOutcomesSubsetOfSampling:
    def test_all_explored_outcomes_are_sc_for_sc_policy(self, verifier):
        """Cross-validation: systematic outcomes under the SC policy are
        always in the enumerated SC set, for an arbitrary program."""
        t0 = ThreadBuilder("P0").store("x", 1).load("r1", "y").store("z", 2).build()
        t1 = ThreadBuilder("P1").store("y", 1).load("r2", "z").load("r3", "x").build()
        program = Program([t0, t1], name="abc")
        sc_set = verifier.sc_result_set(program)
        report = explore_program(program, SCPolicy, max_delays=3)
        assert report.observables <= sc_set
