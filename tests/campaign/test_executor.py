"""Serial and parallel executors: ordering, equivalence, lifecycle."""

import pickle

from repro.campaign import (
    ParallelExecutor,
    PolicySpec,
    RunSpec,
    SerialExecutor,
    default_executor,
    run_campaign,
)
from repro.litmus.catalog import fig1_dekker
from repro.memsys.config import NET_NOCACHE
from repro.models.policies import RelaxedPolicy


def _specs(n):
    program = fig1_dekker().program
    policy = PolicySpec.of(RelaxedPolicy)
    return [
        RunSpec(program=program, policy=policy, config=NET_NOCACHE, seed=seed)
        for seed in range(n)
    ]


class TestSerialExecutor:
    def test_preserves_spec_order(self):
        specs = _specs(6)
        results = SerialExecutor().map(specs)
        assert len(results) == 6
        # Same seed -> same result; order must match the spec list.
        again = SerialExecutor().map(specs)
        assert pickle.dumps(results) == pickle.dumps(again)


class TestParallelExecutor:
    def test_byte_identical_to_serial(self):
        specs = _specs(8)
        serial = SerialExecutor().map(specs)
        with ParallelExecutor(jobs=2) as executor:
            parallel = executor.map(specs)
        # Per-result pickles (list-level pickling shares memoised
        # sub-objects between in-process results, which is layout, not
        # data).
        assert [pickle.dumps(r) for r in serial] == [
            pickle.dumps(r) for r in parallel
        ]

    def test_single_spec_short_circuits(self):
        executor = ParallelExecutor(jobs=2)
        try:
            results = executor.map(_specs(1))
            assert len(results) == 1
            assert executor._pool is None  # never spawned workers
        finally:
            executor.close()

    def test_pool_reused_across_batches(self):
        with ParallelExecutor(jobs=2) as executor:
            executor.map(_specs(3))
            pool = executor._pool
            executor.map(_specs(3))
            assert executor._pool is pool

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(jobs=2)
        executor.map(_specs(2))
        executor.close()
        executor.close()

    def test_spawn_context_byte_identical(self):
        # Multi-threaded hosts (the service tier) run with
        # mp_context="spawn"; results must not depend on it.
        specs = _specs(4)
        serial = SerialExecutor().map(specs)
        with ParallelExecutor(jobs=2, mp_context="spawn") as executor:
            spawned = executor.map(specs)
            assert executor._pool is not None
        assert [pickle.dumps(r) for r in serial] == [
            pickle.dumps(r) for r in spawned
        ]


class TestDefaultExecutor:
    def test_serial_for_one_job(self):
        assert isinstance(default_executor(1), SerialExecutor)
        assert isinstance(default_executor(None), SerialExecutor)

    def test_parallel_above_one(self):
        executor = default_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3


class TestRunCampaign:
    def test_metrics_summarise_the_batch(self):
        campaign = run_campaign(_specs(5), label="unit")
        assert len(campaign) == 5
        metrics = campaign.metrics
        assert metrics.label == "unit"
        assert metrics.runs == 5
        assert metrics.completed_runs == 5
        assert metrics.completion_rate == 1.0
        assert metrics.wall_clock_seconds > 0
        assert metrics.runs_per_second > 0
        assert metrics.jobs == 1

    def test_metrics_hooks_observe_campaigns(self):
        from repro.campaign import register_metrics_hook, unregister_metrics_hook

        seen = []
        hook = seen.append
        register_metrics_hook(hook)
        try:
            run_campaign(_specs(2), label="observed")
        finally:
            unregister_metrics_hook(hook)
        assert [m.label for m in seen] == ["observed"]
        assert "runs_per_second" in seen[0].to_dict()

    def test_jobs_parameter_matches_serial(self):
        specs = _specs(4)
        serial = run_campaign(specs).results
        parallel = run_campaign(specs, jobs=2).results
        assert [pickle.dumps(r) for r in serial] == [
            pickle.dumps(r) for r in parallel
        ]
