"""Units for the conflict-aware pruning building blocks.

The independence relation, the static footprints, the exact next-access
peek, and the persistent-set closure — each checked in isolation so an
equivalence-suite failure can be localised.
"""

from repro.core.program import Program, ThreadBuilder
from repro.delayset import static_footprints
from repro.sc.executor import IdealizedMachine
from repro.sc.independence import (
    SearchStats,
    conflict_dep,
    hb_dep,
    persistent_set,
)


def _summary(loc, writes=False, sync=False):
    return (loc, writes, sync)


class TestDependenceRelations:
    def test_different_locations_always_independent(self):
        assert not conflict_dep(_summary("x", True), _summary("y", True))
        assert not hb_dep(
            _summary("x", True, True), _summary("y", True, True)
        )

    def test_same_location_read_write_conflicts(self):
        assert conflict_dep(_summary("x"), _summary("x", True))
        assert conflict_dep(_summary("x", True), _summary("x"))
        assert hb_dep(_summary("x"), _summary("x", True))

    def test_same_location_both_reads_commute_for_results(self):
        assert not conflict_dep(_summary("x"), _summary("x"))

    def test_sync_read_pair_dependent_only_under_hb(self):
        # DRF0's so orders every same-location sync pair, so the
        # execution stream must not swap two sync reads of one location.
        a = _summary("x", False, True)
        b = _summary("x", False, True)
        assert not conflict_dep(a, b)
        assert hb_dep(a, b)

    def test_plain_read_pair_commutes_even_under_hb(self):
        assert not hb_dep(_summary("x"), _summary("x"))


class TestStaticFootprints:
    def test_straightline_footprint_shrinks_along_the_thread(self):
        t = (
            ThreadBuilder("P0")
            .store("x", 1)
            .load("r0", "y")
            .build()
        )
        program = Program([t], name="fp")
        (fps,) = static_footprints(program)
        assert fps[0] == {("x", True, False), ("y", False, False)}
        assert fps[1] == {("y", False, False)}
        assert fps[2] == frozenset()

    def test_branch_footprint_covers_both_arms(self):
        t = (
            ThreadBuilder("P0")
            .load("r0", "flag")
            .beq("r0", 0, "skip")
            .store("x", 1)
            .label("skip")
            .store("y", 1)
            .build()
        )
        program = Program([t], name="fp-branch")
        (fps,) = static_footprints(program)
        # From the branch, both the fall-through store to x and the
        # taken-path store to y are reachable.
        assert ("x", True, False) in fps[1]
        assert ("y", True, False) in fps[1]
        # Past the branch target only y remains.
        assert fps[3] == {("y", True, False)}

    def test_loop_footprint_is_a_fixpoint(self):
        t = (
            ThreadBuilder("P0")
            .label("spin")
            .sync_load("r0", "lock")
            .beq("r0", 0, "spin")
            .store("x", 1)
            .build()
        )
        program = Program([t], name="fp-loop")
        (fps,) = static_footprints(program)
        # Inside the loop both the sync read and the eventual store are
        # reachable, at every pc of the loop.
        for pc in (0, 1):
            assert ("lock", False, True) in fps[pc]
            assert ("x", True, False) in fps[pc]


class TestNextAccess:
    def test_peeks_through_register_instructions(self):
        t = (
            ThreadBuilder("P0")
            .mov("r0", 7)
            .add("r1", "r0", 1)
            .store("x", "r1")
            .build()
        )
        program = Program([t], name="peek")
        machine = IdealizedMachine(program)
        assert machine.next_access(0) == ("x", True, False)
        # Peeking must not advance the machine.
        assert machine.thread_pc(0) == 0

    def test_none_when_thread_will_halt(self):
        t = ThreadBuilder("P0").mov("r0", 1).build()
        program = Program([t], name="halts")
        machine = IdealizedMachine(program)
        assert machine.next_access(0) is None

    def test_matches_the_op_actually_performed(self):
        t = (
            ThreadBuilder("P0")
            .load("r0", "y")
            .store("x", 1)
            .build()
        )
        program = Program([t], name="agree")
        machine = IdealizedMachine(program)
        peek = machine.next_access(0)
        op = machine.step(0)
        assert op is not None
        assert peek == (op.location, op.kind.writes_memory, op.kind.is_sync)


def _two_thread_program(loc_a, loc_b):
    ta = ThreadBuilder("P0").store(loc_a, 1).build()
    tb = ThreadBuilder("P1").store(loc_b, 1).build()
    return Program([ta, tb], name=f"pair-{loc_a}-{loc_b}")


class TestPersistentSet:
    def test_disjoint_threads_give_singleton(self):
        program = _two_thread_program("x", "y")
        machine = IdealizedMachine(program)
        footprints = static_footprints(program)
        chosen = persistent_set(machine, [0, 1], footprints, conflict_dep)
        assert len(chosen) == 1

    def test_conflicting_threads_expand_both(self):
        program = _two_thread_program("x", "x")
        machine = IdealizedMachine(program)
        footprints = static_footprints(program)
        chosen = persistent_set(machine, [0, 1], footprints, conflict_dep)
        assert chosen == [0, 1]

    def test_halting_thread_is_a_singleton(self):
        ta = ThreadBuilder("P0").mov("r0", 1).build()
        tb = ThreadBuilder("P1").store("x", 1).build()
        program = Program([ta, tb], name="halting")
        machine = IdealizedMachine(program)
        footprints = static_footprints(program)
        chosen = persistent_set(machine, [0, 1], footprints, conflict_dep)
        assert len(chosen) == 1

    def test_closure_pulls_in_future_conflicts(self):
        # P1's *first* access (z) is independent of P0's next (x), but
        # its footprint later writes x — the closure must keep P1 out of
        # a {P0}-only set or pull it in; either way the result stays
        # persistent.  With both threads eventually touching x, the only
        # singleton candidates are those whose member's next access is
        # never conflicted by the other's footprint.
        ta = ThreadBuilder("P0").store("x", 1).build()
        tb = ThreadBuilder("P1").store("z", 1).store("x", 2).build()
        program = Program([ta, tb], name="closure")
        machine = IdealizedMachine(program)
        footprints = static_footprints(program)
        chosen = persistent_set(machine, [0, 1], footprints, conflict_dep)
        # {P0} alone is not persistent (P1 can reach a write of x), but
        # {P1} is: P1's next access z conflicts with nothing in P0's
        # footprint... except nothing.  P0 only writes x, never z.
        assert chosen == [1]

    def test_next_cache_is_filled(self):
        program = _two_thread_program("x", "y")
        machine = IdealizedMachine(program)
        footprints = static_footprints(program)
        cache = {}
        persistent_set(machine, [0, 1], footprints, conflict_dep, cache)
        assert set(cache) == {0, 1}


class TestSearchStats:
    def test_as_dict_round_trips_counters(self):
        stats = SearchStats()
        stats.states = 5
        stats.transitions = 9
        stats.pruned_transitions = 3
        d = stats.as_dict()
        assert d["states"] == 5
        assert d["transitions"] == 9
        assert d["pruned_transitions"] == 3
