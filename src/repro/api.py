"""The stable public facade of the reproduction.

Every workflow the repo supports is reachable through seven
keyword-only, picklable-spec-based functions:

* :func:`run` — execute one program on simulated hardware;
* :func:`explore` — delay-bounded systematic exploration (with
  conflict-aware pruning);
* :func:`verify_sc` — the appears-SC check of Definition 2 (or, with
  ``model=``, classification against an axiomatic model);
* :func:`check_drf0` — the DRF0 program check of Definition 3;
* :func:`campaign` — a batch of :class:`~repro.campaign.spec.RunSpec`
  through the (serial or parallel, optionally cached) campaign layer;
* :func:`models` — introspection over every registered memory model:
  summaries, supported cores, and the axiomatic counterpart;
* :func:`crosscheck` — the operational-vs-axiomatic agreement check
  over the litmus catalog.

Arguments accept friendly forms everywhere: a policy may be a name
(``"DEF2"``), a :class:`~repro.campaign.spec.PolicySpec`, a policy
class, a zero-argument factory, or an instance; every ``policy=``
parameter has a model-centric alias ``model=`` (pass exactly one); a
machine may be a name (``"net_cache"``) or a
:class:`~repro.memsys.config.MachineConfig`; a fault plan may be a spec
string (``"jitter=12,reorder=20"``) or a :class:`~repro.faults.
FaultPlan`.

The module also re-exports the curated surface the CLI and downstream
tools build on, so ``from repro.api import ...`` is the only import a
consumer needs.  Internal entry points remain importable from their
home modules, but new code should come through here; the legacy
call patterns (positional ``explore_program`` options, positional
``SCVerifier``/``LitmusRunner`` arguments) warn with
``DeprecationWarning``.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Set, Union

from repro.analysis.figure3 import figure3_sweep
from repro.analysis.report import format_table
from repro.campaign import (
    CampaignJournal,
    CampaignMetrics,
    CampaignResult,
    Executor,
    JournalError,
    ParallelExecutor,
    PolicySpec,
    PreemptionToken,
    ResultCache,
    RunFailure,
    RunResult,
    RunSpec,
    SerialExecutor,
    current_token,
    default_executor,
    emit_metrics,
    graceful_preemption,
    open_journal,
    preempted_result,
    program_fingerprint,
    register_metrics_hook,
    run_campaign,
    unregister_metrics_hook,
)
from repro.conformance import (
    VERDICT_BROKEN,
    VERDICT_NA,
    VERDICT_SC,
    VERDICT_WEAK,
    ConformancePlan,
    ConformanceReport,
    judge_conformance,
    plan_conformance,
    run_conformance,
)
from repro.core.execution import Observable
from repro.core.program import Program, Thread, ThreadBuilder
from repro.delayset import (
    delay_pairs,
    describe_delay_set,
    minimal_delay_pairs,
    static_footprints,
)
from repro.drf.drf0 import DRFReport, check_program, obeys_drf0
from repro.drf.models import DRF0, DRF0_R, SynchronizationModel
from repro.explore.explorer import (
    ExplorationReport,
    explore_program,
    explore_to_fixpoint,
    verify_weak_ordering,
)
from repro.faults import FaultPlan, parse_fault_plan
from repro.cpu.core import core_names
from repro.litmus.catalog import (
    catalog_by_name,
    fig1_dekker,
    fig1_dekker_all_sync,
    forwarding_catalog,
    standard_catalog,
)
from repro.litmus.parse import parse_litmus
from repro.litmus.runner import LitmusResult, LitmusRunner
from repro.litmus.test import LitmusTest
from repro.log import configure_cli_logging, get_logger
from repro.obs import (
    METRICS,
    FlightRecorder,
    MetricsRegistry,
    ProgressReporter,
    Snapshot,
    disable_metrics,
    enable_metrics,
    load_snapshot,
    serve_metrics,
    to_prometheus,
    write_prometheus,
)
from repro.memsys.config import (
    BUS_CACHE,
    BUS_CACHE_SNOOP,
    BUS_NOCACHE,
    FIGURE1_CONFIGS,
    NET_CACHE,
    NET_CACHE_VC,
    NET_NOCACHE,
    MachineConfig,
    config_by_name,
)
from repro.memsys.system import System
from repro.models.base import policy_names, registered_policies
from repro.models.policies import (
    Def1Policy,
    Def2Policy,
    Def2RPolicy,
    PSOPolicy,
    RelaxedPolicy,
    SCPolicy,
    TSOPolicy,
    policy_by_name,
)
from repro.axiomatic import (
    AxiomaticModel,
    CrosscheckCell,
    CrosscheckReport,
    allowed_outcomes,
    axiomatic_model_names,
    crosscheck_models,
    is_straightline,
    model_by_name,
    model_for_policy,
)
from repro.axiomatic.candidates import DEFAULT_MAX_CANDIDATES
from repro.sanitizer.bundle import ReproBundle
from repro.sanitizer.triage import TriageConfig
from repro.sc.independence import SearchStats
from repro.sc.interleaving import enumerate_executions, enumerate_results
from repro.sc.verifier import SCVerifier, SCViolation
from repro.trace import (
    FORMATS,
    TraceEvent,
    TraceSpec,
    crosscheck_run,
    format_timeline,
    write_trace,
)
from repro.workloads.random_programs import (
    random_drf0_program,
    random_mixed_sync_program,
    random_racy_program,
    random_spin_program,
)

#: Forms accepted wherever the facade takes a policy.
PolicyLike = Union[str, PolicySpec, Callable, object]
#: Forms accepted wherever the facade takes a machine.
MachineLike = Union[str, MachineConfig, None]
#: Forms accepted wherever the facade takes a fault plan.
FaultsLike = Union[str, FaultPlan, None]


def _coerce_policy(
    policy: Optional[PolicyLike] = None,
    core: Optional[str] = None,
    model: Optional[PolicyLike] = None,
) -> PolicySpec:
    if (policy is None) == (model is None):
        raise TypeError(
            "pass exactly one of policy= or model= (they are aliases: "
            "model= is the model-centric spelling of the same argument)"
        )
    if policy is None:
        policy = model
    if isinstance(policy, str):
        spec = PolicySpec.of(policy_by_name(policy, core=core))
        core = None  # already validated and stamped
    else:
        spec = PolicySpec.of(policy)
    if core is not None and core != spec.core:
        # Validate against the policy's declared capability before
        # overriding whatever the PolicyLike form carried.
        from repro.cpu.core import core_class_by_name

        core_class_by_name(core)
        probe = spec.build()
        if core not in probe.supported_cores:
            raise ValueError(
                f"policy {spec.name} does not support core {core!r}; "
                f"supported: {list(probe.supported_cores)}"
            )
        spec = replace(spec, core=core)
    return spec


def _coerce_machine(machine: MachineLike) -> MachineConfig:
    if machine is None:
        return NET_CACHE
    if isinstance(machine, str):
        return config_by_name(machine)
    return machine


def _coerce_faults(faults: FaultsLike, seed: int) -> Optional[FaultPlan]:
    if faults is None or isinstance(faults, FaultPlan):
        return faults
    return parse_fault_plan(faults, seed=seed)


def run(
    program: Program,
    policy: Optional[PolicyLike] = None,
    *,
    model: Optional[PolicyLike] = None,
    machine: MachineLike = None,
    core: Optional[str] = None,
    seed: int = 0,
    max_cycles: int = 1_000_000,
    faults: FaultsLike = None,
    trace: Optional[TraceSpec] = None,
    sanitize: Optional[str] = None,
) -> RunResult:
    """Execute ``program`` once on simulated hardware.

    A thin veneer over :meth:`RunSpec.execute`: the call builds the
    picklable spec and runs it in-process, so anything :func:`run` can
    do also batches verbatim through :func:`campaign`.  ``model`` is
    the model-centric alias of ``policy`` (pass exactly one).  ``core``
    names the processor-core shape (``"simple"``/``"pipelined"``); the
    default keeps whatever the policy form carried (usually
    ``"simple"``).
    """
    spec = RunSpec(
        program=program,
        policy=_coerce_policy(policy, core=core, model=model),
        config=_coerce_machine(machine),
        seed=seed,
        max_cycles=max_cycles,
        faults=_coerce_faults(faults, seed),
        trace=trace,
        sanitize=sanitize,
    )
    return spec.execute()


def explore(
    program: Program,
    policy: Optional[PolicyLike] = None,
    *,
    model: Optional[PolicyLike] = None,
    max_delays: int = 2,
    prune: bool = True,
    machine: MachineLike = None,
    core: Optional[str] = None,
    max_runs: int = 20_000,
    max_cycles: int = 200_000,
    relaxed_request_channels: bool = False,
    inval_virtual_channel: bool = False,
    executor: Optional[Executor] = None,
    jobs: int = 1,
    trace: Optional[TraceSpec] = None,
    sanitize: Optional[str] = None,
    journal: Union[CampaignJournal, str, Path, None] = None,
    resume: bool = False,
    progress: Union[bool, "ProgressReporter", None] = None,
) -> ExplorationReport:
    """Systematically enumerate delay-bounded schedules of ``program``.

    See :func:`repro.explore.explorer.explore_program` for the search
    itself; ``prune`` skips delay decisions that provably commute
    (counted on the report, never changing the outcome set).  With
    ``journal`` the search checkpoints its decision frontier durably;
    ``resume=True`` continues a killed exploration from that journal;
    ``progress`` prints a live heartbeat spanning every search wave.
    ``model`` is the model-centric alias of ``policy``.
    """
    policy_spec = _coerce_policy(policy, core=core, model=model)
    return explore_program(
        program,
        policy_spec,
        max_delays=max_delays,
        config=_coerce_machine(machine) if machine is not None else None,
        max_runs=max_runs,
        max_cycles=max_cycles,
        relaxed_request_channels=relaxed_request_channels,
        inval_virtual_channel=inval_virtual_channel,
        executor=executor,
        jobs=jobs,
        trace=trace,
        sanitize=sanitize,
        prune=prune,
        journal=journal,
        resume=resume,
        progress=progress,
    )


def verify_sc(
    program: Program,
    outcomes: Optional[Iterable[Observable]] = None,
    *,
    model: Optional[str] = None,
    max_states: int = 2_000_000,
    prune: bool = True,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> Union[Set[Observable], List[SCViolation]]:
    """Definition 2's appears-SC check (or any model's allowed set).

    With ``outcomes``: classify each observed outcome against the
    reference set and return one :class:`SCViolation` per outcome the
    reference cannot produce (empty list = all outcomes conform).
    Without ``outcomes``: return the reference set itself.

    The reference defaults to the exhaustive SC interleaving set; with
    ``model=`` (an axiomatic model name, see
    :func:`~repro.axiomatic.model.axiomatic_model_names`) it is instead
    the set of outcomes that model's axioms allow — ``model="SC"``
    provably coincides with the default for straight-line programs,
    weaker models accept more.
    """
    if model is not None:
        reference: Set[Observable] = set(
            allowed_outcomes(
                program, model_by_name(model), max_candidates=max_candidates
            )
        )
    else:
        reference = enumerate_results(
            program, max_states=max_states, prune=prune
        )
    if outcomes is None:
        return reference
    return [
        SCViolation(program=program, observed=outcome)
        for outcome in outcomes
        if outcome not in reference
    ]


def check_drf0(
    program: Program,
    *,
    model: SynchronizationModel = DRF0,
    max_executions: Optional[int] = None,
    jobs: int = 1,
    prune: bool = True,
) -> DRFReport:
    """Definition 3: does ``program`` obey the synchronization model?"""
    return check_program(
        program,
        model=model,
        max_executions=max_executions,
        jobs=jobs,
        prune=prune,
    )


def campaign(
    specs: Iterable[RunSpec],
    *,
    model: Optional[PolicyLike] = None,
    executor: Optional[Executor] = None,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    metrics: Optional[Callable[[CampaignMetrics], None]] = None,
    label: str = "campaign",
    run_timeout: Optional[float] = None,
    retries: int = 2,
    triage: Optional[TriageConfig] = None,
    journal: Union[CampaignJournal, str, Path, None] = None,
    progress: Union[bool, "ProgressReporter", None] = None,
) -> CampaignResult:
    """Execute a batch of specs; results come back in spec order.

    ``cache`` may be a :class:`ResultCache` or a directory path;
    ``metrics`` is an optional callback receiving the campaign's
    :class:`CampaignMetrics` (registered only for the duration of this
    call); ``journal`` is a :class:`CampaignJournal` or a path to one —
    completed runs append durably as they finish and already-journaled
    specs replay without execution, so re-running a killed campaign
    against its journal resumes it; ``progress`` (``True`` or a
    :class:`~repro.obs.ProgressReporter`) prints a live heartbeat.
    ``model`` re-targets the whole batch: every spec's policy is
    replaced by the given model (each spec keeps its own core), so one
    spec list can be replayed under a different memory model verbatim.
    Everything else matches :func:`repro.campaign.run_campaign`, the
    engine underneath.
    """
    if model is not None:
        specs = [
            replace(
                spec,
                policy=_coerce_policy(model=model, core=spec.policy.core),
            )
            for spec in specs
        ]
    if isinstance(cache, str):
        cache = ResultCache(cache)
    if metrics is not None:
        register_metrics_hook(metrics)
    try:
        return run_campaign(
            specs,
            executor=executor,
            jobs=jobs,
            cache=cache,
            label=label,
            run_timeout=run_timeout,
            retries=retries,
            triage=triage,
            journal=journal,
            progress=progress,
        )
    finally:
        if metrics is not None:
            unregister_metrics_hook(metrics)


def models() -> List[dict]:
    """Introspection over every registered memory model.

    One row per name-constructible policy, sorted by name::

        {"name": "TSO",
         "summary": "...",
         "cores": ("simple", "pipelined"),
         "requires_cache": False,
         "axiomatic_model": "TSO",
         "axiomatic_summary": "po minus write-to-read: ..."}

    ``axiomatic_model`` names the declarative counterpart the
    cross-checker holds the policy against
    (:func:`~repro.axiomatic.model.model_for_policy`).  The rows derive
    entirely from the policy registry — registering a new policy class
    makes it appear here, in ``policy_by_name``, and in the CLI
    ``--policy`` choices at once.
    """
    rows: List[dict] = []
    for name, cls in sorted(registered_policies().items()):
        axiomatic = model_for_policy(name)
        rows.append(
            {
                "name": name,
                "summary": cls.summary,
                "cores": tuple(cls.supported_cores),
                "requires_cache": cls.requires_cache,
                "axiomatic_model": axiomatic.name,
                "axiomatic_summary": axiomatic.summary,
            }
        )
    return rows


def crosscheck(
    *,
    tests: Optional[Iterable[Union[str, LitmusTest]]] = None,
    policies: Optional[Sequence[PolicyLike]] = None,
    configs: Optional[Sequence[MachineLike]] = None,
    runs_per_test: int = 12,
    base_seed: int = 2026,
    max_cycles: int = 1_000_000,
    executor: Optional[Executor] = None,
    jobs: int = 1,
    cache: Union[ResultCache, str, None] = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    progress: Union[bool, "ProgressReporter", None] = None,
) -> CrosscheckReport:
    """Assert operational/axiomatic agreement over the litmus catalog.

    The facade form of
    :func:`~repro.axiomatic.crosscheck.crosscheck_models` with friendly
    coercions: ``tests`` accepts catalog names or
    :class:`~repro.litmus.test.LitmusTest` objects (default: the whole
    standard catalog), ``policies`` accepts names or factories
    (default: every registered policy), ``configs`` accepts machine
    names or configs.  See the module docstring of
    :mod:`repro.axiomatic.crosscheck` for the per-cell agreement
    contract.
    """
    coerced_tests = None
    if tests is not None:
        by_name = catalog_by_name()
        coerced_tests = [
            by_name[t] if isinstance(t, str) else t for t in tests
        ]
    coerced_configs = None
    if configs is not None:
        coerced_configs = [_coerce_machine(c) for c in configs]
    if isinstance(cache, str):
        cache = ResultCache(cache)
    kwargs = {}
    if coerced_configs is not None:
        kwargs["configs"] = coerced_configs
    return crosscheck_models(
        tests=coerced_tests,
        policies=policies,
        runs_per_test=runs_per_test,
        base_seed=base_seed,
        max_cycles=max_cycles,
        executor=executor,
        jobs=jobs,
        cache=cache,
        max_candidates=max_candidates,
        progress=progress,
        **kwargs,
    )


__all__ = [
    # The facade.
    "run",
    "explore",
    "verify_sc",
    "check_drf0",
    "campaign",
    "models",
    "crosscheck",
    # Core vocabulary.
    "Observable",
    "Program",
    "Thread",
    "ThreadBuilder",
    # Campaign layer.
    "CampaignJournal",
    "CampaignMetrics",
    "CampaignResult",
    "Executor",
    "JournalError",
    "ParallelExecutor",
    "PolicySpec",
    "PreemptionToken",
    "ResultCache",
    "RunFailure",
    "RunResult",
    "RunSpec",
    "SerialExecutor",
    "current_token",
    "default_executor",
    "emit_metrics",
    "graceful_preemption",
    "open_journal",
    "preempted_result",
    "program_fingerprint",
    "register_metrics_hook",
    "run_campaign",
    "unregister_metrics_hook",
    # Machines and policies.
    "BUS_CACHE",
    "BUS_CACHE_SNOOP",
    "BUS_NOCACHE",
    "FIGURE1_CONFIGS",
    "MachineConfig",
    "NET_CACHE",
    "NET_CACHE_VC",
    "NET_NOCACHE",
    "System",
    "config_by_name",
    "Def1Policy",
    "Def2Policy",
    "Def2RPolicy",
    "PSOPolicy",
    "RelaxedPolicy",
    "SCPolicy",
    "TSOPolicy",
    "core_names",
    "policy_by_name",
    "policy_names",
    "registered_policies",
    # Axiomatic models and the cross-checker.
    "AxiomaticModel",
    "CrosscheckCell",
    "CrosscheckReport",
    "DEFAULT_MAX_CANDIDATES",
    "allowed_outcomes",
    "axiomatic_model_names",
    "crosscheck_models",
    "is_straightline",
    "model_by_name",
    "model_for_policy",
    # Litmus and conformance.
    "LitmusResult",
    "LitmusRunner",
    "LitmusTest",
    "catalog_by_name",
    "fig1_dekker",
    "fig1_dekker_all_sync",
    "forwarding_catalog",
    "parse_litmus",
    "standard_catalog",
    "ConformancePlan",
    "ConformanceReport",
    "judge_conformance",
    "plan_conformance",
    "run_conformance",
    "VERDICT_BROKEN",
    "VERDICT_NA",
    "VERDICT_SC",
    "VERDICT_WEAK",
    # Checkers and search.
    "DRF0",
    "DRF0_R",
    "DRFReport",
    "ExplorationReport",
    "SCVerifier",
    "SCViolation",
    "SearchStats",
    "SynchronizationModel",
    "check_program",
    "enumerate_executions",
    "enumerate_results",
    "explore_program",
    "explore_to_fixpoint",
    "obeys_drf0",
    "verify_weak_ordering",
    # Delay sets.
    "delay_pairs",
    "describe_delay_set",
    "minimal_delay_pairs",
    "static_footprints",
    # Faults, tracing, observability.
    "FaultPlan",
    "parse_fault_plan",
    "FORMATS",
    "TraceEvent",
    "TraceSpec",
    "crosscheck_run",
    "format_timeline",
    "write_trace",
    # Fuzzing and triage.
    "ReproBundle",
    "TriageConfig",
    "random_drf0_program",
    "random_mixed_sync_program",
    "random_racy_program",
    "random_spin_program",
    # Analyses and logging.
    "figure3_sweep",
    "format_table",
    "configure_cli_logging",
    "get_logger",
    # Observability.
    "METRICS",
    "MetricsRegistry",
    "Snapshot",
    "ProgressReporter",
    "FlightRecorder",
    "enable_metrics",
    "disable_metrics",
    "load_snapshot",
    "serve_metrics",
    "to_prometheus",
    "write_prometheus",
    # Service tier (resolved lazily; see __getattr__ below).
    "AdmissionQueue",
    "CircuitBreaker",
    "JobError",
    "Rejected",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Unavailable",
    "VerificationService",
    "build_job",
    "read_endpoint",
    "serve_blocking",
]

#: Facade names owned by :mod:`repro.service`.  The service tier
#: imports ``repro.api`` for its job builders, so the facade must not
#: import it eagerly — these resolve on first attribute access
#: (PEP 562) instead.
_SERVICE_EXPORTS = frozenset({
    "AdmissionQueue",
    "CircuitBreaker",
    "JobError",
    "Rejected",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Unavailable",
    "VerificationService",
    "build_job",
    "read_endpoint",
    "serve_blocking",
})


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        import repro.service as _service

        value = getattr(_service, name)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(set(globals()) | _SERVICE_EXPORTS)
