"""FIG3 — Figure 3: release-side stalls, DEF1 vs DEF2.

Regenerates the figure's analysis as a latency sweep: under DEF1 the
releaser (P0) stalls at the Unset until its data writes globally
perform, and stalls its post-release accesses until the Unset globally
performs — costs that grow with memory latency.  Under DEF2 the Unset
only needs to commit, so P0's finish time stays nearly flat.  The
acquirer (P1) waits under both ("P0 but not P1 gains an advantage").
"""

from repro.analysis.figure3 import analyze_release_stall, figure3_sweep
from repro.analysis.report import format_table
from repro.memsys.config import NET_CACHE
from repro.models.policies import Def1Policy, Def2Policy

LATENCIES = [4, 8, 16, 32, 64]


def test_fig3_latency_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: figure3_sweep(latencies=LATENCIES, seeds=[1, 2, 3, 4]),
        rounds=1,
        iterations=1,
    )

    print("\n[FIG3] release-overlap scenario, mean over 4 seeds")
    print(
        format_table(
            [
                "latency",
                "DEF1 rel.stall",
                "DEF2 rel.stall",
                "DEF1 P0 done",
                "DEF2 P0 done",
                "DEF1 P1 done",
                "DEF2 P1 done",
            ],
            [
                [
                    row.network_latency,
                    row.def1_release_stall,
                    row.def2_release_stall,
                    row.def1_releaser_finish,
                    row.def2_releaser_finish,
                    row.def1_acquirer_finish,
                    row.def2_acquirer_finish,
                ]
                for row in rows
            ],
        )
    )

    # The figure's shape: DEF1's release cost grows with latency and the
    # releaser finishes later than under DEF2 at high latency.
    stalls = [row.def1_release_stall for row in rows]
    assert stalls == sorted(stalls)
    high = rows[-1]
    assert high.def2_releaser_finish < high.def1_releaser_finish
    # The acquirer stalls under both.
    assert high.def2_acquirer_finish > high.def2_releaser_finish


def test_fig3_single_point_def1(benchmark):
    report = benchmark(
        lambda: analyze_release_stall(Def1Policy(), NET_CACHE, seed=7)
    )
    print(f"\n[FIG3] {report.describe()}")
    assert report.completed
    assert report.release_stall > 0  # DEF1 stalls P0 at the Unset


def test_fig3_single_point_def2(benchmark):
    report = benchmark(
        lambda: analyze_release_stall(Def2Policy(), NET_CACHE, seed=7)
    )
    print(f"\n[FIG3] {report.describe()}")
    assert report.completed
