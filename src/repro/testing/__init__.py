"""Public testing toolkit: property strategies and the chaos harness.

``repro.testing.properties`` carries the hypothesis strategies and
assertion helpers downstream users build property suites on (re-exported
here, so ``from repro.testing import racy_programs`` keeps working).

``repro.testing.chaos`` is the crash-safety harness: it runs a journaled
campaign in a supervised subprocess, kills it at seeded points
(SIGKILL/SIGTERM), resumes it repeatedly, and asserts exactly-once
result semantics against an in-process clean baseline.
"""

from repro.testing.properties import (
    assert_appears_sc,
    assert_trace_invariants,
    assert_weakly_ordered,
    drf0_programs,
    racy_programs,
    straightline_programs,
)

__all__ = [
    "assert_appears_sc",
    "assert_trace_invariants",
    "assert_weakly_ordered",
    "drf0_programs",
    "racy_programs",
    "straightline_programs",
]
