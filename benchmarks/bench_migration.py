"""MIG — process migration under the drain rule (Section 5.1 footnote).

"Re-scheduling of a process on another processor is possible if it can
be ensured that before a context switch, all previous reads of the
process have returned their values and all previous writes have been
globally performed."  The benchmark migrates a working thread mid-run
(drain enforced, counter at zero, no reserve bits left behind) and
checks the run still appears sequentially consistent, reporting the
drain cost.
"""

from repro.core.program import Program, Thread, ThreadBuilder
from repro.memsys.config import NET_CACHE
from repro.memsys.migration import MigrationController
from repro.memsys.system import System
from repro.models.policies import Def2Policy
from repro.sc.verifier import SCVerifier


def migratable_program() -> Program:
    t0 = (
        ThreadBuilder("P0")
        .store("a", 1)
        .store("b", 2)
        .sync_store("flag", 1)
        .store("c", 3)
        .load("r1", "a")
        .build()
    )
    t1 = (
        ThreadBuilder("P1")
        .label("spin")
        .sync_load("f", "flag")
        .beq("f", 0, "spin")
        .load("r2", "a")
        .load("r3", "b")
        .build()
    )
    return Program([t0, t1, Thread("P2", (), {})], name="mig")


def test_mig_drained_migration_keeps_contract(benchmark, verifier):
    program = migratable_program()
    sc_set = verifier.sc_result_set(program)

    def campaign():
        drains = []
        for seed in range(10):
            for at_cycle in (5, 25, 60):
                system = System(program, Def2Policy(), NET_CACHE, seed=seed)
                controller = MigrationController(system)
                controller.schedule(0, 2, at_cycle=at_cycle)
                run = system.run()
                assert run.completed
                assert run.observable in sc_set, (seed, at_cycle)
                drains.extend(r.drain_cycles for r in controller.records)
        return drains

    drains = benchmark.pedantic(campaign, rounds=1, iterations=1)
    mean_drain = sum(drains) / len(drains) if drains else 0.0
    print(
        f"\n[MIG] {len(drains)} drained migrations, all SC; "
        f"mean drain {mean_drain:.1f} cycles"
    )
    assert drains  # at least some migrations actually happened
