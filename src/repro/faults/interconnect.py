"""Fault injection at the interconnect boundary.

:class:`FaultyInterconnect` wraps any :class:`Interconnect` and perturbs
*when* messages enter it: each ``send`` may be held back by extra jitter
or a bounded reorder delay, and (where legal) released twice.  The
wrapped interconnect still owns real transport — latency, arbitration,
FIFO floors — so injection composes with the bus and the network rather
than replacing them.

Two invariants make injected timings *legal* in the paper's sense:

* **Per-channel FIFO is never broken.**  Hold-backs are floored per
  virtual channel (same :func:`channel_key` the network uses), so two
  messages on one channel always enter the inner interconnect in their
  original order; only traffic on *other* endpoint pairs overtakes.
  This is exactly the envelope the Section 5 protocols are designed
  for: a general network with arbitrary cross-channel latencies.
* **Duplicates only where receivers deduplicate.**  The cache-less
  request/response protocol carries per-request tokens, and the memory
  module and write-buffer ports drop replays (at-least-once tolerance).
  The directory protocol assumes exactly-once virtual channels — as the
  paper does — so duplicate injection is suppressed on cached machines
  (counted in ``faults.duplicates_suppressed``).

The fault stream draws from a :class:`TimingRng` derived from the run
seed and the plan's salt, so a fault-injected run remains a pure
function of its :class:`~repro.campaign.spec.RunSpec`.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.faults.plan import FaultPlan
from repro.obs import METRICS
from repro.interconnect.base import Handler, Interconnect, channel_key
from repro.sim.engine import Simulator
from repro.sim.rng import TimingRng
from repro.sim.stats import Stats


class FaultyInterconnect(Interconnect):
    """Perturbs message hand-off into a wrapped interconnect."""

    def __init__(
        self,
        sim: Simulator,
        stats: Stats,
        inner: Interconnect,
        plan: FaultPlan,
        rng: TimingRng,
        allow_duplicates: bool = False,
        inval_virtual_channel: bool = False,
        name: str = "faulty",
    ) -> None:
        super().__init__(sim, stats, name)
        self.inner = inner
        self.plan = plan
        self.rng = rng
        self.allow_duplicates = allow_duplicates
        self.inval_virtual_channel = inval_virtual_channel
        #: Latest release time handed to the inner interconnect per
        #: channel — the FIFO floor that keeps injection legal.
        self._release_floor: Dict[Tuple, int] = {}

    # Handlers live on the inner interconnect, which performs delivery.
    def register(self, endpoint: str, handler: Handler) -> None:
        self.inner.register(endpoint, handler)

    def _trace_fault(self, name: str, src: str, dst: str, payload: Any,
                     delay: int = 0) -> None:
        tracer = self.sim.tracer
        if tracer.wants("fault"):
            tracer.emit(
                "fault",
                name,
                track=self.name,
                args=(
                    ("payload", type(payload).__name__),
                    ("src", src),
                    ("dst", dst),
                    ("delay", delay),
                ),
            )

    def send(self, src: str, dst: str, payload: Any) -> None:
        plan = self.plan
        extra = 0
        if plan.delay_jitter:
            extra += self.rng.randint(0, plan.delay_jitter)
        if plan.reorder_pct and self.rng.randint(1, 100) <= plan.reorder_pct:
            reorder = self.rng.randint(1, plan.reorder_delay)
            extra += reorder
            self._bump_fault("reorders")
            self._trace_fault("reorder", src, dst, payload, delay=reorder)
        if extra:
            self._bump_fault("delayed")
            self._trace_fault("delayed", src, dst, payload, delay=extra)

        channel = channel_key(
            src, dst, payload,
            inval_virtual_channel=self.inval_virtual_channel,
        )
        release_at = max(
            self.sim.now + extra, self._release_floor.get(channel, 0)
        )
        self._release_floor[channel] = release_at
        self._schedule_handoff(release_at, src, dst, payload)

        if plan.duplicate_pct and self.rng.randint(1, 100) <= plan.duplicate_pct:
            if not self.allow_duplicates:
                self._bump_fault("duplicates_suppressed")
                self._trace_fault("duplicate_suppressed", src, dst, payload)
                return
            # The replay trails its original on the same channel.
            dup_at = release_at + 1 + self.rng.randint(0, plan.reorder_delay)
            self._release_floor[channel] = dup_at
            self._schedule_handoff(dup_at, src, dst, payload)
            self._bump_fault("duplicates")
            self._trace_fault(
                "duplicate", src, dst, payload, delay=dup_at - release_at
            )

    def _bump_fault(self, kind: str) -> None:
        self.stats.bump(f"faults.{kind}")
        if METRICS.enabled:
            METRICS.inc(
                "repro_fault_activations_total",
                help="Fault-injection activations by kind",
                kind=kind,
            )

    def _schedule_handoff(
        self, release_at: int, src: str, dst: str, payload: Any
    ) -> None:
        self.sim.schedule(
            release_at - self.sim.now,
            lambda: self.inner.send(src, dst, payload),
        )

    def __getattr__(self, attr: str):
        # Transparent for introspection (``queued`` etc.); only called
        # for attributes not found on the wrapper itself.
        if attr == "inner":  # pre-__init__ access must not recurse
            raise AttributeError(attr)
        return getattr(self.inner, attr)
