"""Unit tests for the general interconnection network."""

from repro.interconnect.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import TimingRng
from repro.sim.stats import Stats


def make_network(seed=1, base=6, jitter=8, fifo=False):
    sim = Simulator()
    net = Network(
        sim,
        Stats(),
        TimingRng(seed),
        base_latency=base,
        jitter=jitter,
        point_to_point_fifo=fifo,
    )
    return sim, net


class TestNetwork:
    def test_latency_within_bounds(self):
        sim, net = make_network(base=5, jitter=10)
        times = []
        net.register("b", lambda payload, src: times.append(sim.now))
        for _ in range(50):
            net.send("a", "b", None)
        sim.run()
        assert all(5 <= t <= 15 for t in times)

    def test_deterministic_given_seed(self):
        def run(seed):
            sim, net = make_network(seed=seed)
            times = []
            net.register("b", lambda payload, src: times.append(sim.now))
            for _ in range(10):
                net.send("a", "b", None)
            sim.run()
            return times

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_same_pair_reordering_possible(self):
        """Without FIFO, some seed delivers messages out of send order."""
        for seed in range(50):
            sim, net = make_network(seed=seed, base=1, jitter=20)
            order = []
            net.register("b", lambda payload, src: order.append(payload))
            net.send("a", "b", 1)
            net.send("a", "b", 2)
            sim.run()
            if order == [2, 1]:
                return
        raise AssertionError("no seed reordered same-pair messages")

    def test_point_to_point_fifo_never_reorders(self):
        for seed in range(50):
            sim, net = make_network(seed=seed, base=1, jitter=20, fifo=True)
            order = []
            net.register("b", lambda payload, src: order.append(payload))
            for i in range(5):
                net.send("a", "b", i)
            sim.run()
            assert order == sorted(order), f"seed {seed} reordered under FIFO"

    def test_fifo_still_allows_cross_pair_races(self):
        """FIFO is per channel pair; different pairs stay independent."""
        reordered = False
        for seed in range(50):
            sim, net = make_network(seed=seed, base=1, jitter=20, fifo=True)
            order = []
            net.register("b", lambda payload, src: order.append(payload))
            net.register("c", lambda payload, src: order.append(payload))
            net.send("a", "b", "to_b")
            net.send("a", "c", "to_c")
            sim.run()
            if order == ["to_c", "to_b"]:
                reordered = True
                break
        assert reordered

    def test_concurrent_delivery_no_serialization(self):
        """Unlike the bus, n messages do not take n * latency."""
        sim, net = make_network(base=5, jitter=0)
        times = []
        net.register("b", lambda payload, src: times.append(sim.now))
        for _ in range(10):
            net.send("a", "b", None)
        sim.run()
        assert times == [5] * 10

    def test_counters(self):
        sim, net = make_network()
        net.register("b", lambda payload, src: None)
        net.send("a", "b", None)
        sim.run()
        assert net.stats.count("network.sent") == 1
