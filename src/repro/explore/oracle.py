"""Schedule-controlled message delivery for systematic exploration.

Seed sampling (the litmus runner) covers timing behaviours statistically;
:class:`ScheduledInterconnect` makes them *enumerable*: every message
enters a pending pool and an oracle decides, at each delivery slot, which
pending message goes next.  With all other events deterministic, a run
is a pure function of the oracle's decision string — so the explorer in
:mod:`repro.explore.explorer` can walk the schedule tree by re-execution.

The oracle's default decision is 0 (FIFO).  A decision ``j`` at a choice
point delivers the ``j``-th oldest pending message, "delaying" the ``j``
messages ahead of it — the unit the delay bound counts.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.interconnect.base import Interconnect, channel_key
from repro.sim.engine import Simulator
from repro.sim.stats import Stats


class ReplayOracle:
    """Replays a fixed decision prefix, then defaults to FIFO.

    Records the pending-pool size at every choice point so the explorer
    knows where alternative decisions exist, and (when the interconnect
    supplies them) the target location of each eligible message so the
    explorer's conflict-aware pruning can tell which alternative
    decisions merely permute independent deliveries.
    """

    def __init__(self, decisions: Sequence[int] = ()) -> None:
        self.decisions: Tuple[int, ...] = tuple(decisions)
        #: Pending-pool size observed at each choice point, in order.
        self.log: List[int] = []
        #: Per choice point: the eligible messages' target locations, in
        #: pool order (``None`` for a message without a known location).
        self.detail_log: List[Tuple[Optional[str], ...]] = []

    def choose(
        self, pending: int, details: Optional[Sequence[Optional[str]]] = None
    ) -> int:
        """Pick the index of the message to deliver (0 = oldest)."""
        assert pending > 0
        point = len(self.log)
        self.log.append(pending)
        self.detail_log.append(tuple(details) if details is not None else ())
        if point < len(self.decisions):
            return min(self.decisions[point], pending - 1)
        return 0

    @property
    def choice_points(self) -> int:
        return len(self.log)


class ScheduledInterconnect(Interconnect):
    """Delivers exactly one pending message per delivery slot.

    Every ``send`` schedules one delivery slot one cycle later; the slot
    asks the oracle which pending message to release.  Latency is
    therefore uniform and all reordering comes from the oracle — the
    interconnect is as weak as the general network of Figure 1, but
    deterministically steerable.

    Per-channel FIFO is preserved: only the oldest pending message of
    each ``(src, dst)`` pair is eligible at a slot, matching the
    virtual-channel assumption the coherence protocol relies on while
    still exploring every cross-channel reordering.
    """

    def __init__(
        self,
        sim: Simulator,
        stats: Stats,
        oracle: ReplayOracle,
        name: str = "scheduled",
        relaxed_request_channels: bool = False,
        inval_virtual_channel: bool = False,
    ) -> None:
        """``relaxed_request_channels`` frees cache->directory traffic
        from per-channel FIFO (responses keep it — the grant/recall race
        needs it), modelling the paper's unrestricted interconnection
        network where a processor's requests may arrive out of order.
        ``inval_virtual_channel`` puts invalidations on their own channel
        so they race grants, the setting where condition 5's reserve bit
        carries the correctness burden.
        """
        super().__init__(sim, stats, name)
        self.oracle = oracle
        self.relaxed_request_channels = relaxed_request_channels
        self.inval_virtual_channel = inval_virtual_channel
        self._pending: List[Tuple[str, str, Any]] = []

    def send(self, src: str, dst: str, payload: Any) -> None:
        self.stats.bump("scheduled.sent")
        self._pending.append((src, dst, payload))
        self.sim.schedule(1, self._deliver_slot)

    def _eligible_indices(self) -> List[int]:
        """Index of the oldest pending message per (src, dst) channel
        (every pending message of relaxed request channels is eligible)."""
        seen = set()
        eligible = []
        for idx, (src, dst, payload) in enumerate(self._pending):
            if self.relaxed_request_channels and dst == "dir":
                eligible.append(idx)
                continue
            channel = channel_key(
                src, dst, payload,
                inval_virtual_channel=self.inval_virtual_channel,
            )
            if channel not in seen:
                seen.add(channel)
                eligible.append(idx)
        return eligible

    def _deliver_slot(self) -> None:
        eligible = self._eligible_indices()
        details = [
            getattr(self._pending[idx][2], "location", None) for idx in eligible
        ]
        pick = self.oracle.choose(len(eligible), details)
        src, dst, payload = self._pending.pop(eligible[pick])
        self._deliver(src, dst, payload)
