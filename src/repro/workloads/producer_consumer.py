"""Producer/consumer pipelines: release-heavy workloads.

Each stage writes a batch of data items, releases a flag, and the next
stage spin-acquires the flag before consuming — the communication shape
for which the paper's Figure 3 predicts the biggest DEF2 advantage: the
producer's release only needs to *commit*, so it overlaps its pending
data writes with subsequent work.
"""

from __future__ import annotations

from repro.core.program import Program, ThreadBuilder


def producer_consumer_program(
    items: int = 4,
    rounds: int = 1,
    post_release_work: int = 10,
    stages: int = 2,
) -> Program:
    """A ``stages``-deep pipeline moving ``items`` values per round.

    Stage ``k`` waits for flag ``f{k}`` to reach the round number, reads
    the previous stage's items, writes its own (value + 1), releases
    ``f{k+1}``, then does ``post_release_work`` local work.  Stage 0
    produces from immediates.  The last stage accumulates a checksum in
    register ``sum`` whose SC-consistent value is fully determined.
    """
    if stages < 2:
        raise ValueError("need at least a producer and a consumer")
    threads = []
    for stage in range(stages):
        builder = ThreadBuilder(f"P{stage}")
        for round_no in range(1, rounds + 1):
            if stage > 0:
                # Wait for this round's items from the previous stage.
                spin = f"spin_f_{round_no}"
                builder.label(spin)
                builder.sync_load("f", f"f{stage}")
                builder.blt("f", round_no, spin)
                for item in range(items):
                    builder.load("v", f"d{stage - 1}_{item}")
                    builder.add("v", "v", 1)
                    if stage == stages - 1:
                        builder.add("sum", "sum", "v")
                    else:
                        builder.mov(f"t{item}", "v")
                # Acknowledge consumption so the producer may overwrite.
                builder.sync_store(f"a{stage}", round_no)
            if stage < stages - 1:
                if round_no > 1:
                    # The next stage must have consumed the previous
                    # round before its slots are overwritten.
                    spin = f"spin_a_{round_no}"
                    builder.label(spin)
                    builder.sync_load("ack", f"a{stage + 1}")
                    builder.blt("ack", round_no - 1, spin)
                for item in range(items):
                    if stage == 0:
                        builder.store(f"d0_{item}", round_no * 100 + item)
                    else:
                        builder.store(f"d{stage}_{item}", f"t{item}")
                builder.sync_store(f"f{stage + 1}", round_no)
            if post_release_work:
                builder.nop(post_release_work)
        threads.append(builder.build())
    return Program(
        threads,
        name=f"producer_consumer_s{stages}_i{items}_r{rounds}",
    )


def expected_checksum(items: int, rounds: int, stages: int = 2) -> int:
    """The deterministic final ``sum`` of the last stage."""
    total = 0
    for round_no in range(1, rounds + 1):
        for item in range(items):
            total += round_no * 100 + item + (stages - 1)
    return total
