"""Unit tests for the appears-SC verifier."""

from repro.core.execution import Observable
from repro.core.program import Program, ThreadBuilder
from repro.sc.verifier import SCVerifier


def dekker() -> Program:
    t0 = ThreadBuilder("P0").store("x", 1).load("r1", "y").build()
    t1 = ThreadBuilder("P1").store("y", 1).load("r2", "x").build()
    return Program([t0, t1], name="dekker")


def obs(r1, r2):
    return Observable.create(
        [{"r1": r1}, {"r2": r2}], {"x": 1, "y": 1}
    )


class TestSCVerifier:
    def test_sc_outcome_accepted(self):
        verifier = SCVerifier()
        assert verifier.appears_sc(dekker(), obs(1, 1))

    def test_non_sc_outcome_rejected(self):
        verifier = SCVerifier()
        assert not verifier.appears_sc(dekker(), obs(0, 0))

    def test_result_set_cached_per_program(self):
        verifier = SCVerifier()
        program = dekker()
        first = verifier.sc_result_set(program)
        second = verifier.sc_result_set(program)
        assert first is second

    def test_check_outcomes_reports_only_violations(self):
        verifier = SCVerifier()
        program = dekker()
        violations = verifier.check_outcomes(program, [obs(1, 1), obs(0, 0)])
        assert len(violations) == 1
        assert violations[0].observed == obs(0, 0)
        assert "not producible" in violations[0].describe()

    def test_memory_part_of_observable_matters(self):
        verifier = SCVerifier()
        program = Program([ThreadBuilder("P0").store("x", 5).build()])
        good = Observable.create([{}], {"x": 5})
        bad = Observable.create([{}], {"x": 6})
        assert verifier.appears_sc(program, good)
        assert not verifier.appears_sc(program, bad)
