"""On-disk result cache keyed by the content hash of a spec.

Because a :class:`~repro.campaign.spec.RunSpec` determines its
:class:`~repro.campaign.spec.RunResult` exactly, results can be memoised
across processes and sessions: the cache maps ``spec.digest()`` — a
sha256 over program content, policy spec, machine configuration, seed,
cycle bound, and schedule — to a pickled result.  Corrupt or unreadable
entries are treated as misses, so a cache directory can never poison a
campaign, only fail to accelerate it.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.campaign.spec import RunResult, RunSpec


class ResultCache:
    """A directory of pickled results, one file per spec digest."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.digest()}.pkl"

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        path = self._path(spec)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(result, RunResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> None:
        # Write-then-rename so concurrent campaigns never observe a
        # half-written entry.
        path = self._path(spec)
        fd, tmp = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))
