"""Plain-text rendering of experiment outputs (benchmark tables)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    return "\n".join([line, rule, *body])


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def ratio(a: float, b: float) -> str:
    """``a/b`` as a factor string, guarding zero denominators."""
    if b == 0:
        return "inf" if a > 0 else "1.00x"
    return f"{a / b:.2f}x"
