"""Unit tests for Section 4's augmented executions."""

import pytest

from repro.core.execution import Execution
from repro.core.operation import MemoryOp, OpKind
from repro.hb.augment import (
    FINAL_SYNC_LOCATION,
    INIT_SYNC_LOCATION,
    AugmentationError,
    augment_execution,
    strip_augmentation,
)
from repro.hb.relations import build_happens_before


def op(kind, loc, proc, read=None, written=None):
    return MemoryOp(
        proc=proc, kind=kind, location=loc, value_read=read, value_written=written
    )


def two_proc_trace():
    return Execution(
        ops=[
            op(OpKind.WRITE, "x", 0, written=1),
            op(OpKind.READ, "x", 1, read=1),
        ]
    )


class TestAugmentation:
    def test_init_writes_cover_all_locations(self):
        augmented = augment_execution(two_proc_trace(), locations=["x", "y"])
        init_writes = [
            o
            for o in augmented.ops
            if o.proc == MemoryOp.INIT_PROC and o.kind is OpKind.WRITE
        ]
        assert {o.location for o in init_writes} == {"x", "y"}

    def test_init_write_values_from_initial_memory(self):
        augmented = augment_execution(
            two_proc_trace(), initial_memory={"x": 7}
        )
        init_write = next(
            o
            for o in augmented.ops
            if o.proc == MemoryOp.INIT_PROC and o.location == "x"
        )
        assert init_write.value_written == 7

    def test_every_read_has_hb_prior_init_write(self):
        augmented = augment_execution(two_proc_trace())
        hb = build_happens_before(augmented)
        for o in augmented.ops:
            if o.reads_memory and not o.is_hypothetical:
                hb.last_write_before(o)  # must not raise LookupError

    def test_final_reads_reflect_final_memory(self):
        augmented = augment_execution(two_proc_trace())
        final_read = next(
            o
            for o in augmented.ops
            if o.proc == MemoryOp.FINAL_PROC and o.kind is OpKind.READ
        )
        assert final_read.location == "x"
        assert final_read.value_read == 1

    def test_final_reads_hb_after_all_real_writes(self):
        trace = two_proc_trace()
        augmented = augment_execution(trace)
        hb = build_happens_before(augmented)
        final_reads = [
            o
            for o in augmented.ops
            if o.proc == MemoryOp.FINAL_PROC and o.kind is OpKind.READ
        ]
        real_write = trace.ops[0]
        for read in final_reads:
            assert hb.ordered(real_write, read)

    def test_boundary_syncs_use_special_locations(self):
        augmented = augment_execution(two_proc_trace())
        sync_locs = {o.location for o in augmented.ops if o.is_sync}
        assert all(
            loc.startswith((INIT_SYNC_LOCATION, FINAL_SYNC_LOCATION))
            for loc in sync_locs
        )
        # One final-release location per real processor.
        final_locs = {l for l in sync_locs if l.startswith(FINAL_SYNC_LOCATION)}
        assert len(final_locs) == 2

    def test_reserved_location_rejected(self):
        trace = Execution(ops=[op(OpKind.WRITE, INIT_SYNC_LOCATION, 0, written=1)])
        with pytest.raises(AugmentationError):
            augment_execution(trace)

    def test_strip_is_inverse(self):
        trace = two_proc_trace()
        stripped = strip_augmentation(augment_execution(trace))
        assert stripped.ops == trace.ops

    def test_real_ops_keep_relative_order(self):
        trace = two_proc_trace()
        augmented = augment_execution(trace)
        real = [
            o
            for o in augmented.ops
            if not o.is_hypothetical
            and not o.location.startswith(
                (INIT_SYNC_LOCATION, FINAL_SYNC_LOCATION)
            )
        ]
        assert real == trace.ops

    def test_completed_flag_carried(self):
        trace = two_proc_trace()
        trace.completed = False
        assert augment_execution(trace).completed is False
