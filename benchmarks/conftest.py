"""Shared fixtures for the benchmark/experiment suite.

Every benchmark regenerates one of the paper's artifacts (Figure 1, 2,
3, the Appendix theorems, or the quantitative study Section 7 calls
for), asserts its qualitative *shape* (who wins, what is forbidden), and
prints the rows an experiment log would record.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.litmus.runner import LitmusRunner
from repro.sc.verifier import SCVerifier


@pytest.fixture(scope="session")
def verifier():
    return SCVerifier()


@pytest.fixture(scope="session")
def runner(verifier):
    return LitmusRunner(verifier)
