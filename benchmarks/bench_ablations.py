"""ABL — ablations of the Section 5.3 design choices.

The paper leaves several implementation knobs open; each ablation runs
the same workload with one knob flipped:

* **NACK vs queue-at-owner** for synchronization requests that hit a
  reserved line (footnote 2 offers both);
* **bounded outstanding misses while reserved** — the paper's suggestion
  for keeping the counter's drain time bounded;
* **read-only-sync refinement on/off** (DEF2 vs DEF2-R) under a
  spin-heavy barrier, Section 6's motivating case.
"""

from repro.analysis.comparison import compare_policies
from repro.analysis.report import format_table
from repro.memsys.config import NET_CACHE
from repro.models.policies import Def2Policy, Def2RPolicy
from repro.workloads.barrier import barrier_program
from repro.workloads.locks import critical_section_program

HIGH_LATENCY = NET_CACHE.with_overrides(network_base_latency=12, network_jitter=4)


def _print(title, comparisons):
    print(f"\n[ABL] {title}")
    print(
        format_table(
            ["variant", "cycles", "stalls", "messages", "sync NACKs"],
            [
                [c.policy_name, c.mean_cycles, c.mean_stall_cycles,
                 c.mean_messages, c.mean_sync_nacks]
                for c in comparisons
            ],
        )
    )


class NackDef2(Def2Policy):
    name = "DEF2/nack"


class QueueDef2(Def2Policy):
    name = "DEF2/queue"

    def __init__(self):
        super().__init__(nack_mode=False)

    def spec_params(self):
        # The knob setting is baked into __init__; the registered name
        # alone reconstructs this variant in campaign workers.
        return ()


class BoundedDef2(Def2Policy):
    name = "DEF2/bound2"

    def __init__(self):
        super().__init__(miss_bound_while_reserved=2)

    def spec_params(self):
        return ()


def test_abl_nack_vs_queue(benchmark):
    comparisons = benchmark.pedantic(
        lambda: compare_policies(
            program_factory=lambda: critical_section_program(
                3, 2, private_writes=4
            ),
            policies=[NackDef2, QueueDef2],
            config=HIGH_LATENCY,
            runs=4,
        ),
        rounds=1,
        iterations=1,
    )
    _print("reserved-line sync requests: NACK+retry vs queue-at-owner", comparisons)
    assert all(c.completed_runs == c.runs for c in comparisons)
    # Queue mode must eliminate NACK traffic entirely.
    by_name = {c.policy_name: c for c in comparisons}
    assert by_name["DEF2/queue"].mean_sync_nacks == 0


def test_abl_miss_bound_while_reserved(benchmark):
    comparisons = benchmark.pedantic(
        lambda: compare_policies(
            program_factory=lambda: critical_section_program(
                2, 2, private_writes=8
            ),
            policies=[Def2Policy, BoundedDef2],
            config=HIGH_LATENCY,
            runs=4,
        ),
        rounds=1,
        iterations=1,
    )
    _print("outstanding-miss bound while a line is reserved", comparisons)
    assert all(c.completed_runs == c.runs for c in comparisons)


def test_abl_read_only_sync_refinement(benchmark):
    comparisons = benchmark.pedantic(
        lambda: compare_policies(
            program_factory=lambda: barrier_program(3),
            policies=[Def2Policy, Def2RPolicy],
            config=NET_CACHE,
            runs=4,
        ),
        rounds=1,
        iterations=1,
    )
    _print("barrier spinning: DEF2 vs DEF2-R (Section 6)", comparisons)
    by_name = {c.policy_name: c for c in comparisons}
    # The refinement lets Tests hit shared copies: less protocol traffic.
    assert by_name["DEF2-R"].mean_messages < by_name["DEF2"].mean_messages
