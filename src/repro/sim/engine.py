"""Discrete-event simulation core.

Everything on the hardware side of the reproduction — processors, caches,
the directory, interconnects — is an event-driven component hanging off
one :class:`Simulator`.  Events are ``(time, sequence, callback)``
triples in a binary heap; same-time events fire in scheduling order,
which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import METRICS
from repro.sanitizer.checker import Sanitizer
from repro.trace.tracer import Tracer


class SimulationTimeout(RuntimeError):
    """The simulation exceeded its cycle budget without quiescing.

    ``cycles`` is the simulation time at the trip (the last cycle within
    budget that was actually processed) and ``budget`` the ``max_cycles``
    bound that was exceeded; both are ``None`` when the exception is
    raised by code that does not know them.
    """

    def __init__(
        self,
        message: str,
        cycles: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.cycles = cycles
        self.budget = budget


class Simulator:
    """A deterministic event-driven simulator with integer time."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._time = 0
        self._seq = 0
        self._running = False
        #: Event tracer, created disabled (see :mod:`repro.trace`).
        self.tracer = Tracer(self)
        #: Protocol-invariant checker, created disabled (see
        #: :mod:`repro.sanitizer`): like the tracer, the off mode costs
        #: the event loop one attribute load and branch per cycle.
        self.sanitizer = Sanitizer(self)

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._time

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self._time + delay, self._seq, callback))
        self._seq += 1

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the current time, after pending same-time events."""
        self.schedule(0, callback)

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Drain the event queue; returns the final simulation time.

        Raises :class:`SimulationTimeout` if time would pass
        ``max_cycles`` — the liveness watchdog backing the paper's
        deadlock-freedom argument (Section 5.3): a correctly implemented
        system always quiesces, so hitting the watchdog means a protocol
        or policy bug (or a livelocked program).
        """
        self._running = True
        sanitizer = self.sanitizer
        entry_time, entry_seq = self._time, self._seq
        try:
            while self._queue:
                time, _seq, callback = heapq.heappop(self._queue)
                if time > max_cycles:
                    raise SimulationTimeout(
                        f"simulation passed {max_cycles} cycles without quiescing",
                        cycles=self._time,
                        budget=max_cycles,
                    )
                if time != self._time:
                    # Cycle boundary: sweep invariants over the settled
                    # cycle before the clock advances.
                    if sanitizer.enabled:
                        sanitizer.on_cycle()
                    self._time = time
                callback()
        except SimulationTimeout:
            if METRICS.enabled:
                METRICS.inc(
                    "repro_sim_timeouts_total",
                    help="Runs that tripped the cycle-budget watchdog",
                )
            raise
        finally:
            self._running = False
            if METRICS.enabled:
                METRICS.inc(
                    "repro_sim_runs_total",
                    help="Simulator.run invocations",
                )
                METRICS.inc(
                    "repro_sim_cycles_total",
                    self._time - entry_time,
                    help="Simulated cycles advanced",
                )
                METRICS.inc(
                    "repro_sim_events_total",
                    self._seq - entry_seq,
                    help="Events scheduled while running",
                )
        return self._time

    def run_for(self, cycles: int) -> int:
        """Process all events up to ``now + cycles``, then stop.

        Unlike :meth:`run`, reaching the deadline is not an error; the
        clock is left at the deadline.  Useful for observing transient
        states mid-flight.
        """
        deadline = self._time + cycles
        while self._queue and self._queue[0][0] <= deadline:
            time, _seq, callback = heapq.heappop(self._queue)
            self._time = time
            callback()
        self._time = deadline
        return self._time

    def run_until(self, predicate: Callable[[], bool], max_cycles: int = 1_000_000) -> int:
        """Drain events until ``predicate()`` holds; returns current time."""
        self._running = True
        sanitizer = self.sanitizer
        try:
            while self._queue and not predicate():
                time, _seq, callback = heapq.heappop(self._queue)
                if time > max_cycles:
                    raise SimulationTimeout(
                        f"simulation passed {max_cycles} cycles without quiescing",
                        cycles=self._time,
                        budget=max_cycles,
                    )
                if time != self._time:
                    if sanitizer.enabled:
                        sanitizer.on_cycle()
                    self._time = time
                callback()
        finally:
            self._running = False
        return self._time

    @property
    def pending_events(self) -> int:
        return len(self._queue)


class Component:
    """Base class for simulated hardware components.

    Components that re-evaluate their state after an event cascade (a
    processor core re-checking its stalls, for example) use the
    coalesced :meth:`wake` facility: any number of ``wake()`` calls in
    one cascade collapse into a single deferred :meth:`on_wake`.  With
    multi-outstanding cores, one settled cascade can complete several
    accesses at once — coalescing keeps that a single re-evaluation
    instead of one per completion, and keeps the event schedule (and so
    the deterministic ``(time, seq)`` order) independent of how many
    completions happened to land together.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._wake_scheduled = False

    def wake(self) -> None:
        """Re-evaluate state after the current event cascade settles."""
        if self.wake_suppressed() or self._wake_scheduled:
            return
        self._wake_scheduled = True

        def run() -> None:
            self._wake_scheduled = False
            if self.wake_ready():
                self.on_wake()

        self.sim.call_soon(run)

    # -- wake hooks, overridden by components that use the facility ------
    def wake_suppressed(self) -> bool:
        """Checked at ``wake()`` time: True drops the wake entirely."""
        return False

    def wake_ready(self) -> bool:
        """Checked when the deferred wake fires: False skips ``on_wake``."""
        return True

    def on_wake(self) -> None:
        """The component's re-evaluation; default is a no-op."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
