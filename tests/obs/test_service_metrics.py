"""Service-tier counters: emitted, exported, parsed back, shown.

The breaker / queue / dedup counters must round-trip through the
Prometheus text exposition (the service's ``/metrics`` body and the
``.prom`` snapshot files) and render in ``repro metrics show``.
"""

import pytest

from repro.obs import parse_prometheus, to_prometheus
from repro.service.breaker import CircuitBreaker
from repro.service.engine import VerificationService
from repro.service.queue import AdmissionQueue


@pytest.fixture
def engine(tmp_path, metrics):
    service = VerificationService(
        tmp_path / "state", workers=1, campaign_jobs=1, capacity=2
    )
    service.start()
    yield service
    service.stop(timeout=10)


def roundtrip(registry):
    return parse_prometheus(to_prometheus(registry))


class TestCountersEmitted:
    def test_submission_lifecycle_counters(self, engine, metrics):
        job, _, _ = engine.submit("verify", {"test": "fig1_dekker"})
        engine.wait(job.id, timeout=60)
        engine.submit("verify", {"test": "fig1_dekker"})  # dedup hit
        snap = roundtrip(metrics)
        assert snap.value("repro_service_jobs_submitted_total",
                          kind="verify") == 2
        assert snap.value("repro_service_jobs_completed_total",
                          kind="verify") == 1
        assert snap.value("repro_service_dedup_hits_total") == 1

    def test_queue_counters(self, metrics):
        queue = AdmissionQueue(capacity=1, per_client=1)
        queue.try_admit("a")
        queue.try_admit("b")  # shed: full
        snap = roundtrip(metrics)
        assert snap.value("repro_service_queue_depth") == 1
        assert snap.value("repro_service_admission_rejected_total",
                          reason="queue-full") == 1
        queue.release("a")
        snap = roundtrip(metrics)
        assert snap.value("repro_service_queue_depth") == 0

    def test_breaker_counters(self, metrics):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        snap = roundtrip(metrics)
        assert snap.value("repro_service_breaker_opens_total") == 1
        assert snap.value("repro_service_breaker_state") == 2.0

    def test_degraded_and_deadline_counters(self, engine, metrics):
        # Deadline already spent: the job fails before starting.
        job, _, _ = engine.submit(
            "litmus", {"test": "fig1_dekker", "runs": 2},
            deadline_s=0.000001,
        )
        done = engine.wait(job.id, timeout=30)
        assert done.error == "deadline-exceeded"
        snap = roundtrip(metrics)
        assert snap.value("repro_service_deadline_exceeded_total") == 1
        assert snap.value("repro_service_jobs_failed_total",
                          kind="litmus") == 1


class TestMetricsShow:
    def test_show_renders_service_counters(
        self, engine, metrics, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.obs import write_prometheus

        job, _, _ = engine.submit("verify", {"test": "fig1_dekker"})
        engine.wait(job.id, timeout=60)
        out = tmp_path / "metrics.prom"
        write_prometheus(out, metrics)
        assert main(["metrics", "show", str(out)]) == 0
        shown = capsys.readouterr().out
        assert "repro_service_jobs_submitted_total" in shown
        assert "repro_service_jobs_completed_total" in shown
        assert "repro_service_queue_depth" in shown
