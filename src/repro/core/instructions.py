"""The instruction set of the reproduction's abstract processors.

Programs in this library are small assembly-like thread bodies.  The set
is deliberately minimal but complete enough to express every workload the
paper discusses:

* ordinary data accesses (``Load``/``Store``),
* the three synchronization flavours of Section 6 — read-only
  (``SyncLoad``, the paper's *Test*), write-only (``SyncStore``, the
  paper's *Unset*/*Set*), and read-write (``TestAndSet``, ``Swap``,
  ``FetchAndAdd``),
* register arithmetic and control flow, so spin-locks, barriers and
  bounded loops are expressible.

Every synchronization instruction accesses exactly one memory location,
as DRF0 condition (1) requires.  An instruction that swapped the values
of *two* memory locations is intentionally inexpressible (Section 4
forbids it as a DRF0 synchronization primitive).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.operation import Location, OpKind
from repro.core.registers import Register, RegisterFile

#: An operand is either a register name or an immediate integer.
Operand = Union[Register, int]


def operand_value(regs: RegisterFile, operand: Operand) -> int:
    """Resolve an operand against a register file."""
    if isinstance(operand, int):
        return operand
    return regs.read(operand)


class Instruction:
    """Base class for all instructions.  Purely a marker."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Memory instructions
# ---------------------------------------------------------------------------


class MemInstruction(Instruction):
    """An instruction that performs exactly one memory operation.

    Executors drive these through a uniform protocol:

    * :attr:`kind` says whether the op reads, writes, or both, and whether
      it is a synchronization operation.
    * :meth:`compute_write` maps ``(registers, old_memory_value)`` to the
      value stored — for plain stores the old value is ignored; for
      read-modify-writes it is the atomically-read value.
    * :attr:`dest` names the register receiving the read component's
      value (``None`` for write-only ops).
    """

    __slots__ = ()

    kind: OpKind
    location: Location
    dest: Optional[Register]

    def compute_write(self, regs: RegisterFile, old_value: int) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Load(MemInstruction):
    """Data read: ``dest <- mem[location]``."""

    dest: Register
    location: Location
    kind = OpKind.READ

    def compute_write(self, regs: RegisterFile, old_value: int) -> int:
        raise TypeError("Load has no write component")


@dataclass(frozen=True)
class Store(MemInstruction):
    """Data write: ``mem[location] <- src``."""

    location: Location
    src: Operand
    kind = OpKind.WRITE
    dest = None

    def compute_write(self, regs: RegisterFile, old_value: int) -> int:
        return operand_value(regs, self.src)


@dataclass(frozen=True)
class SyncLoad(MemInstruction):
    """Read-only synchronization (the paper's *Test*)."""

    dest: Register
    location: Location
    kind = OpKind.SYNC_READ

    def compute_write(self, regs: RegisterFile, old_value: int) -> int:
        raise TypeError("SyncLoad has no write component")


@dataclass(frozen=True)
class SyncStore(MemInstruction):
    """Write-only synchronization (the paper's *Unset*/*Set*)."""

    location: Location
    src: Operand
    kind = OpKind.SYNC_WRITE
    dest = None

    def compute_write(self, regs: RegisterFile, old_value: int) -> int:
        return operand_value(regs, self.src)


@dataclass(frozen=True)
class TestAndSet(MemInstruction):
    """Atomic read-write synchronization: ``dest <- mem; mem <- 1``."""

    dest: Register
    location: Location
    kind = OpKind.SYNC_RMW

    def compute_write(self, regs: RegisterFile, old_value: int) -> int:
        return 1


@dataclass(frozen=True)
class Swap(MemInstruction):
    """Atomic register-memory swap: ``dest <- mem; mem <- src``.

    Still a single-location operation, hence a legal DRF0 primitive.
    """

    dest: Register
    location: Location
    src: Operand
    kind = OpKind.SYNC_RMW

    def compute_write(self, regs: RegisterFile, old_value: int) -> int:
        return operand_value(regs, self.src)


@dataclass(frozen=True)
class FetchAndAdd(MemInstruction):
    """Atomic fetch-and-add: ``dest <- mem; mem <- mem + src``."""

    dest: Register
    location: Location
    src: Operand
    kind = OpKind.SYNC_RMW

    def compute_write(self, regs: RegisterFile, old_value: int) -> int:
        return old_value + operand_value(regs, self.src)


# ---------------------------------------------------------------------------
# Register instructions
# ---------------------------------------------------------------------------


class RegInstruction(Instruction):
    """An instruction touching only the local register file."""

    __slots__ = ()

    def apply(self, regs: RegisterFile) -> None:
        raise NotImplementedError


class BinOp(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"

    def evaluate(self, a: int, b: int) -> int:
        if self is BinOp.ADD:
            return a + b
        if self is BinOp.SUB:
            return a - b
        if self is BinOp.MUL:
            return a * b
        if self is BinOp.AND:
            return a & b
        if self is BinOp.OR:
            return a | b
        return a ^ b


@dataclass(frozen=True)
class Arith(RegInstruction):
    """``dest <- a <op> b``."""

    op: BinOp
    dest: Register
    a: Operand
    b: Operand

    def apply(self, regs: RegisterFile) -> None:
        regs.write(
            self.dest,
            self.op.evaluate(operand_value(regs, self.a), operand_value(regs, self.b)),
        )


@dataclass(frozen=True)
class Mov(RegInstruction):
    """``dest <- src``."""

    dest: Register
    src: Operand

    def apply(self, regs: RegisterFile) -> None:
        regs.write(self.dest, operand_value(regs, self.src))


@dataclass(frozen=True)
class Nop(RegInstruction):
    """Consumes one execution step; useful for padding local work."""

    def apply(self, regs: RegisterFile) -> None:
        pass


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class Condition(enum.Enum):
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def holds(self, a: int, b: int) -> bool:
        if self is Condition.EQ:
            return a == b
        if self is Condition.NE:
            return a != b
        if self is Condition.LT:
            return a < b
        if self is Condition.LE:
            return a <= b
        if self is Condition.GT:
            return a > b
        return a >= b


@dataclass(frozen=True)
class Branch(Instruction):
    """Conditional branch to a thread-local label."""

    cond: Condition
    a: Operand
    b: Operand
    target: str

    def taken(self, regs: RegisterFile) -> bool:
        return self.cond.holds(operand_value(regs, self.a), operand_value(regs, self.b))


@dataclass(frozen=True)
class Jump(Instruction):
    """Unconditional branch to a thread-local label."""

    target: str


@dataclass(frozen=True)
class Halt(Instruction):
    """Explicitly end the thread (implicit at end of instruction list)."""


@dataclass(frozen=True)
class Fence(Instruction):
    """Drain: stall until all previous accesses are globally performed.

    This is the RP3 fence option of Section 2.1 — "a process is required
    to wait for acknowledgements on its outstanding requests only on a
    fence instruction.  As will be apparent later, this option functions
    as a weakly ordered system."  It is also exactly the drain a context
    switch needs before process migration (Section 5.1's footnote): after
    a fence, all previous reads have returned and all previous writes are
    globally performed.

    Fences are invisible to the DRF0 machinery: they are not memory
    operations and create no happens-before edges.  Hardware that honours
    them can appear SC even to racy programs — stronger than the
    weak-ordering contract requires.
    """
