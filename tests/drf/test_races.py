"""Unit tests for race detection, including the Figure 2 executions."""

from repro.core.execution import Execution
from repro.core.operation import MemoryOp, OpKind
from repro.drf.figure2 import (
    FIGURE2B_RACY_LOCATIONS,
    figure2a_execution,
    figure2b_execution,
)
from repro.drf.models import DRF0, DRF0_R
from repro.drf.races import find_races, format_race_report, race_free


def op(kind, loc, proc, read=None, written=None):
    return MemoryOp(
        proc=proc, kind=kind, location=loc, value_read=read, value_written=written
    )


class TestFindRaces:
    def test_unsynchronized_conflict_is_a_race(self):
        trace = Execution(
            ops=[op(OpKind.WRITE, "x", 0, written=1), op(OpKind.READ, "x", 1, read=1)]
        )
        races = find_races(trace)
        assert len(races) == 1
        assert races[0].location == "x"
        assert not race_free(trace)

    def test_release_acquire_orders_the_conflict(self):
        trace = Execution(
            ops=[
                op(OpKind.WRITE, "x", 0, written=1),
                op(OpKind.SYNC_WRITE, "s", 0, written=1),
                op(OpKind.SYNC_RMW, "s", 1, read=1, written=1),
                op(OpKind.READ, "x", 1, read=1),
            ]
        )
        assert race_free(trace)

    def test_sync_accesses_to_same_location_never_race(self):
        trace = Execution(
            ops=[
                op(OpKind.SYNC_WRITE, "s", 0, written=1),
                op(OpKind.SYNC_RMW, "s", 1, read=1, written=1),
            ]
        )
        assert race_free(trace)

    def test_reads_never_race(self):
        trace = Execution(
            ops=[op(OpKind.READ, "x", 0, read=0), op(OpKind.READ, "x", 1, read=0)]
        )
        assert race_free(trace)

    def test_sync_vs_data_on_same_location_races(self):
        """A data read of a sync variable (barrier data-spin) is a race."""
        trace = Execution(
            ops=[
                op(OpKind.SYNC_RMW, "bar", 0, read=0, written=1),
                op(OpKind.READ, "bar", 1, read=1),
            ]
        )
        races = find_races(trace)
        assert len(races) == 1

    def test_drf0r_stricter_than_drf0(self):
        """A read-only sync used as a release orders under DRF0 but not
        under the Section 6 refinement."""
        trace = Execution(
            ops=[
                op(OpKind.WRITE, "x", 0, written=1),
                op(OpKind.SYNC_READ, "s", 0, read=0),
                op(OpKind.SYNC_RMW, "s", 1, read=0, written=1),
                op(OpKind.READ, "x", 1, read=1),
            ]
        )
        assert race_free(trace, model=DRF0)
        assert not race_free(trace, model=DRF0_R)

    def test_report_formatting(self):
        trace = Execution(
            ops=[op(OpKind.WRITE, "x", 0, written=1), op(OpKind.READ, "x", 1, read=1)]
        )
        races = find_races(trace)
        report = format_race_report(races)
        assert "1 data race" in report
        assert "x" in report
        assert format_race_report([]) == "no data races detected"


class TestFigure2:
    def test_figure2a_obeys_drf0(self):
        assert race_free(figure2a_execution())

    def test_figure2b_violates_drf0(self):
        races = find_races(figure2b_execution())
        assert races
        assert {r.location for r in races} == set(FIGURE2B_RACY_LOCATIONS)

    def test_figure2b_caption_conflicts(self):
        """P0's accesses race P1's write of x; P2's and P4's writes of y race."""
        races = find_races(figure2b_execution())
        x_procs = {
            frozenset((r.first.proc, r.second.proc))
            for r in races
            if r.location == "x"
        }
        y_procs = {
            frozenset((r.first.proc, r.second.proc))
            for r in races
            if r.location == "y"
        }
        assert frozenset((0, 1)) in x_procs
        assert frozenset((2, 4)) in y_procs

    def test_figure2a_sync_chain_orders_end_to_end(self):
        """The W(x) by P0 happens-before P3's final R(y) via the chain."""
        from repro.hb.augment import augment_execution
        from repro.hb.relations import build_happens_before

        trace = figure2a_execution()
        hb = build_happens_before(augment_execution(trace))
        first = trace.ops[0]
        last = trace.ops[-1]
        assert hb.ordered(first, last)
