"""A snooping MSI protocol on the atomic bus.

The paper's Section 2.1 recalls that single-bus cache-coherent systems
(e.g. Rudolph & Segall's protocols [RuS84]) were the setting where
coherence was first proven to give sequential consistency.  This module
provides that substrate as an alternative to the directory protocol:

* every miss becomes one **atomic bus transaction**; at the instant the
  transaction is granted, every other cache snoops it — a dirty owner
  supplies the line (and downgrades or invalidates), sharers of a
  read-exclusive request invalidate — and memory answers otherwise;
* because invalidations happen *at* the serialization instant, a write
  is globally performed the moment its transaction completes: commit and
  global perform coincide, so the commit-vs-gp gap that motivates the
  paper's Section 5 machinery simply does not exist here.  (The Figure-1
  bus+cache violation survives: a processor can still hit its stale
  local copy before its own write's transaction reaches the bus.)

The reserve-bit rule is still honoured for completeness: a *sync*
transaction that snoops a reserved line at its owner is NACKed and
retried, so condition 5 holds on this substrate too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.coherence.line import CacheLine, LineState
from repro.core.operation import Location, Value
from repro.cpu.access import MemoryAccess
from repro.cpu.counter import OutstandingCounter
from repro.interconnect.base import Interconnect
from repro.sim.engine import Component, Simulator
from repro.sim.stats import Stats

SNOOP_ENDPOINT = "snoop"


def snoop_cache_endpoint(cache_id: int) -> str:
    return f"snoopcache:{cache_id}"


@dataclass(frozen=True)
class BusRd:
    """Read miss: acquire a shared copy."""

    location: Location
    requester: int


@dataclass(frozen=True)
class BusRdX:
    """Write/upgrade miss: acquire the only copy."""

    location: Location
    requester: int
    is_sync: bool = False


@dataclass(frozen=True)
class BusWB:
    """Write back a dirty line on eviction."""

    location: Location
    value: Value
    requester: int


@dataclass(frozen=True)
class SnoopData:
    """Transaction response: the line value, with grant kind."""

    location: Location
    value: Value
    exclusive: bool


@dataclass(frozen=True)
class SnoopNack:
    """The owner held the line reserved; retry later (condition 5)."""

    location: Location


@dataclass(frozen=True)
class SnoopDone:
    """The requester installed the granted line: the bus is released.

    The bus is *atomic*, not split-transaction: a read/write transaction
    holds it from grant until the data lands in the requester's cache,
    so no other transaction can be granted into the window between the
    snoops and the install (the race a split bus would need transient
    states for)."""

    location: Location


class SnoopCoordinator(Component):
    """The bus-side serialization point.

    Receives transactions over the (serializing) bus; at receipt — the
    atomic transaction instant — it snoops every cache synchronously and
    replies to the requester through the bus.
    """

    def __init__(
        self,
        sim: Simulator,
        interconnect: Interconnect,
        stats: Stats,
        initial_memory: Optional[Dict[Location, Value]] = None,
        retry_delay: int = 8,
    ) -> None:
        super().__init__(sim, "snoop-coordinator")
        self.interconnect = interconnect
        self.stats = stats
        self.retry_delay = retry_delay
        self._memory: Dict[Location, Value] = dict(initial_memory or {})
        self.caches: List["SnoopingCache"] = []
        #: Atomic-bus serialization: a granted Rd/RdX holds the bus until
        #: the requester's SnoopDone; later transactions queue here.
        self._busy = False
        self._waiting: List[Any] = []
        interconnect.register(SNOOP_ENDPOINT, self._on_message)

    def attach(self, cache: "SnoopingCache") -> None:
        self.caches.append(cache)

    def memory_value(self, location: Location) -> Value:
        return self._memory.get(location, 0)

    # ------------------------------------------------------------------
    def _respond(self, cache_id: int, payload: Any) -> None:
        self.interconnect.send(
            SNOOP_ENDPOINT, snoop_cache_endpoint(cache_id), payload
        )

    def _on_message(self, payload: Any, src: str) -> None:
        if isinstance(payload, SnoopDone):
            self._busy = False
            self._drain()
            return
        if self._busy and isinstance(payload, (BusRd, BusRdX, BusWB)):
            self._waiting.append(payload)
            self.stats.bump("snoop.queued")
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.emit(
                    "dir", "queued", track=self.name,
                    args=(
                        ("payload", type(payload).__name__),
                        ("location", payload.location),
                        ("depth", len(self._waiting)),
                    ),
                )
            return
        self._dispatch(payload)

    def _drain(self) -> None:
        while self._waiting and not self._busy:
            self._dispatch(self._waiting.pop(0))

    def _dispatch(self, payload: Any) -> None:
        if isinstance(payload, BusRd):
            self._busy = True
            self._handle_rd(payload)
        elif isinstance(payload, BusRdX):
            self._handle_rdx(payload)
        elif isinstance(payload, BusWB):
            # Snoop our own transaction at the grant instant: if another
            # transaction took the line from the write-back buffer in the
            # meantime, the write-back was cancelled and must not clobber
            # the newer owner's data.
            owner = next(
                c for c in self.caches if c.cache_id == payload.requester
            )
            value = owner.consume_writeback(payload.location)
            if value is not None:
                self.stats.bump("snoop.writebacks")
                self._memory[payload.location] = value
            else:
                self.stats.bump("snoop.cancelled_writebacks")
        else:  # pragma: no cover - defensive
            raise TypeError(f"snoop coordinator cannot handle {payload!r}")

    def _handle_rd(self, txn: BusRd) -> None:
        self.stats.bump("snoop.busrd")
        value = self.memory_value(txn.location)
        for cache in self.caches:
            if cache.cache_id == txn.requester:
                continue
            supplied = cache.snoop_rd(txn.location)
            if supplied is not None:
                value = supplied
                self._memory[txn.location] = supplied
        self._respond(txn.requester, SnoopData(txn.location, value, exclusive=False))

    def _handle_rdx(self, txn: BusRdX) -> None:
        self.stats.bump("snoop.busrdx")
        # First pass: the reserve check.  A reserved line refuses the
        # sync transaction before anyone is invalidated.
        for cache in self.caches:
            if cache.cache_id == txn.requester:
                continue
            if cache.holds_reserved(txn.location):
                self.stats.bump("snoop.nacks")
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.emit(
                        "dir", "sync_nack", track=self.name,
                        args=(
                            ("location", txn.location),
                            ("requester", txn.requester),
                            ("owner", cache.cache_id),
                        ),
                    )
                self._respond(txn.requester, SnoopNack(txn.location))

                def retry(t=txn) -> None:
                    self.interconnect.send(
                        snoop_cache_endpoint(t.requester), SNOOP_ENDPOINT, t
                    )

                self.sim.schedule(self.retry_delay, retry)
                return
        self._busy = True
        value = self.memory_value(txn.location)
        for cache in self.caches:
            if cache.cache_id == txn.requester:
                continue
            supplied = cache.snoop_rdx(txn.location)
            if supplied is not None:
                value = supplied
        self._respond(txn.requester, SnoopData(txn.location, value, exclusive=True))


class SnoopingCache(Component):
    """A processor cache snooping the atomic bus.

    Implements the same processor-facing port as the directory cache
    (``submit``), so processors and policies are oblivious to which
    substrate they run on.
    """

    def __init__(
        self,
        sim: Simulator,
        cache_id: int,
        interconnect: Interconnect,
        coordinator: SnoopCoordinator,
        stats: Stats,
        capacity: Optional[int] = None,
        hit_latency: int = 1,
        reserve_enabled: bool = False,
    ) -> None:
        super().__init__(sim, f"snoopcache{cache_id}")
        self.cache_id = cache_id
        self.interconnect = interconnect
        self.coordinator = coordinator
        self.stats = stats
        self.capacity = capacity
        self.hit_latency = hit_latency
        self.reserve_enabled = reserve_enabled

        self.counter = OutstandingCounter(owner=self.name, clock=lambda: sim.now)
        self.sanitizer = sim.sanitizer
        self._lines: Dict[Location, CacheLine] = {}
        self._outstanding: Dict[Location, MemoryAccess] = {}
        #: Dirty lines awaiting their BusWB grant; snoopable, and
        #: cancelled (set to None) when another transaction takes them.
        self._victims: Dict[Location, Optional[Value]] = {}
        self._use_clock = 0
        #: Observers of incoming SnoopNack (stall accounting), same
        #: contract as ``Cache.on_sync_nack``.
        self.on_sync_nack: List[Callable[[Location], None]] = []
        interconnect.register(snoop_cache_endpoint(cache_id), self._on_message)
        coordinator.attach(self)
        self.tracer = sim.tracer
        if self.tracer.wants("counter"):
            def observe(value, _t=self.tracer, _track=self.name):
                _t.emit(
                    "counter", "outstanding", track=_track,
                    args=(("value", value),),
                )

            self.counter.observer = observe

    # ------------------------------------------------------------------
    # Processor-facing API (mirrors repro.coherence.cache.Cache)
    # ------------------------------------------------------------------
    def submit(self, access: MemoryAccess) -> None:
        self.sim.schedule(self.hit_latency, lambda: self._start(access))

    def line_state(self, location: Location) -> LineState:
        line = self._lines.get(location)
        return line.state if line else LineState.INVALID

    def line_value(self, location: Location) -> Optional[Value]:
        line = self._lines.get(location)
        return line.value if line and line.valid else None

    def is_reserved(self, location: Location) -> bool:
        line = self._lines.get(location)
        return bool(line and line.reserved)

    def any_reserved(self) -> bool:
        return any(line.reserved for line in self._lines.values())

    @property
    def over_capacity(self) -> bool:
        if self.capacity is None:
            return False
        return sum(1 for l in self._lines.values() if l.valid) > self.capacity

    def dirty_lines(self) -> Dict[Location, Value]:
        out = {
            loc: line.value
            for loc, line in self._lines.items()
            if line.state is LineState.EXCLUSIVE
        }
        for loc, value in self._victims.items():
            if value is not None:
                out[loc] = value
        return out

    # ------------------------------------------------------------------
    # Snoop duties (called synchronously at the transaction instant)
    # ------------------------------------------------------------------
    def holds_reserved(self, location: Location) -> bool:
        if not self.reserve_enabled:
            return False
        line = self._lines.get(location)
        return bool(line and line.valid and line.reserved)

    def snoop_rd(self, location: Location) -> Optional[Value]:
        """Another cache reads: supply if dirty, downgrade to shared."""
        line = self._lines.get(location)
        if line is not None and line.valid:
            if line.state is LineState.EXCLUSIVE:
                line.state = LineState.SHARED
                self.stats.bump("snoop.supplied")
                return line.value
            return None
        # The dirty data may be parked in the write-back buffer.
        value = self._victims.get(location)
        if value is not None:
            self.stats.bump("snoop.supplied_from_wb")
            return value
        return None

    def snoop_rdx(self, location: Location) -> Optional[Value]:
        """Another cache writes: supply if dirty, invalidate any copy."""
        line = self._lines.get(location)
        if line is not None and line.valid:
            value = line.value if line.state is LineState.EXCLUSIVE else None
            del self._lines[location]
            self.stats.bump("snoop.invalidated")
            return value
        if self._victims.get(location) is not None:
            # Hand the dirty data over and cancel our pending write-back:
            # the requester is the owner now.
            value = self._victims[location]
            self._victims[location] = None
            self.stats.bump("snoop.supplied_from_wb")
            return value
        return None

    def consume_writeback(self, location: Location) -> Optional[Value]:
        """Our BusWB was granted: pop the buffer entry (None = cancelled)."""
        return self._victims.pop(location, None)

    # ------------------------------------------------------------------
    # Access servicing
    # ------------------------------------------------------------------
    def _start(self, access: MemoryAccess) -> None:
        line = self._lines.get(access.location)
        needs_exclusive = access.needs_exclusive or access.kind.writes_memory
        if line is not None and line.valid and (
            line.state is LineState.EXCLUSIVE or not needs_exclusive
        ):
            self._touch(line)
            self.stats.bump("snoopcache.hits")
            self._perform(access, line)
            return
        self.stats.bump("snoopcache.misses")
        if access.location in self._outstanding:
            self.sanitizer.protocol_error(
                "open-transaction",
                f"second miss on {access.location!r} while one is already "
                f"outstanding (processor must serialize per location)",
                component=self.name,
                location=access.location,
            )
        self.counter.increment()
        self._outstanding[access.location] = access
        if needs_exclusive:
            txn = BusRdX(
                access.location, self.cache_id, is_sync=access.sync_protocol
            )
        else:
            txn = BusRd(access.location, self.cache_id)
        self._send(txn)

    def _perform(self, access: MemoryAccess, line: CacheLine) -> None:
        """Commit against the local copy; on this substrate a hit on an
        exclusive line (or any read hit) is globally performed at once."""
        old = line.value
        if access.kind.reads_memory:
            access.deliver_value(old, self.sim.now)
        if access.kind.writes_memory:
            assert access.compute_write is not None
            new = access.compute_write(old)
            line.value = new
            access.value_written = new
        access.mark_committed(self.sim.now)
        access.mark_globally_performed(self.sim.now)
        self._after_sync_commit(access, line)

    def _after_sync_commit(self, access: MemoryAccess, line: CacheLine) -> None:
        if not (self.reserve_enabled and access.sync_protocol):
            return
        if self.counter.value > 0:
            if not line.reserved:
                line.reserved = True
                self.stats.bump("snoopcache.reserves_set")
                if self.tracer.enabled:
                    self.tracer.emit(
                        "reserve", "set", track=self.name,
                        args=(("location", line.location),),
                    )
            self.counter.when_zero(self._clear_reserves)

    def _clear_reserves(self) -> None:
        for line in self._lines.values():
            if line.reserved and self.tracer.enabled:
                self.tracer.emit(
                    "reserve", "clear", track=self.name,
                    args=(("location", line.location),),
                )
            line.reserved = False

    # ------------------------------------------------------------------
    # Bus responses
    # ------------------------------------------------------------------
    def _send(self, payload: Any) -> None:
        self.interconnect.send(
            snoop_cache_endpoint(self.cache_id), SNOOP_ENDPOINT, payload
        )

    def _on_message(self, payload: Any, src: str) -> None:
        if isinstance(payload, SnoopData):
            access = self._outstanding.pop(payload.location)
            state = (
                LineState.EXCLUSIVE if payload.exclusive else LineState.SHARED
            )
            line = self._install(payload.location, state, payload.value)
            self.counter.decrement(context=access)
            self._perform(access, line)
            # Release the atomic bus: the transfer is complete.
            self._send(SnoopDone(payload.location))
        elif isinstance(payload, SnoopNack):
            access = self._outstanding.get(payload.location)
            if access is not None:
                access.nacks += 1
            self.stats.bump("snoopcache.nacks_received")
            for observer in self.on_sync_nack:
                observer(payload.location)
            # The coordinator re-issues the transaction after its retry
            # delay; nothing to do here.
        else:  # pragma: no cover - defensive
            raise TypeError(f"snooping cache cannot handle {payload!r}")

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def _install(self, location: Location, state: LineState, value: Value) -> CacheLine:
        line = self._lines.get(location)
        old_state = line.state if line is not None else LineState.INVALID
        if line is None:
            line = CacheLine(location=location, state=state, value=value)
            self._lines[location] = line
        else:
            line.state = state
            line.value = value
        if self.tracer.enabled:
            self.tracer.emit(
                "cache", "fill", track=self.name,
                args=(
                    ("location", location),
                    ("from", old_state.name),
                    ("to", state.name),
                ),
            )
        self._touch(line)
        self._evict_down_to_capacity(exclude=location)
        return line

    def _touch(self, line: CacheLine) -> None:
        self._use_clock += 1
        line.last_use = self._use_clock

    def _evict_down_to_capacity(self, exclude: Optional[Location]) -> None:
        if self.capacity is None:
            return
        while sum(1 for l in self._lines.values() if l.valid) > self.capacity:
            candidates = [
                line
                for loc, line in self._lines.items()
                if line.valid
                and not line.reserved
                and loc != exclude
                and loc not in self._outstanding
            ]
            if not candidates:
                self.stats.bump("snoopcache.flush_stalls")
                return
            victim = min(candidates, key=lambda l: l.last_use)
            self.stats.bump("snoopcache.evictions")
            if self.tracer.enabled:
                self.tracer.emit(
                    "cache", "evict", track=self.name,
                    args=(
                        ("location", victim.location),
                        ("state", victim.state.name),
                    ),
                )
            if victim.state is LineState.EXCLUSIVE:
                self._victims[victim.location] = victim.value
                self._send(BusWB(victim.location, victim.value, self.cache_id))
            del self._lines[victim.location]
