"""Unit tests for register files."""

import pytest

from repro.core.registers import RegisterFile


class TestRegisterFile:
    def test_unwritten_reads_zero(self):
        regs = RegisterFile()
        assert regs.read("r1") == 0

    def test_write_then_read(self):
        regs = RegisterFile()
        regs.write("r1", 42)
        assert regs.read("r1") == 42

    def test_initial_mapping(self):
        regs = RegisterFile({"a": 1, "b": 2})
        assert regs.read("a") == 1
        assert regs.read("b") == 2

    def test_non_int_rejected(self):
        regs = RegisterFile()
        with pytest.raises(TypeError):
            regs.write("r1", "nope")

    def test_snapshot_drops_zeros(self):
        regs = RegisterFile()
        regs.write("r1", 0)
        regs.write("r2", 7)
        assert regs.snapshot() == (("r2", 7),)

    def test_snapshot_sorted_and_hashable(self):
        regs = RegisterFile({"z": 1, "a": 2})
        snap = regs.snapshot()
        assert snap == (("a", 2), ("z", 1))
        hash(snap)

    def test_explicit_zero_equals_default(self):
        a = RegisterFile()
        b = RegisterFile()
        b.write("r1", 0)
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_and_inequality(self):
        a = RegisterFile({"r": 1})
        b = RegisterFile({"r": 1})
        c = RegisterFile({"r": 2})
        assert a == b
        assert a != c
        assert a != "not a register file"

    def test_copy_is_independent(self):
        a = RegisterFile({"r": 1})
        b = a.copy()
        b.write("r", 9)
        assert a.read("r") == 1
        assert b.read("r") == 9

    def test_as_dict_omits_zeros(self):
        regs = RegisterFile({"a": 0, "b": 3})
        assert regs.as_dict() == {"b": 3}

    def test_iteration(self):
        regs = RegisterFile({"a": 1, "b": 2})
        assert sorted(regs) == ["a", "b"]

    def test_negative_values_kept(self):
        regs = RegisterFile()
        regs.write("r", -5)
        assert regs.read("r") == -5
        assert regs.snapshot() == (("r", -5),)
