"""Workload generators: locks, barriers, pipelines, random programs."""

from repro.workloads.barrier import barrier_program, barrier_program_data_spin
from repro.workloads.locks import (
    acquire_test_and_set,
    acquire_test_test_and_set,
    critical_section_program,
    release,
    release_overlap_program,
)
from repro.workloads.producer_consumer import (
    expected_checksum,
    producer_consumer_program,
)
from repro.workloads.random_programs import (
    random_drf0_program,
    random_mixed_sync_program,
    random_racy_program,
    random_spin_program,
)
from repro.workloads.read_sharing import expected_reader_sum, read_sharing_program
from repro.workloads.ticket_lock import (
    sense_barrier_program,
    ticket_acquire,
    ticket_lock_program,
    ticket_release,
)

__all__ = [
    "acquire_test_and_set",
    "acquire_test_test_and_set",
    "barrier_program",
    "barrier_program_data_spin",
    "critical_section_program",
    "expected_checksum",
    "expected_reader_sum",
    "producer_consumer_program",
    "read_sharing_program",
    "random_drf0_program",
    "random_mixed_sync_program",
    "random_racy_program",
    "random_spin_program",
    "release",
    "release_overlap_program",
    "sense_barrier_program",
    "ticket_acquire",
    "ticket_lock_program",
    "ticket_release",
]
