"""Every StallReason is reachable — observability coverage.

The tracer and the Figure-3 aggregation attribute time by
:class:`~repro.sim.stats.StallReason`; a member no scenario can produce
is either dead code or a sign the wiring regressed.  Each test here
drives one reason out of a real simulation (or, for the two gate-only
capacity knobs, out of the policy gate the processor consults), plus an
end-of-run test that open stall windows are closed and counted.
"""

import pytest

from repro.core.operation import OpKind
from repro.core.program import Program, ThreadBuilder
from repro.delayset.policy import DelayPolicy
from repro.interconnect.network import Network
from repro.litmus.catalog import catalog_by_name
from repro.memsys.config import NET_CACHE, NET_CACHE_VC, NET_NOCACHE
from repro.memsys.migration import MigrationController
from repro.memsys.system import System
from repro.models.policies import (
    Def1Policy,
    Def2Policy,
    RelaxedPolicy,
    SCPolicy,
    policy_by_name,
)
from repro.sim.stats import StallReason, Stats
from repro.workloads.locks import release_overlap_program

from tests.models.test_policies import FakeCache, FakeProc, access


def stall_reasons(program, policy, config, seed=3, **system_kwargs):
    """The set of stall reasons one completed run exhibits."""
    system = System(program, policy, config, seed=seed, **system_kwargs)
    run = system.run()
    assert run.completed
    return {reason for (_, reason) in run.stats.stall_breakdown()}


@pytest.fixture(scope="module")
def dekker():
    return catalog_by_name()["fig1_dekker"].program


class TestEveryReasonIsReachable:
    def test_read_value(self, dekker):
        assert StallReason.READ_VALUE in stall_reasons(
            dekker, RelaxedPolicy(), NET_NOCACHE
        )

    def test_sc_previous_gp(self, dekker):
        assert StallReason.SC_PREVIOUS_GP in stall_reasons(
            dekker, SCPolicy(), NET_NOCACHE
        )

    def test_def1_sync_waits_prev_and_waits_sync_gp(self):
        reasons = stall_reasons(
            release_overlap_program(), Def1Policy(), NET_CACHE
        )
        assert StallReason.DEF1_SYNC_WAITS_PREV in reasons
        assert StallReason.DEF1_WAITS_SYNC_GP in reasons

    def test_def2_sync_commit(self):
        assert StallReason.DEF2_SYNC_COMMIT in stall_reasons(
            release_overlap_program(), Def2Policy(), NET_CACHE, seed=0
        )

    def test_def2_reserved_remote(self):
        """Condition 5 observed end to end: on a network whose
        invalidations crawl, the releaser's reserve bit NACKs the
        acquirer's TestAndSet, and the acquirer's commit wait is
        attributed to the reserve — not just to the commit."""

        class SlowInvalNetwork(Network):
            def send(self, src, dst, payload):
                from repro.coherence.protocol import Inval

                if isinstance(payload, Inval):
                    self.sim.schedule(
                        100, lambda: self._deliver(src, dst, payload)
                    )
                    return
                super().send(src, dst, payload)

        t0 = (
            ThreadBuilder("P0")
            .label("a").test_and_set("t", "lock").bne("t", 0, "a")
            .store("x", 42)
            .sync_store("lock", 0)
            .build()
        )
        t1 = (
            ThreadBuilder("P1")
            .load("w", "x")
            .label("b").test_and_set("t", "lock").bne("t", 0, "b")
            .load("r2", "x")
            .sync_store("lock", 0)
            .build()
        )
        program = Program([t0, t1], name="slow_inval_handoff")

        def make_net(sim, stats, rng):
            return SlowInvalNetwork(
                sim, stats, rng, base_latency=2, jitter=0,
                point_to_point_fifo=True, inval_virtual_channel=True,
            )

        system = System(
            program, Def2Policy(),
            NET_CACHE_VC.with_overrides(start_skew=0),
            seed=0, interconnect_factory=make_net,
        )
        run = system.run()
        assert run.completed
        assert run.stats.count("dir.sync_nacks") > 0
        reasons = {r for (_, r) in run.stats.stall_breakdown()}
        assert StallReason.DEF2_RESERVED_REMOTE in reasons

    def test_def2_flush_reserved_gate(self):
        # Gate-level: the capacity squeeze is a config corner the stock
        # machines never hit, but the processor consults exactly this
        # gate before every issue.
        policy = Def2Policy()
        proc = FakeProc(cache=FakeCache(over_capacity=True))
        assert (
            policy.issue_gate(proc, OpKind.READ)
            is StallReason.DEF2_FLUSH_RESERVED
        )

    def test_def2_miss_bound_gate(self):
        # Gate-level, same reasoning as the flush gate above.
        policy = Def2Policy(miss_bound_while_reserved=1)
        proc = FakeProc(
            pending=[access(OpKind.WRITE)], cache=FakeCache(reserved=True)
        )
        assert (
            policy.issue_gate(proc, OpKind.READ)
            is StallReason.DEF2_MISS_BOUND
        )

    def test_tso_load_and_store_order(self):
        # The load-load and load/store-store gates need accesses pending
        # at issue time, which takes the pipelined core's non-blocking
        # loads — the simple core waits for each read's value, so no
        # earlier load is ever still outstanding.
        t0 = (
            ThreadBuilder("P0")
            .load("r1", "x").load("r2", "y")
            .store("z", 1).store("w", 2)
            .build()
        )
        t1 = ThreadBuilder("P1").store("x", 7).build()
        program = Program([t0, t1], name="tso_order")
        reasons = stall_reasons(
            program, policy_by_name("TSO", core="pipelined"), NET_CACHE,
            seed=0, core="pipelined",
        )
        assert StallReason.TSO_LOAD_ORDER in reasons
        assert StallReason.TSO_STORE_ORDER in reasons

    def test_tso_atomic_fence(self):
        # A buffered store is still pending when the atomic issues (a
        # blocking load would have drained before the sync reached the
        # gate on the simple core).
        t0 = (
            ThreadBuilder("P0")
            .store("z", 1).sync_store("l", 1)
            .build()
        )
        t1 = ThreadBuilder("P1").store("x", 7).build()
        program = Program([t0, t1], name="tso_fence")
        assert StallReason.TSO_ATOMIC_FENCE in stall_reasons(
            program, policy_by_name("TSO"), NET_NOCACHE
        )

    def test_same_location(self):
        t0 = (
            ThreadBuilder("P0")
            .store("x", 1).load("r1", "x").store("x", 2)
            .build()
        )
        t1 = ThreadBuilder("P1").store("y", 1).build()
        program = Program([t0, t1], name="same_loc")
        assert StallReason.SAME_LOCATION in stall_reasons(
            program, RelaxedPolicy(), NET_CACHE, seed=0
        )

    def test_write_buffer_full(self):
        burst = Program(
            [
                ThreadBuilder("P0")
                .store("a", 1).store("b", 2).store("c", 3)
                .store("d", 4).store("e", 5)
                .build()
            ],
            name="write_burst",
        )
        config = NET_NOCACHE.with_overrides(write_buffer_capacity=1)
        assert StallReason.WRITE_BUFFER_FULL in stall_reasons(
            burst, RelaxedPolicy(), config
        )

    def test_fence_drain(self):
        fenced = catalog_by_name()["fig1_dekker_fenced"].program
        assert StallReason.FENCE_DRAIN in stall_reasons(
            fenced, RelaxedPolicy(), NET_NOCACHE
        )

    def test_delay_pair(self, dekker):
        assert StallReason.DELAY_PAIR in stall_reasons(
            dekker, DelayPolicy(dekker), NET_NOCACHE
        )

    def test_migration_drain(self):
        t0 = (
            ThreadBuilder("P0")
            .store("a", 1).store("b", 2).load("r1", "a")
            .build()
        )
        program = Program(
            [t0, ThreadBuilder("P1").store("d", 4).build(),
             ThreadBuilder("P2").build()],
            name="migratable",
        )
        system = System(program, Def2Policy(), NET_CACHE, seed=3)
        MigrationController(system).schedule(thread_id=0, to_proc=2, at_cycle=5)
        run = system.run()
        assert run.completed
        reasons = {r for (_, r) in run.stats.stall_breakdown()}
        assert StallReason.MIGRATION_DRAIN in reasons

    def test_core_window_full(self):
        wide = Program(
            [
                ThreadBuilder("P0")
                .store("a", 1).store("b", 2).store("c", 3)
                .store("d", 4).store("e", 5).store("f", 6)
                .build()
            ],
            name="wide_stores",
        )
        assert StallReason.CORE_WINDOW_FULL in stall_reasons(
            wide, RelaxedPolicy(), NET_CACHE, core="pipelined"
        )

    def test_all_members_are_covered_here(self):
        """Force this file to grow with the enum: any new StallReason
        must add a scenario (or an explicit gate-level test) above."""
        covered = {
            StallReason.READ_VALUE,
            StallReason.SC_PREVIOUS_GP,
            StallReason.DEF1_SYNC_WAITS_PREV,
            StallReason.DEF1_WAITS_SYNC_GP,
            StallReason.DEF2_SYNC_COMMIT,
            StallReason.DEF2_RESERVED_REMOTE,
            StallReason.DEF2_FLUSH_RESERVED,
            StallReason.DEF2_MISS_BOUND,
            StallReason.TSO_LOAD_ORDER,
            StallReason.TSO_STORE_ORDER,
            StallReason.TSO_ATOMIC_FENCE,
            StallReason.SAME_LOCATION,
            StallReason.WRITE_BUFFER_FULL,
            StallReason.FENCE_DRAIN,
            StallReason.DELAY_PAIR,
            StallReason.MIGRATION_DRAIN,
            StallReason.CORE_WINDOW_FULL,
        }
        assert covered == set(StallReason)


class TestOpenStallsClosedAtEndOfRun:
    def test_end_all_stalls_closes_and_counts(self):
        stats = Stats()
        stats.stall_begin(0, StallReason.READ_VALUE, now=10)
        stats.stall_begin(1, StallReason.DEF2_SYNC_COMMIT, now=12)
        stats.stall_end(1, StallReason.DEF2_SYNC_COMMIT, now=20)
        stats.end_all_stalls(now=30)
        breakdown = stats.stall_breakdown()
        assert breakdown[(0, StallReason.READ_VALUE)] == 20
        assert breakdown[(1, StallReason.DEF2_SYNC_COMMIT)] == 8
        # Idempotent: a second close adds nothing.
        stats.end_all_stalls(now=40)
        assert stats.stall_breakdown() == breakdown

    def test_open_window_emits_closing_trace_event(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        sim.tracer.enable()
        stats = Stats()
        stats.tracer = sim.tracer
        stats.stall_begin(0, StallReason.READ_VALUE, now=0)
        stats.end_all_stalls(now=25)
        events = sim.tracer.snapshot()
        closing = [e for e in events if e.phase == "E"]
        assert len(closing) == 1
        assert closing[0].arg("open_at_end") == 1
