"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestLitmusCommand:
    def test_catalog_test_runs(self, capsys):
        code = main(
            ["litmus", "fig1_dekker", "--policy", "SC",
             "--machine", "net_nocache", "--runs", "10"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fig1_dekker" in out and "10/10 runs" in out

    def test_expect_sc_fails_on_violation(self, capsys):
        code = main(
            ["litmus", "fig1_dekker_warm", "--policy", "RELAXED",
             "--runs", "40", "--expect-sc"]
        )
        assert code == 1

    def test_litmus_file_input(self, tmp_path, capsys):
        source = """
name: from_file
forbidden: P0:r1=0 & P1:r2=0
P0     | P1
x = 1  | y = 1
r1 = y | r2 = x
"""
        path = tmp_path / "t.litmus"
        path.write_text(source)
        code = main(
            ["litmus", str(path), "--policy", "SC",
             "--machine", "bus_nocache", "--runs", "5"]
        )
        assert code == 0
        assert "from_file" in capsys.readouterr().out

    def test_unknown_test_errors(self):
        with pytest.raises(SystemExit):
            main(["litmus", "no_such_test"])


class TestFaultsOption:
    def test_litmus_with_fault_preset(self, capsys):
        code = main(
            ["litmus", "fig1_dekker_sync_warm", "--policy", "DEF2",
             "--runs", "8", "--faults", "heavy"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults:" in out and "8/8 runs" in out

    def test_litmus_with_key_value_plan(self, capsys):
        code = main(
            ["litmus", "fig1_dekker", "--policy", "SC",
             "--machine", "net_nocache", "--runs", "8",
             "--faults", "jitter=10,reorder=20,duplicate=5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "jitter" in out

    def test_bad_faults_value_exits_with_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["litmus", "fig1_dekker", "--runs", "2",
                  "--faults", "bogus_key=1"])
        assert "bad --faults" in str(excinfo.value)


class TestMetricsJson:
    def test_metrics_json_reports_failure_counts(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        code = main(
            ["litmus", "fig1_dekker", "--policy", "SC",
             "--machine", "net_nocache", "--runs", "6",
             "--metrics-json", str(path)]
        )
        assert code == 0
        records = json.loads(path.read_text())
        assert len(records) == 1
        record = records[0]
        assert record["runs"] == 6
        for key in ("failed_runs", "timed_out_runs", "retried_runs",
                    "pool_rebuilds", "degraded"):
            assert key in record
        assert record["failed_runs"] == 0
        assert record["degraded"] is False


class TestDrfCommand:
    def test_racy_exits_nonzero(self, capsys):
        assert main(["drf", "fig1_dekker"]) == 1
        assert "VIOLATES" in capsys.readouterr().out

    def test_clean_exits_zero(self, capsys):
        assert main(["drf", "critical_section"]) == 0
        assert "obeys" in capsys.readouterr().out


class TestExploreCommand:
    def test_clean_exploration(self, capsys):
        code = main(
            ["explore", "fig1_dekker_sync", "--policy", "DEF2", "--delays", "1"]
        )
        assert code == 0
        assert "sequentially consistent" in capsys.readouterr().out

    def test_violating_exploration(self, capsys):
        code = main(
            ["explore", "fig1_dekker_warm", "--policy", "RELAXED",
             "--delays", "2"]
        )
        assert code == 1
        assert "NOT sequentially consistent" in capsys.readouterr().out


class TestOtherCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "fig1_dekker" in out and "critical_section" in out

    def test_delays(self, capsys):
        assert main(["delays", "fig1_dekker"]) == 0
        assert "2 pair(s)" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1", "--runs", "20"]) == 0
        out = capsys.readouterr().out
        assert "bus_nocache" in out and "VIOLATES SC" in out

    def test_figure3(self, capsys):
        assert main(["figure3", "--latencies", "4", "16", "--seeds", "2"]) == 0
        assert "DEF1 stall" in capsys.readouterr().out
