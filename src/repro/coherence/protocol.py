"""Coherence protocol messages (Section 5.2).

The paper assumes "a straightforward directory-based, write-back cache
coherence protocol, similar to those discussed in [ASH88]", with one
deliberate relaxation: on a write miss to a line shared by other caches,
the directory *forwards the line to the requester in parallel* with
sending the invalidations.  The requester may therefore write (commit)
before the write is globally performed; global performance is signalled
later by ``MemAck``, once the directory has collected every invalidation
acknowledgement.

Message direction conventions:

* cache -> directory: :class:`GetS`, :class:`GetX`, :class:`InvalAck`,
  :class:`RecallAck`, :class:`RecallNack`, :class:`WriteBack`
* directory -> cache: :class:`DataS`, :class:`DataX`, :class:`Inval`,
  :class:`MemAck`, :class:`Recall`, :class:`WriteBackAck`, :class:`SyncNack`
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operation import Location, Value


@dataclass(frozen=True)
class GetS:
    """Read miss: request a shared copy."""

    location: Location
    requester: int


@dataclass(frozen=True)
class GetX:
    """Write/upgrade miss: request an exclusive copy.

    ``is_sync`` marks synchronization accesses so owner caches can apply
    the reserve-bit rule of Section 5.3 (condition 5).
    """

    location: Location
    requester: int
    is_sync: bool = False


@dataclass(frozen=True)
class DataS:
    """Grant of a shared copy, carrying the (globally performed) value."""

    location: Location
    value: Value


@dataclass(frozen=True)
class DataX:
    """Grant of an exclusive copy, possibly before invalidations finish.

    ``pending_acks`` is the number of invalidations outstanding when the
    line was forwarded: 0 means the write globally performs on receipt;
    otherwise global performance is signalled by a later :class:`MemAck`.
    """

    location: Location
    value: Value
    pending_acks: int


@dataclass(frozen=True)
class Inval:
    """Invalidate any local copy of the line and acknowledge."""

    location: Location


@dataclass(frozen=True)
class InvalAck:
    """A cache acknowledges an invalidation."""

    location: Location
    from_cache: int


@dataclass(frozen=True)
class MemAck:
    """All invalidation acks collected: the requester's write is now
    globally performed (paper: "the directory ... is required to send its
    ack to the processor cache that issued the write")."""

    location: Location


@dataclass(frozen=True)
class Recall:
    """Directory asks the exclusive owner to give the line up.

    ``downgrade`` is True for a read request (owner keeps a shared copy)
    and False for a write request (owner invalidates).  ``for_sync``
    propagates the requesting access's synchronization status for the
    reserve-bit rule.
    """

    location: Location
    downgrade: bool
    for_sync: bool = False


@dataclass(frozen=True)
class RecallAck:
    """Owner's reply to a recall, carrying the current line value."""

    location: Location
    value: Value
    from_cache: int
    downgraded: bool


@dataclass(frozen=True)
class RecallNack:
    """Owner refuses a recall because the line is reserved (counter > 0).

    Section 5.3, footnote 2: "a negative ack may be sent to the processor
    that sent the request, asking it to try again"."""

    location: Location
    from_cache: int


@dataclass(frozen=True)
class SyncNack:
    """Directory tells the requester its sync request was NACKed and will
    be retried; purely informational (used for stall accounting)."""

    location: Location


@dataclass(frozen=True)
class WriteBack:
    """Eviction of a dirty (exclusive) line."""

    location: Location
    value: Value
    from_cache: int


@dataclass(frozen=True)
class WriteBackAck:
    """Directory accepted (or discarded as stale) a write-back."""

    location: Location
