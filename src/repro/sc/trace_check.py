"""Direct sequential-consistency checking of hardware traces.

The result-set oracle (:mod:`repro.sc.verifier`) decides "appears SC" by
enumerating every idealized execution — exact, but exponential in
program size.  This module implements the classic alternative used by
trace checkers (TSOtool-style): given one hardware trace, build the
constraint graph

* ``po``  — per-processor program order,
* ``ws``  — per-location write serialization (commit order, which
  conditions 2-3 of Section 5.1 make authoritative on the cache-coherent
  machines),
* ``rf``  — reads-from: each read to the write whose value it returned,
* ``fr``  — from-read: a read precedes the write *following* its source
  in ``ws`` (it did not see that later write),

and declare the trace SC-explainable iff the graph is acyclic — any
total order extending it is a legal SC execution producing these reads.

Reads-from inference is by value: when several writes wrote the same
value, the checker picks the latest one committed no later than the
read (the same charitable assignment the invariant checker uses), so a
reported cycle is genuine but value-duplication can hide one.  With
distinct written values — the convention all catalog litmus tests follow
— the check is exact.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.execution import Execution
from repro.core.operation import Location, MemoryOp, Value
from repro.hb.poset import CycleError, PartialOrder


@dataclass
class TraceCheckResult:
    """Outcome of the acyclicity check."""

    is_sc: bool
    #: Ops on the offending cycle (empty when ``is_sc``).
    cycle: List[MemoryOp] = field(default_factory=list)
    #: Reads whose source write could not be inferred (thin air).
    unexplained_reads: List[MemoryOp] = field(default_factory=list)

    def describe(self) -> str:
        if self.is_sc:
            return "trace is explainable by a sequentially consistent order"
        if self.unexplained_reads:
            reads = ", ".join(repr(op) for op in self.unexplained_reads)
            return f"trace reads values never written: {reads}"
        cycle = " -> ".join(repr(op) for op in self.cycle)
        return f"no SC order exists: constraint cycle {cycle}"


def _infer_reads_from(
    execution: Execution,
    writes_by_loc: Dict[Location, List[MemoryOp]],
    initial_memory: Mapping[Location, Value],
) -> Tuple[Dict[int, Optional[MemoryOp]], List[MemoryOp]]:
    """Map each read's uid to its source write (None = initial value)."""
    sources: Dict[int, Optional[MemoryOp]] = {}
    unexplained: List[MemoryOp] = []
    for op in execution.ops:
        if not op.reads_memory or op.value_read is None:
            continue
        best: Optional[MemoryOp] = None
        for write in writes_by_loc.get(op.location, []):
            if write is op:
                continue
            if write.value_written != op.value_read:
                continue
            if (
                write.commit_time is not None
                and op.commit_time is not None
                and write.commit_time > op.commit_time
            ):
                continue
            best = write  # writes iterate in ws order; keep the latest
        if best is not None:
            sources[op.uid] = best
        elif op.value_read == initial_memory.get(op.location, 0):
            sources[op.uid] = None
        else:
            unexplained.append(op)
    return sources, unexplained


def check_trace_sc(
    execution: Execution,
    initial_memory: Optional[Mapping[Location, Value]] = None,
) -> TraceCheckResult:
    """Decide whether the trace admits a sequentially consistent order."""
    initial_memory = initial_memory or {}
    ops = list(execution.ops)
    order = PartialOrder(ops)

    # po: a processor's program order is its *issue* order, which under
    # relaxed policies differs from the trace's commit order (a write may
    # commit after a later read).
    by_proc: Dict[int, List[MemoryOp]] = defaultdict(list)
    for op in ops:
        by_proc[op.proc].append(op)
    for proc_ops in by_proc.values():
        if all(op.issue_index is not None for op in proc_ops):
            proc_ops = sorted(proc_ops, key=lambda op: op.issue_index)
        order.add_chain(proc_ops)

    # ws: commit order per location.
    writes_by_loc: Dict[Location, List[MemoryOp]] = defaultdict(list)
    for op in ops:
        if op.writes_memory and op.value_written is not None:
            writes_by_loc[op.location].append(op)
    for writes in writes_by_loc.values():
        order.add_chain(writes)

    sources, unexplained = _infer_reads_from(
        execution, writes_by_loc, initial_memory
    )
    if unexplained:
        return TraceCheckResult(
            is_sc=False, unexplained_reads=unexplained
        )

    # rf and fr edges.
    for op in ops:
        if op.uid not in sources:
            continue
        source = sources[op.uid]
        writes = writes_by_loc.get(op.location, [])
        if source is None:
            # Initial value: the read precedes every write to the location.
            for write in writes:
                if write is not op:
                    _add_edge_safe(order, op, write)
        else:
            if source is not op:
                _add_edge_safe(order, source, op)
            index = writes.index(source)
            if index + 1 < len(writes):
                nxt = writes[index + 1]
                if nxt is not op:
                    _add_edge_safe(order, op, nxt)

    try:
        order.topological_order()
    except CycleError as error:
        return TraceCheckResult(is_sc=False, cycle=list(error.cycle))
    return TraceCheckResult(is_sc=True)


def _add_edge_safe(order: PartialOrder, a: MemoryOp, b: MemoryOp) -> None:
    """Add an edge, tolerating a==b (RMW reading its own location)."""
    if a is not b:
        order.add_edge(a, b)
