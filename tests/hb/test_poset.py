"""Unit tests for the partial-order structure."""

import pytest

from repro.hb.poset import CycleError, PartialOrder


class TestConstruction:
    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            PartialOrder(["a", "a"])

    def test_self_edge_rejected(self):
        order = PartialOrder(["a"])
        with pytest.raises(CycleError):
            order.add_edge("a", "a")

    def test_unknown_node_rejected(self):
        order = PartialOrder(["a"])
        with pytest.raises(KeyError):
            order.add_edge("a", "zzz")

    def test_len_and_contains(self):
        order = PartialOrder(["a", "b"])
        assert len(order) == 2
        assert "a" in order
        assert "c" not in order


class TestOrdering:
    def test_direct_edge(self):
        order = PartialOrder(["a", "b"])
        order.add_edge("a", "b")
        assert order.ordered("a", "b")
        assert not order.ordered("b", "a")

    def test_transitivity(self):
        order = PartialOrder("abcd")
        order.add_chain(["a", "b", "c", "d"])
        assert order.ordered("a", "d")
        assert order.ordered("b", "d")
        assert not order.ordered("d", "a")

    def test_incomparable(self):
        order = PartialOrder("abc")
        order.add_edge("a", "b")
        assert not order.are_ordered("a", "c")
        assert order.are_ordered("a", "b")
        assert order.are_ordered("b", "a")  # comparable either direction

    def test_diamond(self):
        order = PartialOrder("abcd")
        order.add_edge("a", "b")
        order.add_edge("a", "c")
        order.add_edge("b", "d")
        order.add_edge("c", "d")
        assert order.ordered("a", "d")
        assert not order.are_ordered("b", "c")

    def test_edges_added_after_query_are_seen(self):
        order = PartialOrder("abc")
        order.add_edge("a", "b")
        assert order.ordered("a", "b")
        order.add_edge("b", "c")
        assert order.ordered("a", "c")

    def test_cycle_detected_on_query(self):
        order = PartialOrder("ab")
        order.add_edge("a", "b")
        order.add_edge("b", "a")
        with pytest.raises(CycleError):
            order.ordered("a", "b")


class TestDerivedQueries:
    def build_chain(self):
        order = PartialOrder("abcd")
        order.add_chain(["a", "b", "c", "d"])
        return order

    def test_successors(self):
        order = self.build_chain()
        assert order.successors("b") == {"c", "d"}
        assert order.successors("d") == set()

    def test_predecessors(self):
        order = self.build_chain()
        assert order.predecessors("c") == {"a", "b"}
        assert order.predecessors("a") == set()

    def test_maximal_before_unique(self):
        order = self.build_chain()
        assert order.maximal_before("d", ["a", "b", "c"]) == ["c"]

    def test_maximal_before_multiple(self):
        order = PartialOrder("abz")
        order.add_edge("a", "z")
        order.add_edge("b", "z")
        maximal = order.maximal_before("z", ["a", "b"])
        assert sorted(maximal) == ["a", "b"]

    def test_maximal_before_empty(self):
        order = self.build_chain()
        assert order.maximal_before("a", ["b", "c"]) == []

    def test_topological_order_extends_partial_order(self):
        order = PartialOrder("abcd")
        order.add_edge("a", "c")
        order.add_edge("b", "c")
        order.add_edge("c", "d")
        topo = order.topological_order()
        for earlier, later in [("a", "c"), ("b", "c"), ("c", "d")]:
            assert topo.index(earlier) < topo.index(later)

    def test_direct_edges_iteration(self):
        order = PartialOrder("abc")
        order.add_edge("a", "b")
        order.add_edge("b", "c")
        assert set(order.edges()) == {("a", "b"), ("b", "c")}

    def test_nodes_property(self):
        assert PartialOrder("ab").nodes == ("a", "b")

    def test_large_chain_performance_shape(self):
        nodes = list(range(300))
        order = PartialOrder(nodes)
        order.add_chain(nodes)
        assert order.ordered(0, 299)
        assert not order.ordered(299, 0)
