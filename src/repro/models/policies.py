"""The concrete ordering policies: the paper's models plus TSO/PSO.

Each policy class declares a report ``name`` (which registers it — see
:func:`repro.models.base.registered_policies`) and a one-line
``summary``; the ``repro.models`` docstring, :func:`policy_by_name`,
and the CLI ``--policy`` choices are all derived from that registry, so
the per-class docstrings below are the canonical documentation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.operation import OpKind
from repro.models.base import (
    BlockKind,
    OrderingPolicy,
    policy_names,
    registered_policies,
)
from repro.sim.stats import StallReason

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import ProcessorCore


class RelaxedPolicy(OrderingPolicy):
    """No ordering constraints beyond intra-processor dependencies.

    The violation-producing baseline of Figure 1: writes are
    fire-and-forget and reads overtake pending writes.
    """

    name = "RELAXED"
    summary = ("no cross-access ordering beyond intra-processor "
               "dependencies (Figure 1 baseline)")


class RP3FencePolicy(RelaxedPolicy):
    """Relaxed issue with ordering only at explicit ``Fence`` instructions.

    Section 2.1: the RP3 "provides an option by which a process is
    required to wait for acknowledgements on its outstanding requests
    only on a fence instruction.  As will be apparent later, this option
    functions as a weakly ordered system."  The fence semantics live in
    the processor (policy-independent drain); this subclass exists so
    reports name the configuration.
    """

    name = "RP3-FENCE"
    summary = "relaxed issue; ordering only at explicit Fence instructions"


class SCPolicy(OrderingPolicy):
    """Sequential consistency via the Scheurich-Dubois condition."""

    name = "SC"
    summary = ("sequential consistency: nothing issues until the "
               "previous access globally performs (Section 2.1)")
    #: The issue gate keeps at most one access in flight, so a forward
    #: could never trigger anyway; declared off as defense-in-depth — SC
    #: hardware must never bind a read to a write that has not globally
    #: performed.
    allows_store_forwarding = False

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        if proc.pending_accesses:
            return StallReason.SC_PREVIOUS_GP
        return None


class Def1Policy(OrderingPolicy):
    """Weak ordering, old definition (Definition 1)."""

    name = "DEF1"
    summary = ("weak ordering per Definition 1: syncs wait for all "
               "previous accesses, everything waits for pending syncs")

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        # Condition (3): nothing issues until the previous sync op is
        # globally performed.
        if any(a.kind.is_sync for a in proc.pending_accesses):
            return StallReason.DEF1_WAITS_SYNC_GP
        # Condition (2): a sync op waits for *all* previous accesses to
        # be globally performed.
        if kind.is_sync and proc.pending_accesses:
            return StallReason.DEF1_SYNC_WAITS_PREV
        return None


class Def2Policy(OrderingPolicy):
    """The paper's implementation of weak ordering w.r.t. DRF0 (Section 5.3).

    Args:
        nack_mode: reserved-line recalls are NACKed for retry (default)
            or queued at the owner until the counter drains.
        miss_bound_while_reserved: optional bound on outstanding misses
            while any line is reserved (the paper's suggestion for
            keeping the counter's drain time bounded).
    """

    name = "DEF2"
    summary = ("the paper's counters + reserve bits (Section 5.3): "
               "syncs block to commit, not global perform")
    requires_cache = True
    reserve_enabled = True

    def __init__(
        self,
        nack_mode: bool = True,
        miss_bound_while_reserved: Optional[int] = None,
    ) -> None:
        self.nack_mode = nack_mode
        self.miss_bound_while_reserved = miss_bound_while_reserved

    def spec_params(self):
        return (
            ("nack_mode", self.nack_mode),
            ("miss_bound_while_reserved", self.miss_bound_while_reserved),
        )

    def sync_read_needs_exclusive(self) -> bool:
        # "All synchronization operations will be treated as write
        # operations by the cache coherence protocol." (Section 5.2)
        return True

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        # Condition 4: no new access until previous sync ops committed.
        if any(a.kind.is_sync and not a.committed for a in proc.pending_accesses):
            return StallReason.DEF2_SYNC_COMMIT
        cache = proc.cache
        assert cache is not None, "DEF2 requires a cache-coherent system"
        # The flush-stall rule: capacity pressure on reserved lines.
        if cache.over_capacity:
            return StallReason.DEF2_FLUSH_RESERVED
        if (
            self.miss_bound_while_reserved is not None
            and cache.any_reserved()
            and len(proc.pending_accesses) >= self.miss_bound_while_reserved
        ):
            return StallReason.DEF2_MISS_BOUND
        return None

    def block_kind(self, kind: OpKind) -> BlockKind:
        # A sync op must commit before the processor proceeds past it
        # (procure the line exclusive, perform the op) — but commit only,
        # not global perform: that is the whole point of the paper.
        if kind.is_sync:
            return BlockKind.COMMIT
        return BlockKind.NONE


class Def2RPolicy(Def2Policy):
    """DEF2 with Section 6's read-only-synchronization refinement."""

    name = "DEF2-R"
    summary = ("DEF2 with Section 6's refinement: read-only syncs are "
               "protocol data reads (contracts against DRF0-R)")
    model_name = "DRF0-R"
    sync_read_as_data = True

    def sync_read_needs_exclusive(self) -> bool:
        return False


class AllSyncPolicy(Def2Policy):
    """Hardware that must assume *every* access could synchronize.

    Section 3's alternative: "we believe ... that slow synchronization
    operations coupled with fast reads and writes will yield better
    performance than the alternative, where hardware must assume all
    accesses could be used for synchronization (as in [Lam86])."  This
    policy is that alternative: every access gets the full DEF2
    synchronization treatment — exclusive procurement, commit-blocking,
    reserve bits, serialization through ownership — because no labels
    tell the hardware which accesses actually synchronize.

    It is trivially weakly ordered w.r.t. DRF0 (it is stronger than
    DEF2) and serves as the quantitative baseline for the paper's claim
    that hardware-visible synchronization labels buy performance.
    """

    name = "ALL-SYNC"
    summary = ("every access gets the full DEF2 synchronization "
               "treatment (Section 3's no-labels alternative)")
    #: Every access commit-blocks, so no write is ever pending when a
    #: read issues; declared off as defense-in-depth, like SC.
    allows_store_forwarding = False

    def sync_protocol(self, kind: OpKind) -> bool:
        return True

    def needs_exclusive(self, kind: OpKind) -> bool:
        return True

    def block_kind(self, kind: OpKind) -> BlockKind:
        # Every access is a potential synchronization: it must commit
        # before the processor proceeds.
        return BlockKind.COMMIT

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        # Condition 4 with everything labelled sync: nothing new until
        # the previous access commits (enforced by block_kind); the
        # remaining DEF2 gates still apply.
        return super().issue_gate(proc, kind)


class TSOPolicy(OrderingPolicy):
    """Total store order: the SPARC-V8/x86-style store-buffer model.

    The one relaxation over SC is write-to-read: a load may issue (and
    bind its value, forwarding from the processor's own buffered store
    when the locations match) while earlier stores are still draining.
    Everything else stays in program order — loads never pass loads,
    stores never pass loads or other stores — and atomic (sync)
    operations act as full fences.

    On write-buffer machines (no caches) the FIFO buffer already drains
    stores one at a time in order, so store-store order holds by
    construction and any number of stores may be buffered; cache-based
    machines can globally perform two in-flight writes to different
    lines out of order, so the gate keeps at most one store in flight
    there.
    """

    name = "TSO"
    summary = ("total store order: loads overtake buffered stores "
               "(with forwarding); atomics are full fences")

    def _serialize_stores(self, proc: "ProcessorCore") -> bool:
        """Whether store-store order needs an explicit issue gate."""
        return proc.cache is not None

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        pending = proc.pending_accesses
        if not pending:
            return None
        # Atomics are fences: they wait for everything outstanding, and
        # everything waits for an outstanding atomic.
        if kind.is_sync or any(a.kind.is_sync for a in pending):
            return StallReason.TSO_ATOMIC_FENCE
        if kind.writes_memory:
            # Stores never overtake earlier loads ...
            if any(a.kind.reads_memory for a in pending):
                return StallReason.TSO_STORE_ORDER
            # ... nor earlier stores, where the machine could reorder.
            if self._serialize_stores(proc) and any(
                a.kind.writes_memory for a in pending
            ):
                return StallReason.TSO_STORE_ORDER
        elif any(a.kind.reads_memory for a in pending):
            # Loads overtake buffered stores — the TSO relaxation — but
            # never earlier loads.
            return StallReason.TSO_LOAD_ORDER
        return None


class PSOPolicy(TSOPolicy):
    """Partial store order: TSO with store-store order also relaxed.

    Stores to *different* locations may globally perform out of program
    order (same-location order survives through cache coherence and the
    one-transaction-per-location core rule); loads keep TSO's load-load
    and load-store ordering, and atomics remain full fences.  This is
    the SPARC-V8 PSO shape, observable on cache-based machines where
    two in-flight writes race through the directory.
    """

    name = "PSO"
    summary = ("partial store order: TSO with store-store order to "
               "different locations also relaxed")

    def _serialize_stores(self, proc: "ProcessorCore") -> bool:
        return False


def policy_by_name(name: str, core: Optional[str] = None) -> OrderingPolicy:
    """Construct a fresh policy instance from its report name.

    The canonical, warning-free path from a name to a policy: lookup is
    backed by the class registry
    (:func:`repro.models.base.registered_policies`), so any policy that
    declares a report ``name`` is constructible here with no table to
    update.  ``core`` optionally names the processor-core shape the
    policy should run on (``"simple"``/``"pipelined"``, see
    :func:`repro.cpu.core.core_names`); the choice is validated against
    the policy's :attr:`~repro.models.base.OrderingPolicy.supported_cores`
    and stamped on the instance, where ``PolicySpec.of`` and ``System``
    pick it up.  ``None`` leaves the default (``"simple"``).
    """
    registry = registered_policies()
    try:
        policy = registry[name.upper().replace("_", "-")]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(registry)}"
        )
    if core is not None:
        from repro.cpu.core import core_class_by_name

        core_class_by_name(core)  # unknown names fail loudly here
        if core not in policy.supported_cores:
            raise ValueError(
                f"policy {policy.name} does not support core {core!r}; "
                f"supported: {list(policy.supported_cores)}"
            )
        policy.core = core
    return policy
