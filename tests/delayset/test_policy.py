"""Integration tests for hardware enforcement of delay sets.

The Shasha-Snir guarantee: enforcing the delay pairs makes *every*
execution of the analysed program sequentially consistent — even on the
relaxed machines where the unconstrained program visibly violates SC.
"""

import pytest

from repro.core.program import Program, ThreadBuilder
from repro.delayset.analysis import delay_pairs, minimal_delay_pairs
from repro.delayset.policy import DelayPolicy, delay_policy_factory
from repro.memsys.config import FIGURE1_CONFIGS, NET_CACHE, NET_NOCACHE
from repro.memsys.system import run_program
from repro.models.policies import RelaxedPolicy, SCPolicy
from repro.sc.verifier import SCVerifier
from repro.sim.stats import StallReason


def dekker() -> Program:
    t0 = ThreadBuilder("P0").store("x", 1).load("r1", "y").build()
    t1 = ThreadBuilder("P1").store("y", 1).load("r2", "x").build()
    return Program([t0, t1], name="dekker")


def mp() -> Program:
    t0 = ThreadBuilder("P0").store("x", 42).store("f", 1).build()
    t1 = ThreadBuilder("P1").load("r1", "f").load("r2", "x").build()
    return Program([t0, t1], name="mp")


@pytest.fixture(scope="module")
def verifier():
    return SCVerifier()


class TestDelayEnforcementGivesSC:
    @pytest.mark.parametrize("config", FIGURE1_CONFIGS, ids=lambda c: c.name)
    @pytest.mark.parametrize("make_program", [dekker, mp], ids=["dekker", "mp"])
    def test_all_outcomes_sc(self, verifier, config, make_program):
        program = make_program()
        sc_set = verifier.sc_result_set(program)
        factory = delay_policy_factory(program)
        for seed in range(40):
            run = run_program(program, factory(), config, seed=seed)
            assert run.completed
            assert run.observable in sc_set, (config.name, seed)

    def test_minimal_set_also_suffices(self, verifier):
        program = dekker()
        sc_set = verifier.sc_result_set(program)
        pairs = minimal_delay_pairs(program)
        for seed in range(40):
            run = run_program(
                program, DelayPolicy(program, pairs), NET_NOCACHE, seed=seed
            )
            assert run.completed
            assert run.observable in sc_set

    def test_relaxed_baseline_really_violates(self, verifier):
        """Sanity: without the delays the same machine shows violations."""
        program = dekker()
        sc_set = verifier.sc_result_set(program)
        violated = any(
            run_program(program, RelaxedPolicy(), NET_NOCACHE, seed=seed).observable
            not in sc_set
            for seed in range(40)
        )
        assert violated


class TestDelayIsCheaperThanSC:
    def test_unrelated_work_overlaps(self):
        """A program with conflicts on x/y but lots of private traffic:
        the delay policy only serializes the two critical pairs, so it
        beats blanket SC."""
        t0 = ThreadBuilder("P0")
        t1 = ThreadBuilder("P1")
        for i in range(6):
            t0.store(f"p0_{i}", i + 1)
            t1.store(f"p1_{i}", i + 1)
        t0.store("x", 1).load("r1", "y")
        t1.store("y", 1).load("r2", "x")
        program = Program([t0.build(), t1.build()], name="padded_dekker")

        config = NET_CACHE.with_overrides(network_base_latency=12, network_jitter=2)
        factory = delay_policy_factory(program)
        delay_cycles = [
            run_program(program, factory(), config, seed=s).cycles
            for s in range(5)
        ]
        sc_cycles = [
            run_program(program, SCPolicy(), config, seed=s).cycles
            for s in range(5)
        ]
        assert sum(delay_cycles) < sum(sc_cycles)

    def test_stalls_attributed_to_delay_pairs(self):
        program = dekker()
        config = NET_CACHE.with_overrides(network_base_latency=12, network_jitter=0)
        factory = delay_policy_factory(program)
        run = run_program(program, factory(), config, seed=1)
        assert run.stats.stall_cycles(reason=StallReason.DELAY_PAIR) > 0

    def test_empty_delay_set_means_no_delay_stalls(self):
        program = Program(
            [
                ThreadBuilder("P0").store("a", 1).store("b", 1).build(),
                ThreadBuilder("P1").store("c", 1).build(),
            ]
        )
        factory = delay_policy_factory(program)
        run = run_program(program, factory(), NET_CACHE, seed=1)
        assert run.completed
        assert run.stats.stall_cycles(reason=StallReason.DELAY_PAIR) == 0
