"""Corner coverage: custom interconnects, processor adoption rules,
verifier edge cases, runner edge cases, fence/policy interactions."""

import pytest

from repro.core.program import Program, Thread, ThreadBuilder
from repro.explore.oracle import ReplayOracle, ScheduledInterconnect
from repro.memsys.config import BUS_NOCACHE, NET_CACHE
from repro.memsys.system import System, run_program
from repro.models.policies import (
    Def1Policy,
    Def2Policy,
    RP3FencePolicy,
    RelaxedPolicy,
    SCPolicy,
)
from repro.sim.stats import StallReason


class TestCustomInterconnectFactory:
    def test_system_accepts_factory(self):
        """The explorer's injection hook works for arbitrary transports."""
        program = Program(
            [ThreadBuilder("P0").store("x", 1).load("r", "x").build()]
        )
        oracle = ReplayOracle()
        system = System(
            program,
            SCPolicy(),
            NET_CACHE.with_overrides(start_skew=0),
            interconnect_factory=lambda sim, stats, rng: ScheduledInterconnect(
                sim, stats, oracle
            ),
        )
        run = system.run()
        assert run.completed
        assert run.observable.register(0, "r") == 1
        assert oracle.choice_points > 0

    def test_factory_overrides_config_choice(self):
        program = Program([ThreadBuilder("P0").store("x", 1).build()])
        oracle = ReplayOracle()
        system = System(
            program,
            SCPolicy(),
            BUS_NOCACHE.with_overrides(start_skew=0),
            interconnect_factory=lambda sim, stats, rng: ScheduledInterconnect(
                sim, stats, oracle
            ),
        )
        assert isinstance(system.interconnect, ScheduledInterconnect)
        assert system.run().completed


class TestAdoptionRules:
    def _system(self):
        program = Program(
            [
                ThreadBuilder("P0").store("x", 1).build(),
                Thread("P1", (), {}),
            ]
        )
        return System(program, Def2Policy(), NET_CACHE, seed=1)

    def test_busy_processor_cannot_adopt(self):
        system = self._system()
        worker = system.processors[0]
        assert not worker.idle_for_adoption  # it has a real thread

    def test_idle_processor_can_adopt(self):
        system = self._system()
        system.run()
        assert system.processors[1].idle_for_adoption

    def test_adopt_asserts_on_nonidle(self):
        system = self._system()
        system.run()
        with pytest.raises(AssertionError):
            system.processors[0].adopt_context(
                system.processors[1].export_context()
            )


class TestFencePolicyInteractions:
    def test_fence_under_def1_is_harmless(self):
        """A fence is policy-independent: DEF1 + fences stays correct."""
        program = Program(
            [
                ThreadBuilder("P0").store("x", 1).fence().sync_store("f", 1).build(),
                ThreadBuilder("P1")
                .label("spin")
                .sync_load("r1", "f")
                .beq("r1", 0, "spin")
                .load("r2", "x")
                .build(),
            ]
        )
        for seed in range(5):
            run = run_program(program, Def1Policy(), NET_CACHE, seed=seed)
            assert run.completed
            assert run.observable.register(1, "r2") == 1

    def test_rp3_policy_without_fences_is_relaxed(self):
        """RP3-FENCE on a fence-free racy program behaves like RELAXED:
        it can violate SC."""
        from repro.litmus.catalog import fig1_dekker
        from repro.litmus.runner import LitmusRunner

        runner = LitmusRunner()
        result = runner.run(
            fig1_dekker(warm=True), RP3FencePolicy, NET_CACHE, runs=50
        )
        assert result.forbidden_seen > 0


class TestRunnerEdges:
    def test_zero_runs(self):
        from repro.litmus.catalog import fig1_dekker
        from repro.litmus.runner import LitmusRunner

        result = LitmusRunner().run(fig1_dekker(), SCPolicy, NET_CACHE, runs=0)
        assert result.completed_runs == 0
        assert result.histogram == {}
        assert result.mean_cycles == 0.0

    def test_forbidden_none_reports_none(self):
        from repro.litmus.catalog import two_plus_two_w
        from repro.litmus.runner import LitmusRunner

        result = LitmusRunner().run(
            two_plus_two_w(), SCPolicy, NET_CACHE, runs=5
        )
        assert result.forbidden_seen is None


class TestStallAttributionAcrossPolicies:
    def test_def1_sync_gate_reasons_appear(self):
        program = Program(
            [
                ThreadBuilder("P0")
                .store("x", 1)
                .sync_store("f", 1)
                .store("y", 1)
                .build()
            ]
        )
        config = NET_CACHE.with_overrides(network_base_latency=20, network_jitter=0)
        run = run_program(program, Def1Policy(), config, seed=1)
        assert run.completed
        assert run.stats.stall_cycles(reason=StallReason.DEF1_SYNC_WAITS_PREV) > 0
        assert run.stats.stall_cycles(reason=StallReason.DEF1_WAITS_SYNC_GP) > 0

    def test_same_location_stall_appears(self):
        program = Program(
            [ThreadBuilder("P0").store("x", 1).store("x", 2).build()]
        )
        config = NET_CACHE.with_overrides(network_base_latency=20, network_jitter=0)
        run = run_program(program, RelaxedPolicy(), config, seed=1)
        assert run.completed
        assert run.observable.memory_value("x") == 2

    def test_def2_commit_block_reason(self):
        program = Program(
            [ThreadBuilder("P0").sync_store("s", 1).build()]
        )
        config = NET_CACHE.with_overrides(network_base_latency=15, network_jitter=0)
        run = run_program(program, Def2Policy(), config, seed=1)
        assert run.stats.stall_cycles(reason=StallReason.DEF2_SYNC_COMMIT) > 0


class TestHardwareRunSurface:
    def test_describe_contains_essentials(self):
        program = Program([ThreadBuilder("P0").store("x", 1).build()])
        run = run_program(program, SCPolicy(), NET_CACHE, seed=9)
        text = run.describe()
        assert "net_cache" in text and "seed=9" in text and "completed" in text

    def test_stats_describe_renders(self):
        program = Program([ThreadBuilder("P0").store("x", 1).build()])
        run = run_program(program, SCPolicy(), NET_CACHE, seed=9)
        assert "cycles:" in run.stats.describe()
