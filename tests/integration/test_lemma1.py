"""LEMMA1 integration: hardware executions and the Appendix A condition.

For executions of DRF0 programs on weakly ordered hardware, Lemma 1 says
an hb-witness must exist (an idealized execution with exactly the same
reads).  For non-SC executions of racy programs on relaxed hardware, the
witness search must come up empty.
"""

import pytest

from repro.litmus.catalog import fig1_dekker
from repro.memsys.config import NET_CACHE
from repro.memsys.system import run_program
from repro.models.policies import Def2Policy, RelaxedPolicy
from repro.sc.lemma1 import find_hb_witness, reads_from_last_hb_write
from repro.sc.verifier import SCVerifier
from repro.workloads.locks import release_overlap_program
from repro.workloads.random_programs import random_drf0_program


class TestWitnessExistsForDRF0Programs:
    def test_release_overlap_runs_have_witnesses(self):
        program = release_overlap_program(data_writes=2, post_release_work=2,
                                          private_writes=1)
        for seed in range(4):
            run = run_program(program, Def2Policy(), NET_CACHE, seed=seed)
            assert run.completed
            witness = find_hb_witness(program, run.execution)
            assert witness is not None, f"no witness for seed {seed}"
            # And the witness itself satisfies Lemma 1's read-value rule.
            assert reads_from_last_hb_write(
                witness, initial_memory=dict(program.initial_memory)
            ) == []

    def test_random_drf0_runs_have_witnesses(self):
        for program_seed in range(4):
            program = random_drf0_program(
                program_seed, num_procs=2, sections_per_proc=1, ops_per_section=2
            )
            run = run_program(program, Def2Policy(), NET_CACHE, seed=1)
            assert run.completed
            assert find_hb_witness(program, run.execution) is not None


class TestNoWitnessForViolations:
    def test_relaxed_violation_fails_witness_search(self):
        test = fig1_dekker(warm=True)
        program = test.executable_program()
        verifier = SCVerifier()
        sc_set = verifier.sc_result_set(program)
        found_violation = False
        for seed in range(60):
            run = run_program(program, RelaxedPolicy(), NET_CACHE, seed=seed)
            if not run.completed or run.observable in sc_set:
                continue
            found_violation = True
            assert find_hb_witness(program, run.execution) is None
            break
        assert found_violation, "no SC violation observed to test against"
