"""Rendering litmus tests back to the text format.

The inverse of :mod:`repro.litmus.parse`: :func:`render_litmus` turns a
:class:`~repro.litmus.test.LitmusTest` (or raw
:class:`~repro.core.program.Program`) into source the parser reads back
to an equivalent test — the round trip that lets tests be generated,
saved, shared and re-run.

The text format requires register names matching ``r<digits>``.
Programs using other register names are renamed consistently
(``__t -> r100``, ...) unless ``strict=True``, in which case rendering
such a program raises.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.instructions import (
    Arith,
    BinOp,
    Branch,
    Fence,
    FetchAndAdd,
    Halt,
    Instruction,
    Jump,
    Load,
    Mov,
    Nop,
    Store,
    Swap,
    SyncLoad,
    SyncStore,
    TestAndSet,
)
from repro.core.program import Program, Thread
from repro.litmus.parse import _is_register
from repro.litmus.test import LitmusTest

_BINOP_SYMBOLS = {
    BinOp.ADD: "+",
    BinOp.SUB: "-",
    BinOp.MUL: "*",
    BinOp.AND: "&",
    BinOp.OR: "or",
    BinOp.XOR: "^",
}


class UnrenderableError(ValueError):
    """The program cannot be expressed in the text format (strict mode)."""


class _Renamer:
    """Consistent renaming of non-conforming register names."""

    def __init__(self, program: Program, strict: bool) -> None:
        self.strict = strict
        self._map: Dict[str, str] = {}
        taken = {
            name
            for thread in program.threads
            for instr in thread.instructions
            for name in self._register_names(instr)
            if _is_register(name)
        }
        self._next = 100
        while f"r{self._next}" in taken:
            self._next += 1

    @staticmethod
    def _register_names(instr: Instruction) -> List[str]:
        names = []
        dest = getattr(instr, "dest", None)
        if isinstance(dest, str):
            names.append(dest)
        for attr in ("src", "a", "b"):
            value = getattr(instr, attr, None)
            if isinstance(value, str):
                names.append(value)
        return names

    def register(self, name: str) -> str:
        if _is_register(name):
            return name
        if self.strict:
            raise UnrenderableError(
                f"register {name!r} does not match r<digits>; rendering "
                "strictly requires conforming names"
            )
        if name not in self._map:
            self._map[name] = f"r{self._next}"
            self._next += 1
        return self._map[name]

    def operand(self, value) -> str:
        if isinstance(value, int):
            return str(value)
        return self.register(value)

    @property
    def mapping(self) -> Dict[str, str]:
        return dict(self._map)


def _render_instruction(instr: Instruction, renamer: _Renamer) -> str:
    if isinstance(instr, Load):
        return f"{renamer.register(instr.dest)} = {instr.location}"
    if isinstance(instr, Store):
        return f"{instr.location} = {renamer.operand(instr.src)}"
    if isinstance(instr, SyncLoad):
        return f"{renamer.register(instr.dest)} = sync {instr.location}"
    if isinstance(instr, SyncStore):
        return f"sync {instr.location} = {renamer.operand(instr.src)}"
    if isinstance(instr, TestAndSet):
        return f"{renamer.register(instr.dest)} = tas {instr.location}"
    if isinstance(instr, FetchAndAdd):
        return (
            f"{renamer.register(instr.dest)} = faa {instr.location} "
            f"{renamer.operand(instr.src)}"
        )
    if isinstance(instr, Swap):
        return (
            f"{renamer.register(instr.dest)} = swap {instr.location} "
            f"{renamer.operand(instr.src)}"
        )
    if isinstance(instr, Mov):
        return f"{renamer.register(instr.dest)} = {renamer.operand(instr.src)}"
    if isinstance(instr, Arith):
        return (
            f"{renamer.register(instr.dest)} = {renamer.operand(instr.a)} "
            f"{_BINOP_SYMBOLS[instr.op]} {renamer.operand(instr.b)}"
        )
    if isinstance(instr, Branch):
        return (
            f"if {renamer.operand(instr.a)} {instr.cond.value} "
            f"{renamer.operand(instr.b)} goto {instr.target}"
        )
    if isinstance(instr, Jump):
        return f"goto {instr.target}"
    if isinstance(instr, Nop):
        return "nop"
    if isinstance(instr, Fence):
        return "fence"
    if isinstance(instr, Halt):
        return "halt"
    raise UnrenderableError(f"cannot render {instr!r}")


def _render_thread(thread: Thread, renamer: _Renamer) -> List[str]:
    """Statement strings, labels prefixed onto their instruction."""
    labels_at: Dict[int, List[str]] = {}
    for label, pos in thread.labels.items():
        labels_at.setdefault(pos, []).append(label)
    rows: List[str] = []
    for idx, instr in enumerate(thread.instructions):
        prefix = "".join(f"{label}: " for label in sorted(labels_at.get(idx, [])))
        rows.append(prefix + _render_instruction(instr, renamer))
    # Labels pointing past the last instruction get their own row.
    for label in sorted(labels_at.get(len(thread.instructions), [])):
        rows.append(f"{label}: nop")
    return rows


def render_litmus(
    test_or_program,
    strict: bool = False,
) -> str:
    """Render a test (or bare program) to parseable litmus source."""
    if isinstance(test_or_program, LitmusTest):
        test: Optional[LitmusTest] = test_or_program
        program = test.program
    else:
        test = None
        program = test_or_program

    renamer = _Renamer(program, strict=strict)
    columns = [_render_thread(thread, renamer) for thread in program.threads]

    lines = [f"name: {program.name}"]
    if program.initial_memory:
        pairs = " ".join(
            f"{loc}={value}" for loc, value in sorted(program.initial_memory.items())
        )
        lines.append(f"init: {pairs}")
    if test is not None and test.projection:
        rename = lambda reg: renamer.mapping.get(reg, reg)
        lines.append(
            "observe: "
            + " ".join(f"P{proc}:{rename(reg)}" for proc, reg in test.projection)
        )
        if test.forbidden is not None:
            terms = " & ".join(
                f"P{proc}:{rename(reg)}={value}"
                for (proc, reg), value in zip(test.projection, test.forbidden)
            )
            lines.append(f"forbidden: {terms}")
    lines.append("")

    headers = [f"P{i}" for i in range(program.num_procs)]
    depth = max(len(col) for col in columns)
    widths = [
        max([len(headers[i])] + [len(row) for row in columns[i]])
        for i in range(len(columns))
    ]
    lines.append(
        " | ".join(headers[i].ljust(widths[i]) for i in range(len(columns)))
    )
    for row_idx in range(depth):
        cells = [
            (columns[i][row_idx] if row_idx < len(columns[i]) else "").ljust(
                widths[i]
            )
            for i in range(len(columns))
        ]
        lines.append(" | ".join(cells).rstrip())
    return "\n".join(lines) + "\n"
