"""FaultyInterconnect: determinism, FIFO preservation, duplicates.

The unit tests drive the wrapper directly over a plain network with a
recording handler; the integration tests run real litmus specs and check
the properties the tentpole promises — fault-injected runs are pure
functions of their spec, DRF0 programs keep their SC outcomes, racy
programs still surface violations, and serial/parallel campaigns remain
byte-identical with plans riding inside the specs.
"""

import pickle

from repro.campaign import (
    ParallelExecutor,
    PolicySpec,
    RunSpec,
    SerialExecutor,
    run_campaign,
)
from repro.faults import FaultPlan, FaultyInterconnect
from repro.interconnect.network import Network
from repro.litmus.catalog import fig1_dekker, fig1_dekker_all_sync
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import NET_CACHE, NET_NOCACHE
from repro.memsys.system import run_program
from repro.models.policies import Def2Policy, RelaxedPolicy, SCPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import TimingRng
from repro.sim.stats import Stats


def _harness(plan, allow_duplicates=True, jitter=0, fifo=True):
    """A faulty wrapper over a real network, with a recording endpoint."""
    sim = Simulator()
    stats = Stats()
    inner = Network(
        sim, stats, TimingRng(11), base_latency=2, jitter=jitter,
        point_to_point_fifo=fifo,
    )
    faulty = FaultyInterconnect(
        sim, stats, inner, plan=plan, rng=TimingRng(99),
        allow_duplicates=allow_duplicates,
    )
    delivered = []
    faulty.register("sink", lambda payload, src: delivered.append((src, payload)))
    return sim, stats, faulty, delivered


class TestWrapper:
    def test_null_plan_is_transparent(self):
        sim, stats, faulty, delivered = _harness(FaultPlan())
        for n in range(5):
            faulty.send("a", "sink", n)
        sim.run()
        assert [p for _, p in delivered] == [0, 1, 2, 3, 4]
        assert stats.count("faults.delayed") == 0

    def test_per_channel_fifo_is_preserved(self):
        plan = FaultPlan(delay_jitter=20, reorder_pct=50, reorder_delay=40)
        sim, stats, faulty, delivered = _harness(plan)
        for n in range(30):
            faulty.send("a", "sink", ("a", n))
            faulty.send("b", "sink", ("b", n))
        sim.run()
        assert len(delivered) == 60
        for channel in ("a", "b"):
            seq = [n for src, (ch, n) in delivered if ch == channel]
            assert seq == sorted(seq), "per-channel FIFO broken"

    def test_cross_channel_reordering_happens(self):
        plan = FaultPlan(delay_jitter=20, reorder_pct=50, reorder_delay=40)
        sim, stats, faulty, delivered = _harness(plan)
        for n in range(30):
            faulty.send("a", "sink", ("a", n))
            faulty.send("b", "sink", ("b", n))
        sim.run()
        # The interleaving of the two channels must differ from strict
        # alternation somewhere (otherwise injection did nothing).
        interleaving = [ch for _, (ch, _) in delivered]
        assert interleaving != ["a", "b"] * 30
        assert stats.count("faults.reorders") > 0

    def test_duplicates_delivered_when_allowed(self):
        plan = FaultPlan(duplicate_pct=100)
        sim, stats, faulty, delivered = _harness(plan)
        for n in range(10):
            faulty.send("a", "sink", n)
        sim.run()
        assert len(delivered) == 20
        assert stats.count("faults.duplicates") == 10
        # Replays trail their originals on the channel.
        seq = [p for _, p in delivered]
        assert seq == sorted(seq)

    def test_duplicates_suppressed_when_disallowed(self):
        plan = FaultPlan(duplicate_pct=100)
        sim, stats, faulty, delivered = _harness(plan, allow_duplicates=False)
        for n in range(10):
            faulty.send("a", "sink", n)
        sim.run()
        assert len(delivered) == 10
        assert stats.count("faults.duplicates_suppressed") == 10

    def test_fault_stream_is_deterministic(self):
        plan = FaultPlan(delay_jitter=9, reorder_pct=30, duplicate_pct=20)

        def trace():
            sim, _stats, faulty, delivered = _harness(plan)
            for n in range(40):
                faulty.send("a", "sink", ("a", n))
                faulty.send("b", "sink", ("b", n))
            sim.run()
            return delivered

        assert trace() == trace()

    def test_wrapper_delegates_introspection(self):
        sim, _stats, faulty, _delivered = _harness(FaultPlan())
        assert faulty.base_latency == 2  # Network attribute through wrapper


class TestInjectedRuns:
    def test_run_is_pure_function_of_spec(self):
        plan = FaultPlan(delay_jitter=12, reorder_pct=25, duplicate_pct=10)
        runs = [
            run_program(
                fig1_dekker().program, SCPolicy(), NET_NOCACHE,
                seed=5, fault_plan=plan,
            )
            for _ in range(2)
        ]
        assert runs[0].observable == runs[1].observable
        assert runs[0].cycles == runs[1].cycles

    def test_salt_varies_the_fault_stream(self):
        cycles = {
            run_program(
                fig1_dekker().program, SCPolicy(), NET_NOCACHE, seed=5,
                fault_plan=FaultPlan(delay_jitter=12, reorder_pct=25, salt=salt),
            ).cycles
            for salt in range(6)
        }
        assert len(cycles) > 1, "salt never changed injected timings"

    def test_drf0_program_keeps_sc_outcomes_under_faults(self):
        runner = LitmusRunner()
        test = fig1_dekker_all_sync(warm=True)
        plan = FaultPlan(delay_jitter=16, reorder_pct=25, reorder_delay=32)
        result = runner.run(
            test, Def2Policy, NET_CACHE, runs=12, faults=plan
        )
        assert result.completed_runs == 12
        assert not result.violated_sc

    def test_racy_program_still_surfaces_violations(self):
        runner = LitmusRunner()
        plan = FaultPlan(delay_jitter=10, reorder_pct=30, duplicate_pct=10)
        result = runner.run(
            fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=40, faults=plan
        )
        assert result.violated_sc

    def test_serial_parallel_byte_identical_with_faults(self):
        plan = FaultPlan(delay_jitter=10, reorder_pct=20, duplicate_pct=10)
        program = fig1_dekker().program
        policy = PolicySpec.of(RelaxedPolicy)
        specs = [
            RunSpec(
                program=program, policy=policy, config=NET_NOCACHE,
                seed=seed, faults=plan,
            )
            for seed in range(8)
        ]
        serial = SerialExecutor().map(specs)
        with ParallelExecutor(jobs=2) as executor:
            parallel = executor.map(specs)
        assert [pickle.dumps(r) for r in serial] == [
            pickle.dumps(r) for r in parallel
        ]

    def test_faulted_campaign_labelled_metrics(self):
        plan = FaultPlan(delay_jitter=6)
        program = fig1_dekker().program
        policy = PolicySpec.of(RelaxedPolicy)
        specs = [
            RunSpec(
                program=program, policy=policy, config=NET_NOCACHE,
                seed=seed, faults=plan,
            )
            for seed in range(4)
        ]
        campaign = run_campaign(specs, label="faulted")
        assert campaign.ok
        assert campaign.metrics.failed_runs == 0
