"""FaultPlan: validation, parsing, presets, value semantics."""

import pickle

import pytest

from repro.campaign import PolicySpec, RunSpec
from repro.faults import PRESETS, FaultPlan, parse_fault_plan
from repro.litmus.catalog import fig1_dekker
from repro.memsys.config import NET_NOCACHE
from repro.models.policies import RelaxedPolicy


class TestFaultPlan:
    def test_null_plan(self):
        plan = FaultPlan()
        assert plan.is_null
        assert plan.describe() == "faults: none"

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(delay_jitter=-1)
        with pytest.raises(ValueError):
            FaultPlan(reorder_pct=101)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_pct=-5)
        with pytest.raises(ValueError):
            FaultPlan(reorder_delay=0)

    def test_value_semantics(self):
        a = FaultPlan(delay_jitter=4, reorder_pct=10)
        b = FaultPlan(delay_jitter=4, reorder_pct=10)
        assert a == b and hash(a) == hash(b)
        assert pickle.loads(pickle.dumps(a)) == a

    def test_with_overrides(self):
        plan = FaultPlan(delay_jitter=4).with_overrides(salt=7)
        assert plan.delay_jitter == 4 and plan.salt == 7


class TestParse:
    def test_key_value_pairs(self):
        plan = FaultPlan.parse("jitter=12, reorder=20%, duplicate=5, salt=3")
        assert plan == FaultPlan(
            delay_jitter=12, reorder_pct=20, duplicate_pct=5, salt=3
        )

    def test_presets(self):
        assert FaultPlan.parse("light") == PRESETS["light"]
        assert FaultPlan.parse("HEAVY") == PRESETS["heavy"]
        assert FaultPlan.parse("none").is_null
        # Timing-only presets are legal on every machine.
        for name in ("light", "heavy"):
            assert PRESETS[name].duplicate_pct == 0

    def test_bad_input_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus_key=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("jitter")
        with pytest.raises(ValueError):
            FaultPlan.parse("jitter=lots")

    def test_parse_fault_plan_helper(self):
        assert parse_fault_plan(None) is None
        assert parse_fault_plan("") is None
        assert parse_fault_plan("none") is None
        assert parse_fault_plan("jitter=4") == FaultPlan(delay_jitter=4)


class TestSpecIntegration:
    def _spec(self, faults=None):
        return RunSpec(
            program=fig1_dekker().program,
            policy=PolicySpec.of(RelaxedPolicy),
            config=NET_NOCACHE,
            seed=1,
            faults=faults,
        )

    def test_plan_changes_spec_digest(self):
        base = self._spec()
        faulty = self._spec(FaultPlan(delay_jitter=8))
        salted = self._spec(FaultPlan(delay_jitter=8, salt=1))
        digests = {base.digest(), faulty.digest(), salted.digest()}
        assert len(digests) == 3

    def test_spec_with_plan_pickles(self):
        spec = self._spec(FaultPlan(delay_jitter=8, reorder_pct=10))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_schedule_and_faults_are_exclusive(self):
        spec = RunSpec(
            program=fig1_dekker().program,
            policy=PolicySpec.of(RelaxedPolicy),
            config=NET_NOCACHE,
            seed=1,
            schedule=(0, 0),
            faults=FaultPlan(delay_jitter=8),
        )
        with pytest.raises(ValueError):
            spec.execute()
