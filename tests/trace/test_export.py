"""Export formats: JSONL round-trip, Chrome/Perfetto JSON, timeline."""

import json

import pytest

from repro.trace import (
    TraceEvent,
    chrome_events,
    format_timeline,
    from_jsonl,
    to_chrome,
    to_jsonl,
    write_trace,
)

EVENTS = (
    TraceEvent(time=0, category="proc", name="issue", track="P0",
               args=(("kind", "WRITE"), ("location", "x"))),
    TraceEvent(time=2, category="stall", name="READ_VALUE", phase="B",
               track="P1"),
    TraceEvent(time=3, category="msg", name="Inval", phase="S",
               track="cache0", flow_id=4),
    TraceEvent(time=9, category="msg", name="Inval", phase="F",
               track="cache1", flow_id=4),
    TraceEvent(time=11, category="stall", name="READ_VALUE", phase="E",
               track="P1"),
    TraceEvent(time=12, category="msg", name="Ack", phase="F",
               track="directory"),  # un-linked delivery: no flow_id
)


class TestJsonl:
    def test_round_trip_is_lossless(self):
        assert from_jsonl(to_jsonl(EVENTS)) == EVENTS

    def test_one_json_object_per_line(self):
        lines = to_jsonl(EVENTS).splitlines()
        assert len(lines) == len(EVENTS)
        for line in lines:
            json.loads(line)

    def test_flow_id_omitted_when_absent(self):
        record = json.loads(to_jsonl([EVENTS[0]]))
        assert "flow_id" not in record

    def test_blank_lines_ignored(self):
        text = to_jsonl(EVENTS[:2]) + "\n\n" + to_jsonl(EVENTS[2:3]) + "\n"
        assert from_jsonl(text) == EVENTS[:3]


class TestChrome:
    def test_valid_json_with_expected_shapes(self):
        trace = to_chrome([("run0", EVENTS)])
        # Must survive a plain JSON round trip (Perfetto's input path).
        trace = json.loads(json.dumps(trace))
        records = trace["traceEvents"]
        assert records
        phases = {record["ph"] for record in records}
        assert {"M", "B", "E", "X", "s", "f", "i"} <= phases

    def test_thread_name_metadata_per_track(self):
        records = chrome_events(EVENTS)
        names = {
            record["args"]["name"]
            for record in records
            if record["ph"] == "M" and record["name"] == "thread_name"
        }
        assert names == {"P0", "P1", "cache0", "cache1", "directory"}

    def test_processor_tracks_get_lowest_tids(self):
        records = chrome_events(EVENTS)
        tid_of = {
            record["args"]["name"]: record["tid"]
            for record in records
            if record["ph"] == "M" and record["name"] == "thread_name"
        }
        assert tid_of["P0"] == 0
        assert tid_of["P1"] == 1
        assert all(tid_of[t] > 1 for t in ("cache0", "cache1", "directory"))

    def test_stall_span_records(self):
        records = chrome_events(EVENTS)
        spans = [r for r in records if r["ph"] in ("B", "E")]
        assert [r["ph"] for r in spans] == ["B", "E"]
        assert all(r["name"] == "READ_VALUE" for r in spans)
        assert spans[0]["ts"] == 2 and spans[1]["ts"] == 11

    def test_flow_records_only_for_linked_events(self):
        records = chrome_events(EVENTS)
        flows = [r for r in records if r["ph"] in ("s", "f")]
        # The linked Inval pair yields one s and one f; the un-linked
        # Ack delivery yields its anchor slice only.
        assert [r["ph"] for r in flows] == ["s", "f"]
        assert all(r["id"] == 4 for r in flows)
        anchors = [r for r in records if r["ph"] == "X"]
        assert len(anchors) == 3  # S + F + un-linked F

    def test_each_group_is_its_own_process(self):
        trace = to_chrome([("a", EVENTS[:1]), ("b", EVENTS[1:2])])
        process_names = {
            record["pid"]: record["args"]["name"]
            for record in trace["traceEvents"]
            if record["ph"] == "M" and record["name"] == "process_name"
        }
        assert process_names == {0: "a", 1: "b"}


class TestWriteTrace:
    def test_chrome_file_parses(self, tmp_path):
        path = tmp_path / "out.json"
        write_trace(str(path), [("run0", EVENTS)], fmt="chrome")
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]

    def test_jsonl_file_labels_runs(self, tmp_path):
        path = tmp_path / "out.jsonl"
        write_trace(str(path), [("r1", EVENTS[:2]), ("r2", EVENTS[2:3])],
                    fmt="jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["run"] for r in records] == ["r1", "r1", "r2"]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(str(tmp_path / "x"), [("r", EVENTS)], fmt="xml")


class TestTimeline:
    def test_empty_stream(self):
        assert format_timeline(()) == "(no events)"

    def test_lines_align_and_carry_args(self):
        text = format_timeline(EVENTS)
        lines = text.splitlines()
        assert len(lines) == len(EVENTS)
        assert "proc.issue kind=WRITE location=x" in lines[0]
        assert "[ stall.READ_VALUE" in lines[1]
        assert "] stall.READ_VALUE" in lines[4]
        assert lines[2].endswith("~4")

    def test_limit_reports_remainder(self):
        text = format_timeline(EVENTS, limit=2)
        assert text.splitlines()[-1] == "... (4 more events)"
