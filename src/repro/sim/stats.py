"""Run statistics: event counters and per-processor stall accounting.

Stall accounting is the quantitative heart of the Figure-3 reproduction:
the comparison between Definition-1 and Definition-2 hardware is exactly
"who stalls, where, and for how long".  Every wait a processor performs is
attributed to a :class:`StallReason`.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Optional, Tuple

from repro.obs import METRICS


class StallReason(enum.Enum):
    """Why a processor was unable to advance."""

    #: Waiting for a read's value (intra-processor dependency, cond. 1).
    READ_VALUE = "read_value"
    #: SC hardware: waiting for the previous access to globally perform.
    SC_PREVIOUS_GP = "sc_previous_gp"
    #: Definition 1 condition (2): a sync op may not issue until all
    #: previous data accesses are globally performed.
    DEF1_SYNC_WAITS_PREV = "def1_sync_waits_prev"
    #: Definition 1 condition (3): no access may issue until the previous
    #: sync op is globally performed.
    DEF1_WAITS_SYNC_GP = "def1_waits_sync_gp"
    #: Section 5 condition 4: waiting for a sync op to commit (procure the
    #: line in exclusive state and perform the op on it).
    DEF2_SYNC_COMMIT = "def2_sync_commit"
    #: Section 5 condition 5: a sync request found the target line
    #: reserved at its owner and was stalled or NACKed.
    DEF2_RESERVED_REMOTE = "def2_reserved_remote"
    #: A reserved line would have to be flushed; processor drains first.
    DEF2_FLUSH_RESERVED = "def2_flush_reserved"
    #: Optional bound on outstanding misses while a line is reserved.
    DEF2_MISS_BOUND = "def2_miss_bound"
    #: TSO: a load waits for earlier loads (no load-load reordering);
    #: it may still overtake pending stores in the write buffer.
    TSO_LOAD_ORDER = "tso_load_order"
    #: TSO: a store waits for earlier accesses that must stay ahead of
    #: it (earlier loads; on cached machines also earlier stores, which
    #: the FIFO write buffer serializes by construction).
    TSO_STORE_ORDER = "tso_store_order"
    #: TSO/PSO: an atomic (sync) op acts as a full fence — it waits for
    #: everything pending, and everything waits for it.
    TSO_ATOMIC_FENCE = "tso_atomic_fence"
    #: Waiting for a same-location access to finish (one outstanding
    #: transaction per processor per location).
    SAME_LOCATION = "same_location"
    #: Write buffer full (no-cache configurations).
    WRITE_BUFFER_FULL = "write_buffer_full"
    #: An explicit Fence instruction draining outstanding accesses
    #: (the RP3 fence option of Section 2.1).
    FENCE_DRAIN = "fence_drain"
    #: A Shasha-Snir delay pair: the later access waits for the earlier
    #: one to globally perform ([ShS88], Section 2.1).
    DELAY_PAIR = "delay_pair"
    #: Processor drain before a context switch / migration.
    MIGRATION_DRAIN = "migration_drain"
    #: A pipelined core's issue window is full (every slot holds an
    #: access that has not yet globally performed).
    CORE_WINDOW_FULL = "core_window_full"


class Stats:
    """Counters, totals, and stall attribution for one hardware run."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self._stalls: Dict[Tuple[int, StallReason], int] = defaultdict(int)
        self._stall_starts: Dict[Tuple[int, StallReason], int] = {}
        self.total_cycles: int = 0
        #: Optional :class:`~repro.trace.tracer.Tracer` mirroring stall
        #: windows as ``stall`` B/E trace events (set by ``System`` when
        #: a run is traced; None costs one load + branch per call).
        self.tracer = None

    # -- counters ----------------------------------------------------------
    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] += amount

    def count(self, counter: str) -> int:
        return self.counters.get(counter, 0)

    # -- stalls --------------------------------------------------------------
    def stall_begin(self, proc: int, reason: StallReason, now: int) -> None:
        """Mark the start of a stall (idempotent while already stalled)."""
        key = (proc, reason)
        if key not in self._stall_starts:
            self._stall_starts[key] = now
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.begin("stall", reason.value, track=f"P{proc}")

    def stall_end(self, proc: int, reason: StallReason, now: int) -> None:
        """Close an open stall window and accumulate its cycles."""
        key = (proc, reason)
        start = self._stall_starts.pop(key, None)
        if start is not None:
            self._stalls[key] += now - start
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.end("stall", reason.value, track=f"P{proc}")
            if METRICS.enabled:
                self._publish_stall(reason, now - start)

    def end_all_stalls(self, now: int) -> None:
        """Close any windows still open at the end of the run."""
        for (proc, reason), start in list(self._stall_starts.items()):
            self._stalls[(proc, reason)] += now - start
            del self._stall_starts[(proc, reason)]
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.end(
                    "stall",
                    reason.value,
                    track=f"P{proc}",
                    args=(("open_at_end", 1),),
                )
            if METRICS.enabled:
                self._publish_stall(reason, now - start)

    @staticmethod
    def _publish_stall(reason: StallReason, cycles: int) -> None:
        METRICS.inc(
            "repro_cpu_stall_windows_total",
            help="Closed stall windows by reason",
            reason=reason.value,
        )
        METRICS.inc(
            "repro_cpu_stall_cycles_total",
            cycles,
            help="Cycles spent stalled, by reason",
            reason=reason.value,
        )

    def stall_cycles(
        self, proc: Optional[int] = None, reason: Optional[StallReason] = None
    ) -> int:
        """Total stall cycles, optionally filtered by processor and reason."""
        total = 0
        for (p, r), cycles in self._stalls.items():
            if proc is not None and p != proc:
                continue
            if reason is not None and r != reason:
                continue
            total += cycles
        return total

    def stall_breakdown(self) -> Dict[Tuple[int, StallReason], int]:
        return dict(self._stalls)

    def describe(self) -> str:
        lines = [f"cycles: {self.total_cycles}"]
        for name in sorted(self.counters):
            lines.append(f"  {name}: {self.counters[name]}")
        for (proc, reason), cycles in sorted(
            self._stalls.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            lines.append(f"  P{proc} stall[{reason.value}]: {cycles}")
        return "\n".join(lines)
