"""Unit tests for ticket locks and sense-reversing barriers."""

import pytest

from repro.drf.drf0 import obeys_drf0
from repro.memsys.config import NET_CACHE
from repro.memsys.system import run_program
from repro.models.policies import Def1Policy, Def2Policy, Def2RPolicy, SCPolicy
from repro.sc.interleaving import enumerate_results
from repro.sc.verifier import SCVerifier
from repro.workloads.ticket_lock import (
    sense_barrier_program,
    ticket_lock_program,
)


class TestTicketLock:
    def test_obeys_drf0(self):
        assert obeys_drf0(ticket_lock_program(2, 1))

    def test_sc_mutual_exclusion(self):
        program = ticket_lock_program(2, 1)
        for observable in enumerate_results(program):
            assert observable.memory_value("count") == 2

    def test_fifo_ordering_of_tickets(self):
        """Tickets hand the lock over in FetchAndAdd order: the final
        'serving' equals the total number of acquisitions."""
        program = ticket_lock_program(2, 2)
        for observable in enumerate_results(program):
            assert observable.memory_value("serving") == 4

    @pytest.mark.parametrize(
        "policy_cls", [SCPolicy, Def1Policy, Def2Policy, Def2RPolicy],
        ids=lambda p: p.name,
    )
    def test_hardware_count_correct(self, policy_cls):
        program = ticket_lock_program(3, 2)
        for seed in range(4):
            run = run_program(program, policy_cls(), NET_CACHE, seed=seed)
            assert run.completed, (policy_cls.name, seed)
            assert run.observable.memory_value("count") == 6

    def test_appears_sc_on_def2(self):
        program = ticket_lock_program(2, 1)
        verifier = SCVerifier()
        sc_set = verifier.sc_result_set(program)
        for seed in range(8):
            run = run_program(program, Def2Policy(), NET_CACHE, seed=seed)
            assert run.completed
            assert run.observable in sc_set


class TestSenseBarrier:
    def test_obeys_drf0(self):
        assert obeys_drf0(sense_barrier_program(2, episodes=1))

    def test_sc_single_episode(self):
        program = sense_barrier_program(2, episodes=1)
        for observable in enumerate_results(program):
            assert observable.memory_value("bsense") == 1
            assert observable.memory_value("bcount") == 2  # reset for reuse

    @pytest.mark.parametrize(
        "policy_cls", [SCPolicy, Def2Policy, Def2RPolicy], ids=lambda p: p.name
    )
    def test_hardware_two_episodes(self, policy_cls):
        program = sense_barrier_program(3, episodes=2)
        for seed in range(4):
            run = run_program(program, policy_cls(), NET_CACHE, seed=seed)
            assert run.completed, (policy_cls.name, seed)
            assert run.observable.memory_value("bsense") == 2

    def test_appears_sc_on_def2(self):
        program = sense_barrier_program(2, episodes=1)
        verifier = SCVerifier()
        sc_set = verifier.sc_result_set(program)
        for seed in range(8):
            run = run_program(program, Def2Policy(), NET_CACHE, seed=seed)
            assert run.completed
            assert run.observable in sc_set

    def test_initial_memory(self):
        program = sense_barrier_program(4)
        assert program.initial_memory == {"bcount": 4, "bsense": 0}
