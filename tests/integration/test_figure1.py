"""FIG1 integration: the violation matrix of Figure 1.

The paper's figure argues the Dekker-core litmus can violate sequential
consistency on all four machine organizations when the hardware relaxes
ordering, and Section 2.1's sufficient condition (our SC policy)
prevents it everywhere.  The cache configurations need warm caches
("both processors initially have X and Y in their caches").
"""

import pytest

from repro.litmus.catalog import fig1_dekker
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import (
    BUS_CACHE,
    BUS_NOCACHE,
    FIGURE1_CONFIGS,
    NET_CACHE,
    NET_NOCACHE,
)
from repro.models.policies import RelaxedPolicy, SCPolicy

RUNS = 80

#: (config, warm caches?) pairs on which RELAXED must show the violation.
VIOLATION_SETTINGS = [
    (BUS_NOCACHE, False),
    (NET_NOCACHE, False),
    (BUS_CACHE, True),
    (NET_CACHE, True),
]


@pytest.fixture(scope="module")
def runner():
    return LitmusRunner()


class TestRelaxedHardwareViolates:
    @pytest.mark.parametrize(
        "config,warm", VIOLATION_SETTINGS, ids=lambda v: getattr(v, "name", v)
    )
    def test_forbidden_outcome_observed(self, runner, config, warm):
        result = runner.run(
            fig1_dekker(warm=warm), RelaxedPolicy, config, runs=RUNS
        )
        assert result.completed_runs == RUNS
        assert result.forbidden_seen > 0, (
            f"(0,0) never observed on {config.name} (warm={warm})"
        )
        assert result.violated_sc


class TestSCHardwareNeverViolates:
    @pytest.mark.parametrize(
        "config", FIGURE1_CONFIGS, ids=lambda c: c.name
    )
    @pytest.mark.parametrize("warm", [False, True])
    def test_always_sc(self, runner, config, warm):
        result = runner.run(fig1_dekker(warm=warm), SCPolicy, config, runs=RUNS)
        assert result.completed_runs == RUNS
        assert not result.violated_sc
        assert result.forbidden_seen == 0


class TestEnumeratorAgrees:
    def test_0_0_is_outside_the_sc_set(self, runner):
        assert (0, 0) not in runner.sc_outcomes(fig1_dekker())
        assert (0, 0) not in runner.sc_outcomes(fig1_dekker(warm=True))
