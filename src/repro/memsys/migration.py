"""Process migration (Section 5.1's footnote / footnote 3).

The paper: "Re-scheduling of a process on another processor is possible
if it can be ensured that before a context switch, all previous reads of
the process have returned their values and all previous writes have been
globally performed" — and, for the Section 5.3 implementation, "a
processor is also required to stall on a context switch until its
counter reads zero."

:class:`MigrationController` implements exactly that: at a requested
cycle the source processor stops issuing; once the drain condition holds
(no pending accesses, and the source cache's outstanding-access counter
at zero so no reserve bit is left protecting in-flight work), the thread
context — registers, program counter, dynamic occurrence counts, issue
numbering — transfers to an idle target processor, which resumes the
thread against its own cache.

Operations keep the *logical* processor id (the thread's index) in the
trace, so program order, witness matching and observables are unaffected
by where the thread physically ran — only the timing and the cache
contents change, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.memsys.system import System
from repro.sim.stats import StallReason


@dataclass
class MigrationRecord:
    """One completed migration."""

    thread_id: int
    from_proc: int
    to_proc: int
    requested_at: int
    drained_at: int

    @property
    def drain_cycles(self) -> int:
        return self.drained_at - self.requested_at


class MigrationError(RuntimeError):
    """The migration request is not executable."""


class MigrationController:
    """Schedules drained context switches on a built :class:`System`.

    The target processor must be idle — built from an empty thread (use
    :func:`add_idle_processor_thread` when constructing the program) or
    already migrated away from.
    """

    def __init__(self, system: System) -> None:
        self.system = system
        self.records: List[MigrationRecord] = []

    def schedule(self, thread_id: int, to_proc: int, at_cycle: int) -> None:
        """Migrate ``thread_id``'s context to ``to_proc`` at ``at_cycle``."""
        system = self.system
        if not (0 <= thread_id < len(system.processors)):
            raise MigrationError(f"no processor {thread_id}")
        if not (0 <= to_proc < len(system.processors)):
            raise MigrationError(f"no processor {to_proc}")
        if to_proc == thread_id:
            raise MigrationError("source and target coincide")

        def begin() -> None:
            self._begin(thread_id, to_proc, at_cycle)

        system.sim.schedule(at_cycle, begin)

    # ------------------------------------------------------------------
    def _begin(self, thread_id: int, to_proc: int, requested_at: int) -> None:
        system = self.system
        source = system.processors[thread_id]
        if source.halted:
            return  # nothing left to migrate
        source.begin_migration()
        system.stats.stall_begin(
            source.logical_proc, StallReason.MIGRATION_DRAIN, system.sim.now
        )

        def poll() -> None:
            if not self._drained(thread_id):
                system.sim.schedule(1, poll)
                return
            system.stats.stall_end(
                source.logical_proc, StallReason.MIGRATION_DRAIN, system.sim.now
            )
            self._transfer(thread_id, to_proc, requested_at)

        system.sim.call_soon(poll)

    def _drained(self, proc_id: int) -> bool:
        system = self.system
        processor = system.processors[proc_id]
        if processor.pending_accesses:
            return False
        if system.caches:
            cache = system.caches[proc_id]
            counter = getattr(cache, "counter", None)
            if counter is not None and not counter.zero:
                return False
            if cache.any_reserved():
                return False
        return True

    def _transfer(self, from_proc: int, to_proc: int, requested_at: int) -> None:
        system = self.system
        source = system.processors[from_proc]
        target = system.processors[to_proc]
        if not target.idle_for_adoption:
            raise MigrationError(
                f"target processor {to_proc} is not idle (it has its own thread)"
            )
        context = source.export_context()
        previous_identity = target.adopt_context(context)
        source.become_idle(previous_identity)
        self.records.append(
            MigrationRecord(
                thread_id=source.logical_proc,
                from_proc=from_proc,
                to_proc=to_proc,
                requested_at=requested_at,
                drained_at=system.sim.now,
            )
        )
        target.wake()
