"""The conformance grid: which hardware keeps which promise.

Definition 2 turns memory-model correctness into a checkable contract,
so a whole machine zoo can be audited mechanically.  For every (machine
configuration, ordering policy) pair, :func:`run_conformance` runs the
litmus catalog and classifies the pair:

* ``SC``             — no SC violation observed on *any* program;
* ``WEAKLY-ORDERED`` — violations only on programs that violate the
  policy's *own* synchronization model (the hardware kept Definition 2's
  promise);
* ``BROKEN``         — a model-conformant program produced a non-SC
  outcome: the hardware breaks the weak-ordering contract.

Each policy is judged against the model it contracts for (Definition 2
is parametric): DEF2-R promises SC only to DRF0-R software, so its
permitted violations include programs that are DRF0 but not DRF0-R —
the all-synchronization Dekker on the invalidation-virtual-channel
network is exactly such a case, and judging DEF2-R against plain DRF0
would misreport it as broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign import (
    Executor,
    PolicySpec,
    ResultCache,
    RunSpec,
)
from repro.faults import FaultPlan
from repro.litmus.catalog import standard_catalog
from repro.litmus.runner import LitmusRunner
from repro.litmus.test import LitmusTest
from repro.memsys.config import (
    BUS_CACHE,
    BUS_CACHE_SNOOP,
    BUS_NOCACHE,
    MachineConfig,
    NET_CACHE,
    NET_CACHE_VC,
    NET_NOCACHE,
)
from repro.memsys.system import ConfigurationError, ensure_compatible
from repro.models.base import OrderingPolicy
from repro.trace.events import TraceEvent
from repro.trace.summary import TraceSummary
from repro.trace.tracer import TraceSpec
from repro.models.policies import (
    Def1Policy,
    Def2Policy,
    Def2RPolicy,
    PSOPolicy,
    RelaxedPolicy,
    SCPolicy,
    TSOPolicy,
)

#: Conformance verdicts, strongest first.
VERDICT_SC = "SC"
VERDICT_WEAK = "WEAKLY-ORDERED"
VERDICT_BROKEN = "BROKEN"
VERDICT_NA = "n/a"


@dataclass
class CellResult:
    """One (machine, policy) audit."""

    config_name: str
    policy_name: str
    verdict: str
    #: test name -> True if some outcome violated SC.
    violations: Dict[str, bool] = field(default_factory=dict)
    #: tests that failed to complete (livelock/timeout), if any.
    incomplete: List[str] = field(default_factory=list)

    @property
    def violated_tests(self) -> List[str]:
        return sorted(name for name, bad in self.violations.items() if bad)


@dataclass
class ConformanceReport:
    """The full grid."""

    cells: List[CellResult]
    runs_per_test: int
    #: ``(label, events)`` per traced run, labelled
    #: ``config/policy/test/runN`` — present only when the grid ran with
    #: a :class:`~repro.trace.tracer.TraceSpec`.
    run_traces: List[Tuple[str, Tuple[TraceEvent, ...]]] = field(
        default_factory=list
    )
    #: Merged trace telemetry across the whole grid.
    trace_summary: Optional[TraceSummary] = None
    #: The grid campaign stopped early on SIGTERM/SIGINT; verdicts may
    #: rest on partial cells — resume from the journal to finish.
    preempted: bool = False

    def cell(self, config_name: str, policy_name: str) -> Optional[CellResult]:
        for cell in self.cells:
            if cell.config_name == config_name and cell.policy_name == policy_name:
                return cell
        return None

    def to_rows(self) -> List[List[str]]:
        configs = sorted({c.config_name for c in self.cells})
        policies = []
        for cell in self.cells:
            if cell.policy_name not in policies:
                policies.append(cell.policy_name)
        rows = []
        for policy in policies:
            row = [policy]
            for config in configs:
                cell = self.cell(config, policy)
                row.append(cell.verdict if cell else VERDICT_NA)
            rows.append(row)
        return rows

    def headers(self) -> List[str]:
        return ["policy"] + sorted({c.config_name for c in self.cells})

    def describe(self) -> str:
        from repro.analysis.report import format_table

        return format_table(self.headers(), self.to_rows())


DEFAULT_CONFIGS: Tuple[MachineConfig, ...] = (
    BUS_NOCACHE,
    NET_NOCACHE,
    BUS_CACHE,
    NET_CACHE,
    NET_CACHE_VC,
    BUS_CACHE_SNOOP,
)

DEFAULT_POLICIES: Tuple[Callable[[], OrderingPolicy], ...] = (
    RelaxedPolicy,
    SCPolicy,
    Def1Policy,
    Def2Policy,
    Def2RPolicy,
    # TSO/PSO ride at the end: grid rows keep their historical order.
    TSOPolicy,
    PSOPolicy,
)


def _conforms(test: LitmusTest, model, cache: Dict[tuple, bool]) -> bool:
    """Does the program obey the policy's synchronization model?"""
    from repro.drf.drf0 import check_program

    key = (model.name, test.name)
    if key not in cache:
        cache[key] = check_program(
            test.program, model, max_executions=5_000
        ).obeys
    return cache[key]


@dataclass
class ConformancePlan:
    """The flat campaign a conformance grid runs, plus its layout.

    Splitting planning from judging lets a consumer know the complete
    :class:`RunSpec` list — and therefore the campaign's content digest
    — *before* running anything: the service tier dedups and journals
    conformance jobs by exactly this layout, so a planned-then-run grid
    and :func:`run_conformance` produce byte-identical campaigns.
    """

    specs: List[RunSpec]
    cell_plans: List[dict]
    runs_per_test: int
    runner: LitmusRunner


def plan_conformance(
    configs: Sequence[MachineConfig] = DEFAULT_CONFIGS,
    policies: Sequence[Callable[[], OrderingPolicy]] = DEFAULT_POLICIES,
    tests: Optional[Sequence[LitmusTest]] = None,
    runs_per_test: int = 30,
    base_seed: int = 2024,
    runner: Optional[LitmusRunner] = None,
    faults: Optional[FaultPlan] = None,
    trace: Optional[TraceSpec] = None,
    sanitize: Optional[str] = None,
) -> ConformancePlan:
    """Lay out the grid's flat campaign without executing it.

    Per compatible (machine, policy) cell, per test, one contiguous
    block of seed specs; each block's slice is remembered so
    :func:`judge_conformance` can classify cells from the flat result
    list.
    """
    runner = runner or LitmusRunner()
    tests = list(tests) if tests is not None else standard_catalog()
    specs: List[RunSpec] = []
    cell_plans: List[dict] = []
    for config in configs:
        for policy_factory in policies:
            policy_spec = PolicySpec.of(policy_factory)
            try:
                ensure_compatible(policy_spec.build(), config, policy_spec.core)
            except ConfigurationError:
                cell_plans.append(
                    {"config": config, "policy": policy_spec, "blocks": None}
                )
                continue
            blocks = []
            for test in tests:
                test_specs = runner.campaign_specs(
                    test, policy_spec, config, runs_per_test, base_seed,
                    faults=faults, trace=trace, sanitize=sanitize,
                )
                blocks.append((test, len(specs), len(test_specs)))
                specs.extend(test_specs)
            cell_plans.append(
                {"config": config, "policy": policy_spec, "blocks": blocks}
            )
    return ConformancePlan(
        specs=specs,
        cell_plans=cell_plans,
        runs_per_test=runs_per_test,
        runner=runner,
    )


def judge_conformance(plan: ConformancePlan, campaign) -> ConformanceReport:
    """Classify every planned cell from its slice of the campaign."""
    conformance_cache: Dict[tuple, bool] = {}
    cells: List[CellResult] = []
    run_traces: List[Tuple[str, Tuple[TraceEvent, ...]]] = []
    for cell_plan in plan.cell_plans:
        config, policy_spec = cell_plan["config"], cell_plan["policy"]
        if cell_plan["blocks"] is None:
            cells.append(
                CellResult(
                    config_name=config.name,
                    policy_name=policy_spec.name,
                    verdict=VERDICT_NA,
                )
            )
            continue
        for test, start, count in cell_plan["blocks"]:
            for i, result in enumerate(campaign.results[start : start + count]):
                if result.trace_events is not None:
                    run_traces.append(
                        (
                            f"{config.name}/{policy_spec.name}/"
                            f"{test.name}/run{i}",
                            result.trace_events,
                        )
                    )
        cells.append(
            _judge_cell(
                plan.runner, config, policy_spec, cell_plan["blocks"],
                campaign.results, conformance_cache,
            )
        )
    return ConformanceReport(
        cells=cells,
        runs_per_test=plan.runs_per_test,
        run_traces=run_traces,
        trace_summary=(
            campaign.metrics.trace_summary if campaign.metrics else None
        ),
        preempted=campaign.preempted,
    )


def run_conformance(
    configs: Sequence[MachineConfig] = DEFAULT_CONFIGS,
    policies: Sequence[Callable[[], OrderingPolicy]] = DEFAULT_POLICIES,
    tests: Optional[Sequence[LitmusTest]] = None,
    runs_per_test: int = 30,
    base_seed: int = 2024,
    runner: Optional[LitmusRunner] = None,
    executor: Optional[Executor] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    faults: Optional[FaultPlan] = None,
    trace: Optional[TraceSpec] = None,
    sanitize: Optional[str] = None,
    journal=None,
    progress=None,
) -> ConformanceReport:
    """Audit every (machine, policy) pair against the litmus battery.

    The whole grid is a single campaign: every run of every cell goes
    into one flat :class:`RunSpec` list, so with ``jobs > 1`` (or a
    parallel ``executor``) the grid parallelises across cells, tests,
    and seeds at once — not merely within one cell.

    ``faults`` runs the entire grid under an injected
    :class:`~repro.faults.FaultPlan`: Definition 2 quantifies over all
    legal message timings, so a conforming cell must keep its verdict
    under adversarial jitter and reordering, while racy programs remain
    free to surface *more* violations.

    ``trace`` records every run in the grid; the report carries the
    labelled per-run traces and a merged summary.

    ``sanitize`` runs every cell under the protocol sanitizer
    (``"log"`` or ``"strict"``) — the conformance grid doubling as a
    protocol-invariant audit.

    ``journal`` (a :class:`~repro.campaign.journal.CampaignJournal` or
    a path) journals the whole grid durably; re-running a killed or
    preempted audit against the same journal resumes it.

    ``progress`` (``True`` or a :class:`~repro.obs.ProgressReporter`)
    prints a live heartbeat while the grid executes.
    """
    plan = plan_conformance(
        configs=configs, policies=policies, tests=tests,
        runs_per_test=runs_per_test, base_seed=base_seed, runner=runner,
        faults=faults, trace=trace, sanitize=sanitize,
    )

    from repro.api import campaign as run_campaign

    campaign = run_campaign(
        plan.specs, executor=executor, jobs=jobs, cache=cache,
        label="conformance", journal=journal, progress=progress,
    )
    return judge_conformance(plan, campaign)


def _judge_cell(
    runner: LitmusRunner,
    config: MachineConfig,
    policy_spec: PolicySpec,
    blocks: Sequence[Tuple[LitmusTest, int, int]],
    results: Sequence,
    conformance_cache: Dict[tuple, bool],
) -> CellResult:
    """Classify one (machine, policy) cell from its slice of the campaign."""
    violations: Dict[str, bool] = {}
    incomplete: List[str] = []
    broke_contract = False
    any_violation = False
    model = policy_spec.build().synchronization_model()
    for test, start, count in blocks:
        result = runner.collect(
            test, policy_spec.name, config.name, results[start : start + count]
        )
        if result.completed_runs < result.runs:
            incomplete.append(test.name)
        violated = result.violated_sc
        violations[test.name] = violated
        if violated:
            any_violation = True
            if _conforms(test, model, conformance_cache):
                broke_contract = True
    if broke_contract:
        verdict = VERDICT_BROKEN
    elif any_violation:
        verdict = VERDICT_WEAK
    else:
        verdict = VERDICT_SC
    return CellResult(
        config_name=config.name,
        policy_name=policy_spec.name,
        verdict=verdict,
        violations=violations,
        incomplete=incomplete,
    )
