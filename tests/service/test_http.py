"""The HTTP surface against a live in-process server.

One asyncio loop runs in a background thread; the engine underneath is
the real one.  Failure-timing tests monkeypatch ``build_job`` in the
engine module so the HTTP conversation happens while jobs are
genuinely in flight.
"""

import asyncio
import json
import threading
import urllib.request

import pytest

import repro.service.engine as engine_mod
from repro.service.client import (
    Rejected,
    ServiceClient,
    ServiceError,
    Unavailable,
    read_endpoint,
)
from repro.service.engine import VerificationService
from repro.service.http import ServiceServer
from repro.service.jobs import JobWork


class LiveServer:
    def __init__(self, engine):
        self.engine = engine
        self.server = ServiceServer(engine, host="127.0.0.1", port=0)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )

    def start(self):
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(10)
        return ServiceClient(host="127.0.0.1", port=self.server.port)

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(5)
        self.engine.stop(timeout=10)


@pytest.fixture
def live(tmp_path):
    engine = VerificationService(
        tmp_path / "state", workers=2, campaign_jobs=1, capacity=8
    )
    engine.start()
    server = LiveServer(engine)
    client = server.start()
    yield engine, client
    server.stop()


def blocked_builder(monkeypatch, names):
    """Fake jobs that block until the returned event is set."""
    release = threading.Event()

    def builder(kind, params=None):
        params = dict(params or {})
        name = params["name"]

        def run():
            release.wait(30)
            return {"name": name}

        return JobWork(kind="verify", params=params,
                       digest=name.ljust(64, "x"), direct=run)

    monkeypatch.setattr(engine_mod, "build_job", builder)
    return release


class TestHealth:
    def test_healthz(self, live):
        _, client = live
        assert client.healthz()["status"] == "ok"

    def test_readyz_reports_queue_and_breaker(self, live):
        _, client = live
        doc = client.readyz()
        assert doc["ready"] is True
        assert doc["queue_depth"] == 0
        assert doc["breaker"] == "closed"

    def test_endpoint_file_points_at_the_server(self, live, tmp_path):
        engine, client = live
        host, port = read_endpoint(engine.state_dir)
        assert ServiceClient(host, port).healthz()["status"] == "ok"


class TestSubmitRoundTrip:
    def test_submit_poll_result(self, live):
        _, client = live
        doc = client.submit(
            "litmus", {"test": "fig1_dekker", "runs": 3}
        )
        assert doc["verdict"] == "accepted"
        job_id = doc["job"]["id"]
        job = client.wait_done(job_id, timeout=60)
        assert job["state"] == "done"
        result = client.result(job_id)["result"]
        assert result["completed_runs"] == 3

    def test_duplicate_is_coalesced_not_rerun(self, live, monkeypatch):
        _, client = live
        release = blocked_builder(monkeypatch, ["a"])
        try:
            first = client.submit("verify", {"name": "a"})
            assert first["verdict"] == "accepted"
            second = client.submit("verify", {"name": "a"})
            assert second["verdict"] == "duplicate"
            assert second["coalesced"] is True
            assert second["job"]["id"] == first["job"]["id"]
        finally:
            release.set()
        client.wait_done(first["job"]["id"], timeout=30)
        # A repeat after completion returns the result inline.
        third = client.submit("verify", {"name": "a"})
        assert third["verdict"] == "completed"
        assert third["result"] == {"name": "a"}

    def test_malformed_submission_is_400(self, live):
        _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.submit("litmus", {"test": "no_such_test"})
        assert excinfo.value.status == 400
        assert "no_such_test" in str(excinfo.value)

    def test_unknown_kind_is_400(self, live):
        _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.submit("frobnicate", {})
        assert excinfo.value.status == 400


class TestJobRoutes:
    def test_unknown_job_is_404(self, live):
        _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.status("deadbeef")
        assert excinfo.value.status == 404

    def test_result_is_409_until_terminal(self, live, monkeypatch):
        _, client = live
        release = blocked_builder(monkeypatch, ["a"])
        try:
            job_id = client.submit("verify", {"name": "a"})["job"]["id"]
            with pytest.raises(ServiceError) as excinfo:
                client.result(job_id)
            assert excinfo.value.status == 409
        finally:
            release.set()
        client.wait_done(job_id, timeout=30)
        assert client.result(job_id)["result"] == {"name": "a"}

    def test_list_jobs(self, live):
        _, client = live
        job_id = client.submit(
            "litmus", {"test": "fig1_dekker", "runs": 2}
        )["job"]["id"]
        client.wait_done(job_id, timeout=60)
        assert job_id in {job["id"] for job in client.jobs()}

    def test_stream_emits_ndjson_until_terminal(self, live):
        _, client = live
        job_id = client.submit(
            "litmus", {"test": "fig1_dekker", "runs": 2}
        )["job"]["id"]
        with urllib.request.urlopen(
            f"{client.base}/v1/jobs/{job_id}/stream", timeout=60
        ) as response:
            lines = [json.loads(line) for line in response]
        assert lines[-1]["state"] in ("done", "failed")
        assert all(snap["id"] == job_id for snap in lines)


class TestBackpressureHTTP:
    def test_saturation_sheds_with_429_and_bounded_memory(
        self, tmp_path, monkeypatch
    ):
        """The saturation drill: 2x capacity, bounded state, 429s."""
        capacity = 4
        engine = VerificationService(
            tmp_path / "state", workers=1, campaign_jobs=1,
            capacity=capacity,
        )
        engine.start()
        server = LiveServer(engine)
        client = server.start()
        release = blocked_builder(monkeypatch, [])
        try:
            accepted, shed = [], []
            for i in range(2 * capacity):
                try:
                    doc = client.submit("verify", {"name": f"{i}"})
                    accepted.append(doc["job"]["id"])
                except Rejected as exc:
                    shed.append(exc)
            assert len(accepted) == capacity
            assert len(shed) == capacity
            # Every shed carried a positive Retry-After.
            assert all(exc.retry_after >= 1.0 for exc in shed)
            # Shed submissions left no server state behind.
            assert len(engine.list_jobs()) == capacity
            release.set()
            for job_id in accepted:
                job = client.wait_done(job_id, timeout=30)
                assert job["state"] == "done"
        finally:
            release.set()
            server.stop()

    def test_breaker_open_responses_flagged_degraded_and_correct(
        self, tmp_path
    ):
        """Degraded mode is visible to clients and still right."""
        params = {"test": "fig1_dekker", "runs": 3, "policy": "SC"}
        baseline = VerificationService(
            tmp_path / "base", workers=1, campaign_jobs=1
        )
        baseline.start()
        ref, _, _ = baseline.submit("litmus", params)
        ref_result = baseline.wait(ref.id, timeout=120).result
        baseline.stop(timeout=10)

        engine = VerificationService(
            tmp_path / "state", workers=1, campaign_jobs=2,
            breaker_threshold=1, breaker_reset=3600.0,
        )
        engine.breaker.record_failure()  # wedge the breaker open
        engine.start()
        server = LiveServer(engine)
        client = server.start()
        try:
            job_id = client.submit("litmus", params)["job"]["id"]
            job = client.wait_done(job_id, timeout=120)
            assert job["state"] == "done"
            assert job["degraded"] is True
            assert client.result(job_id)["result"] == ref_result
            assert client.readyz()["breaker"] == "open"
        finally:
            server.stop()


class TestDrainHTTP:
    def test_drain_flips_readyz_and_sheds_submissions(
        self, tmp_path
    ):
        engine = VerificationService(
            tmp_path / "state", workers=1, campaign_jobs=1
        )
        engine.start()
        server = LiveServer(engine)
        client = server.start()
        try:
            assert client.drain()["draining"] is True
            doc = client.readyz()
        except Unavailable:
            doc = {"ready": False}
        try:
            with pytest.raises(Unavailable):
                client.submit("litmus",
                              {"test": "fig1_dekker", "runs": 2})
        finally:
            server.stop()


class TestMetricsEndpoint:
    def test_prometheus_exposition_includes_service_counters(
        self, tmp_path
    ):
        from repro.obs import METRICS, disable_metrics

        was = METRICS.enabled
        METRICS.reset()
        METRICS.enable()
        engine = VerificationService(
            tmp_path / "state", workers=1, campaign_jobs=1
        )
        engine.start()
        server = LiveServer(engine)
        client = server.start()
        try:
            job_id = client.submit(
                "litmus", {"test": "fig1_dekker", "runs": 2}
            )["job"]["id"]
            client.wait_done(job_id, timeout=60)
            text = client.metrics_text()
            assert "repro_service_jobs_submitted_total" in text
            assert "repro_service_jobs_completed_total" in text
            assert "repro_service_queue_depth" in text
        finally:
            server.stop()
            METRICS.reset()
            disable_metrics()
            METRICS.enabled = was
