"""Campaign triage: dedup by signature, bundles on disk, metrics."""

from dataclasses import replace

from repro.campaign import RunFailure, RunResult, run_campaign
from repro.sanitizer import ReproBundle, TriageConfig, triage_failures

from tests.sanitizer.conftest import spin_deadlock_spec


def _failing_result(kind="sim-timeout", message="watchdog tripped"):
    return RunResult(
        completed=False,
        observable=None,
        cycles=1000,
        failure=RunFailure(kind=kind, message=message),
    )


class TestTriageFailures:
    def test_dedups_by_signature_one_bundle_per_way_of_failing(
        self, tmp_path
    ):
        specs = [spin_deadlock_spec(), spin_deadlock_spec(seed=1)]
        results = [_failing_result(), _failing_result()]
        report = triage_failures(
            specs, results, TriageConfig(tmp_path, shrink=False), label="t"
        )
        assert report.failures_seen == 2
        assert report.bundles_written == 1
        signature, path = report.bundles[0]
        assert signature == "sim-timeout"
        assert (tmp_path / "t-sim-timeout.json").exists()
        bundle = ReproBundle.from_json((tmp_path / "t-sim-timeout.json").read_text())
        # First failing spec wins as the representative.
        assert bundle.spec.seed == specs[0].seed

    def test_nondeterministic_kinds_are_skipped(self, tmp_path):
        specs = [spin_deadlock_spec(), spin_deadlock_spec(seed=1)]
        results = [
            _failing_result(kind="wall-timeout", message="5s budget"),
            _failing_result(kind="worker-lost", message="pool died"),
        ]
        report = triage_failures(
            specs, results, TriageConfig(tmp_path, shrink=False)
        )
        assert report.failures_seen == 2
        assert report.skipped_nondeterministic == 2
        assert report.bundles_written == 0
        assert not any(tmp_path.iterdir())

    def test_bundle_cap_drops_excess_signatures(self, tmp_path):
        specs = [spin_deadlock_spec(seed=i) for i in range(3)]
        results = [
            _failing_result(message=f"[rule-{i}] violated") for i in range(3)
        ]
        for i, result in enumerate(results):
            results[i] = replace(
                result,
                failure=RunFailure(
                    kind="sanitizer", message=f"[rule-{i}] violated"
                ),
            )
        report = triage_failures(
            specs,
            results,
            TriageConfig(tmp_path, shrink=False, max_bundles=2),
        )
        assert report.bundles_written == 2
        assert report.dropped_over_cap == 1
        assert "dropped 1 signature(s)" in report.describe()

    def test_successful_runs_produce_no_report_lines(self, tmp_path):
        ok = RunResult(completed=True, observable=None, cycles=10)
        report = triage_failures(
            [spin_deadlock_spec()], [ok], TriageConfig(tmp_path)
        )
        assert report.failures_seen == 0
        assert report.describe() == "triage: no failures"


class TestCampaignIntegration:
    def test_campaign_triage_end_to_end(self, tmp_path):
        """run_campaign(triage=...) shrinks, writes, counts, replays."""
        specs = [
            spin_deadlock_spec(max_cycles=30_000),
            spin_deadlock_spec(max_cycles=30_000, seed=1),
        ]
        campaign = run_campaign(
            specs,
            label="triage smoke",
            triage=TriageConfig(tmp_path, max_shrink_runs=100),
        )
        assert campaign.metrics.failed_runs == 2
        assert campaign.metrics.triaged_failures == 2
        assert campaign.metrics.bundles_written == 1
        assert "[triaged 2 -> 1 bundle(s)]" in campaign.metrics.describe()
        assert campaign.triage is not None

        (signature, path), = campaign.triage.bundles
        bundle = ReproBundle.from_json(open(path).read())
        assert bundle.signature == signature == "sim-timeout"
        # Shrinking happened and the bundle still reproduces.
        assert bundle.minimized_instructions < bundle.original_instructions
        _, replayed_signature, ok = bundle.replay()
        assert ok and replayed_signature == "sim-timeout"

    def test_campaign_without_triage_is_unchanged(self):
        campaign = run_campaign([spin_deadlock_spec(max_cycles=30_000)])
        assert campaign.triage is None
        assert campaign.metrics.triaged_failures == 0
        assert "[triaged" not in campaign.metrics.describe()
