"""Registry correctness: types, labels, snapshots, diff/merge algebra."""

import pickle

import pytest

from repro.obs import (
    MetricsRegistry,
    Snapshot,
    exponential_buckets,
)


class TestCountersAndGauges:
    def test_counter_accumulates(self, metrics):
        metrics.inc("t_total")
        metrics.inc("t_total", 4)
        assert metrics.value("t_total") == 5

    def test_labels_are_independent_children(self, metrics):
        metrics.inc("t_total", kind="a")
        metrics.inc("t_total", 2, kind="b")
        assert metrics.value("t_total", kind="a") == 1
        assert metrics.value("t_total", kind="b") == 2
        assert metrics.value("t_total") is None

    def test_label_order_is_canonical(self, metrics):
        metrics.inc("t_total", b="2", a="1")
        metrics.inc("t_total", a="1", b="2")
        assert metrics.value("t_total", a="1", b="2") == 2

    def test_gauge_last_write_wins(self, metrics):
        metrics.set_gauge("g", 10)
        metrics.set_gauge("g", 3)
        assert metrics.value("g") == 3

    def test_type_conflict_raises(self, metrics):
        metrics.inc("t_total")
        with pytest.raises(TypeError, match="is a counter"):
            metrics.set_gauge("t_total", 1)

    def test_disabled_registry_still_counts_when_called(self):
        # The `enabled` flag is a contract for *call sites*, not a gate
        # inside the registry: sites guard themselves, so the registry
        # itself never has to branch.
        registry = MetricsRegistry(enabled=False)
        registry.inc("t_total")
        assert registry.value("t_total") == 1


class TestHistograms:
    def test_observations_land_in_buckets(self, metrics):
        metrics.observe("h", 0.5, buckets=(1, 2, 4))
        metrics.observe("h", 3.0, buckets=(1, 2, 4))
        metrics.observe("h", 99.0, buckets=(1, 2, 4))
        sample = metrics.value("h")
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(102.5)
        assert sample["buckets"] == {"1": 1, "2": 0, "4": 1, "+Inf": 1}

    def test_exponential_buckets(self):
        assert exponential_buckets(1, 2, 4) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            exponential_buckets(0, 2, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1, 1, 4)


class TestSnapshotAlgebra:
    def test_snapshot_is_a_deep_copy(self, metrics):
        metrics.inc("t_total")
        snap = metrics.snapshot()
        metrics.inc("t_total")
        assert snap.value("t_total") == 1
        assert metrics.value("t_total") == 2

    def test_snapshot_pickles(self, metrics):
        metrics.inc("t_total", 3)
        metrics.observe("h", 0.5)
        clone = pickle.loads(pickle.dumps(metrics.snapshot()))
        assert clone == metrics.snapshot()

    def test_diff_subtracts_counters_and_drops_unchanged(self, metrics):
        metrics.inc("a_total", 5)
        metrics.inc("b_total", 1)
        before = metrics.snapshot()
        metrics.inc("a_total", 2)
        delta = metrics.snapshot().diff(before)
        assert delta.value("a_total") == 2
        assert "b_total" not in delta.data

    def test_diff_keeps_counter_values_integral(self, metrics):
        metrics.inc("a_total", 5)
        delta = metrics.snapshot().diff(Snapshot())
        assert isinstance(delta.value("a_total"), int)

    def test_diff_gauge_keeps_latest_reading(self, metrics):
        metrics.set_gauge("g", 10)
        before = metrics.snapshot()
        metrics.set_gauge("g", 7)
        delta = metrics.snapshot().diff(before)
        assert delta.value("g") == 7

    def test_merge_of_before_plus_delta_reproduces_after(self, metrics):
        metrics.inc("a_total", 5)
        metrics.observe("h", 0.5, buckets=(1, 2))
        before = metrics.snapshot()
        metrics.inc("a_total", 2)
        metrics.inc("c_total", kind="x")
        metrics.observe("h", 1.5, buckets=(1, 2))
        after = metrics.snapshot()
        delta = after.diff(before)

        other = MetricsRegistry(enabled=True)
        other.merge(before)
        other.merge(delta)
        assert other.snapshot() == after

    def test_merge_rejects_disagreeing_bucket_bounds(self, metrics):
        metrics.observe("h", 0.5, buckets=(1, 2))
        delta = metrics.snapshot().diff(Snapshot())
        other = MetricsRegistry(enabled=True)
        other.observe("h", 0.5, buckets=(1, 2, 4))
        with pytest.raises(ValueError, match="disagree"):
            other.merge(delta)

    def test_reset_drops_samples_keeps_enablement(self, metrics):
        metrics.inc("t_total")
        metrics.reset()
        assert metrics.value("t_total") is None
        assert metrics.enabled
