"""The simple processor core — the paper's original processor model.

A :class:`SimpleCore` executes its thread's instructions in program
order.  Local instructions (arithmetic, branches) each take
``local_cycles``.  Memory instructions pass through two policy hooks
(see :mod:`repro.models.base`): an *issue gate* deciding when the access
may be generated at all, and a *block kind* deciding how far the access
must progress (value / commit / global perform) before the processor
moves past it.

Beyond the shared conditions in :mod:`repro.cpu.core`, this core adds
the two structural rules the original monolithic ``Processor`` enforced:

* any instruction with a destination register blocks until its value
  arrives, so no later instruction can consume a stale register;
* at most one access per location may be outstanding, preserving
  same-location program order through the memory system.

Every stall is attributed to a :class:`StallReason`, which is the raw
data behind the Figure 3 and quantitative-comparison experiments.

``Processor`` remains as a deprecated alias so pre-PR6 imports and
pickled repro bundles keep replaying; new code should construct cores
via :func:`repro.cpu.core.core_class_by_name` (or let ``System`` do it).
"""

from __future__ import annotations

import warnings

from repro.core.instructions import MemInstruction
from repro.cpu.access import MemoryAccess
from repro.cpu.core import MemoryPort, ProcessorCore
from repro.models.base import BlockKind
from repro.sim.stats import StallReason

__all__ = ["MemoryPort", "Processor", "SimpleCore"]


class SimpleCore(ProcessorCore):
    """An in-order-issue processor with policy-controlled overlap only.

    The core itself never reorders: every access with a destination
    register blocks the front end for its value, and a second access to
    a location with an open transaction stalls.  Whatever overlap the
    ordering policy permits (fire-and-forget writes under RELAXED,
    commit-only sync waits under DEF2) is the *only* overlap — which is
    exactly the processor model the paper's Section 5 hardware assumes.
    """

    core_name = "simple"

    # ------------------------------------------------------------------
    # Memory instructions
    # ------------------------------------------------------------------
    def _try_memory(self, instr: MemInstruction) -> None:
        gate = self._common_gate(instr)
        if gate is not None:
            self._begin_stall(gate)
            return
        # Same-location accesses stay ordered through the memory system:
        # a new access may not start until the previous one to the same
        # location has committed (its effect is in the local cache or
        # write buffer, so a subsequent hit observes it; an uncommitted
        # predecessor would mean two open transactions on one line).
        if any(
            a.location == instr.location and not a.committed
            for a in self.pending_accesses
        ):
            self._begin_stall(StallReason.SAME_LOCATION)
            return
        self._issue(instr)

    def _complete_issue(
        self, access: MemoryAccess, instr: MemInstruction, block: BlockKind
    ) -> None:
        if instr.dest is not None and block in (BlockKind.NONE,):
            # Destination registers are intra-processor dependencies: the
            # processor may not run ahead of the value.
            block = BlockKind.VALUE

        self.pc += 1
        self.port.submit(access)
        self._block_on(access, block)


class Processor(SimpleCore):
    """Deprecated alias of :class:`SimpleCore` (pre-PR6 name).

    Kept so external imports and the pickled repro bundles from PR 4
    keep replaying; it is not a registered core (``core_name`` is
    inherited, so the registry still maps ``"simple"`` to
    :class:`SimpleCore` itself).
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "repro.cpu.Processor is deprecated; use repro.cpu.SimpleCore "
            "(or construct cores via repro.cpu.core.core_class_by_name)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
