"""Pluggable executors: how a batch of :class:`RunSpec` gets run.

The contract is a single method — ``map(specs) -> [RunResult]`` — with
results in **spec order regardless of completion order**, so every
aggregation downstream (histograms, grids, sweeps) is independent of
scheduling.  :class:`SerialExecutor` is the reference implementation;
:class:`ParallelExecutor` fans the batch out over a process pool,
reconstructing policies from their specs inside the workers (nothing
unpicklable crosses the boundary).  Because a run is a pure function of
its spec, the two are interchangeable: serial and parallel campaigns
produce byte-identical results.

Both executors are **fault-tolerant**: a crashing spec becomes a
``RunResult`` carrying a :class:`~repro.campaign.spec.RunFailure`
(captured inside :func:`execute_spec_guarded`), never a batch abort.
On top of that the parallel executor survives the process pool itself
failing:

* per-spec futures (not ``pool.map``), so completed results are kept
  when a sibling dies;
* a per-run wall-clock timeout (``run_timeout``) as a safety net over
  the simulation's own cycle watchdog;
* retry with exponential backoff for transiently lost workers, pool
  rebuild after ``BrokenProcessPool``, and graceful degradation to
  in-process serial execution after repeated pool failures — partial
  results are always returned, with failures reported in place.

Both executors are also **preemptible**: ``map`` runs inside a
:func:`~repro.campaign.preempt.graceful_preemption` region, so a
SIGTERM/SIGINT stops dispatching, drains or cancels in-flight runs
within ``preempt_drain`` seconds, and reports every unexecuted spec as
a ``preempted`` failure instead of unwinding with a traceback (a second
signal escalates to ``KeyboardInterrupt``).  And whenever ``map`` *is*
unwound by an exception — including ``KeyboardInterrupt`` — the worker
pool is shut down and its children reaped before the exception
propagates, so an interrupted campaign never strands orphan processes.

Completed results are additionally announced one-by-one through the
optional ``result_callback`` attribute (``callback(index, result)`` in
the order results become final), which is how the campaign layer
journals progress incrementally instead of only at batch end.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from typing import Callable, Iterable, List, Optional, Sequence

from repro.campaign.preempt import (
    PreemptionToken,
    current_token,
    graceful_preemption,
)
from repro.campaign.spec import (
    RunFailure,
    RunResult,
    RunSpec,
    execute_spec_guarded,
)
from repro.obs import METRICS


def execute_spec_observed(spec: RunSpec):
    """Worker-side entry point: run a spec and ship its metrics home.

    Returns ``(result, delta)`` where ``delta`` is the registry diff
    produced by this run (or None when metrics are off in the worker).
    The before/after snapshot diff cancels whatever counter baseline a
    fork-inherited registry already held, so merging deltas in the
    parent counts every observation exactly once.  Results themselves
    never carry metrics — serial and parallel campaigns must stay
    byte-identical.
    """
    if not METRICS.enabled:
        return execute_spec_guarded(spec), None
    before = METRICS.snapshot()
    result = execute_spec_guarded(spec)
    return result, METRICS.snapshot().diff(before)


def _collect(value):
    """Unwrap a worker return value, merging any shipped metrics delta."""
    if type(value) is tuple:
        result, delta = value
        if delta is not None:
            METRICS.merge(delta)
        return result
    return value


def _failure(kind: str, message: str, attempts: int = 1) -> RunResult:
    return RunResult(
        observable=None,
        cycles=0,
        completed=False,
        failure=RunFailure(kind=kind, message=message, attempts=attempts),
    )


def preempted_result(token: Optional[PreemptionToken] = None) -> RunResult:
    """The failure result filled in for a spec preemption skipped."""
    signum = token.signum if token is not None else None
    via = f"signal {signum}" if signum is not None else "stop request"
    return _failure(
        "preempted",
        f"campaign preempted ({via}) before this run completed; "
        f"resume with the campaign journal to execute it",
    )


class Executor:
    """Execution strategy for a batch of independent runs."""

    #: Worker parallelism (1 for serial); informational for reports.
    jobs: int = 1
    #: Operational counters, reset by each ``map`` call and folded into
    #: :class:`~repro.campaign.metrics.CampaignMetrics`.
    retried_runs: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    #: Specs reported as ``preempted`` by the last ``map`` call.
    preempted_runs: int = 0
    #: Install SIGTERM/SIGINT graceful-stop handlers around ``map``.
    preemptible: bool = True
    #: Seconds to wait for in-flight runs after a preemption request.
    preempt_drain: float = 5.0
    #: Optional observer called as ``callback(index, result)`` the
    #: moment a spec's result becomes final (indices are positions in
    #: the ``map`` batch).  Exceptions propagate: the campaign journal
    #: uses this, and a journaling failure must not be swallowed.
    result_callback: Optional[Callable[[int, RunResult], None]] = None

    def map(self, specs: Iterable[RunSpec]) -> List[RunResult]:
        """Execute every spec, returning results in spec order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def _emit(self, index: int, result: RunResult) -> None:
        if self.result_callback is not None:
            self.result_callback(index, result)

    def _publish_counters(self, dispatched: int) -> None:
        """Fold one ``map`` call's operational counters into METRICS."""
        kind = type(self).__name__
        METRICS.inc("repro_executor_dispatched_total", dispatched,
                    help="Specs dispatched for execution", executor=kind)
        if self.retried_runs:
            METRICS.inc("repro_executor_retries_total", self.retried_runs,
                        help="Runs retried after transient failures",
                        executor=kind)
        if self.pool_rebuilds:
            METRICS.inc("repro_executor_pool_rebuilds_total",
                        self.pool_rebuilds,
                        help="Worker-pool rebuilds", executor=kind)
        if self.degraded:
            METRICS.inc("repro_executor_degraded_total",
                        help="Batches finished in degraded serial mode",
                        executor=kind)
        if self.preempted_runs:
            METRICS.inc("repro_executor_preempted_total",
                        self.preempted_runs,
                        help="Specs resolved as preempted", executor=kind)

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every spec in-process, one after another.

    Failures are still captured per spec (guarded execution); wall-clock
    timeouts need preemption and therefore only exist on the parallel
    executor — serial runs rely on the simulation's cycle watchdog.
    A preemption request between two specs stops the batch: remaining
    specs come back as ``preempted`` failures.
    """

    def map(self, specs: Iterable[RunSpec]) -> List[RunResult]:
        batch = list(specs)
        self.preempted_runs = 0
        results: List[RunResult] = []
        with graceful_preemption() if self.preemptible else _noop_token() as token:
            for i, spec in enumerate(batch):
                if token is not None and token.requested():
                    result = preempted_result(token)
                    self.preempted_runs += 1
                else:
                    result = execute_spec_guarded(spec)
                results.append(result)
                self._emit(i, result)
        if METRICS.enabled:
            self._publish_counters(len(batch))
        return results


class _noop_token:
    """Context yielding no token (preemption disabled)."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


class ParallelExecutor(Executor):
    """Fan a batch out over a ``ProcessPoolExecutor``, fault-tolerantly.

    Every spec gets its own future; results are reassembled into spec
    order, so output never depends on completion order and surviving
    results are never discarded because a sibling failed.  Batches
    smaller than two specs short-circuit to in-process execution.

    ``run_timeout`` bounds the wall-clock wait per run (measured from
    the moment the batch starts waiting on that run; earlier runs in
    spec order are always waited on first, so a queued run is never
    charged for its predecessors).  A run that times out is retried up
    to ``retries`` times — with the pool rebuilt first if the stuck
    worker never came back — then reported as a ``wall-timeout``
    failure.

    A dead worker (``BrokenProcessPool``) fails every in-flight future;
    finished results are kept, the pool is rebuilt after a *full-jitter*
    exponential backoff (uniform over ``[0, backoff_base *
    2**(failures-1)]`` seconds) and unfinished specs are resubmitted
    (counted in ``retried_runs``).  The jitter desynchronises
    simultaneous rebuilds — many executors sharing a machine (the
    service tier) would otherwise stampede the freshly rebuilt pools in
    lock-step — while ``backoff_seed`` pins the draw sequence for
    reproducible tests; ``backoff_jitter=False`` restores the
    deterministic ceiling-valued sleep.  After
    ``max_pool_rebuilds`` pool failures the executor degrades to
    in-process serial execution for the remaining specs, so the batch
    always completes.  ``RunFailure.attempts`` on environment-caused
    failures reflects every launch the spec consumed, across both the
    timeout-retry and pool-rebuild paths.

    ``mp_context`` names the :mod:`multiprocessing` start method for
    pool workers (``None`` = platform default).  Multi-threaded hosts
    (the service tier) must pass ``"spawn"``: a worker forked from a
    process with live threads can inherit a lock some other thread held
    at fork time and deadlock — harmless to the batch (its runs are
    retried elsewhere) but fatal at shutdown, where joining the wedged
    worker hangs interpreter exit.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        run_timeout: Optional[float] = None,
        retries: int = 2,
        backoff_base: float = 0.25,
        max_pool_rebuilds: int = 3,
        preemptible: bool = True,
        preempt_drain: float = 5.0,
        backoff_jitter: bool = True,
        backoff_seed: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self.run_timeout = run_timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.max_pool_rebuilds = max(0, max_pool_rebuilds)
        self.preemptible = preemptible
        self.preempt_drain = preempt_drain
        self.backoff_jitter = backoff_jitter
        self._backoff_rng = random.Random(backoff_seed)
        self.mp_context = mp_context
        self._pool = None
        self._pool_failures = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        if self._pool is None:
            context = None
            if self.mp_context is not None:
                import multiprocessing

                context = multiprocessing.get_context(self.mp_context)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Drop the pool without waiting on wedged workers."""
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._pool = None

    def _backoff_delay(self, failures: int) -> float:
        """Seconds to wait before the ``failures``-th pool rebuild.

        Full jitter: a uniform draw over ``[0, backoff_base *
        2**(failures-1)]``.  The exponential ceiling still bounds load
        on the rebuilt pool, but concurrent executors spread out inside
        the window instead of retrying in lock-step.
        """
        cap = self.backoff_base * (2 ** (max(1, failures) - 1))
        if cap <= 0:
            return 0.0
        if not self.backoff_jitter:
            return cap
        return self._backoff_rng.uniform(0.0, cap)

    def _rebuild_pool(self) -> None:
        self._discard_pool()
        self._pool_failures += 1
        self.pool_rebuilds += 1
        backoff = self._backoff_delay(self._pool_failures)
        if backoff > 0:
            time.sleep(backoff)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def map(self, specs: Iterable[RunSpec]) -> List[RunResult]:
        batch: Sequence[RunSpec] = list(specs)
        self.retried_runs = 0
        self.pool_rebuilds = 0
        self.degraded = False
        self.preempted_runs = 0
        self._pool_failures = 0
        if self.jobs <= 1 or len(batch) <= 1:
            results = []
            for i, spec in enumerate(batch):
                result = execute_spec_guarded(spec)
                results.append(result)
                self._emit(i, result)
            if METRICS.enabled:
                self._publish_counters(len(batch))
            return results
        with graceful_preemption() if self.preemptible else _noop_token() as token:
            try:
                results = self._map_batch(batch, token)
                if METRICS.enabled:
                    self._publish_counters(len(batch))
                return results
            except BaseException:
                # The interrupt path (KeyboardInterrupt, SystemExit, a
                # callback raising) must never strand orphan workers:
                # shut the pool down — reaping children — before the
                # exception unwinds.  Running tasks are cancelled where
                # possible; an in-flight run finishes, then its worker
                # exits and is collected.
                try:
                    self.close()
                except Exception:
                    self._discard_pool()
                raise

    def _map_batch(
        self, batch: Sequence[RunSpec], token: Optional[PreemptionToken]
    ) -> List[RunResult]:
        from concurrent.futures import BrokenExecutor
        from concurrent.futures import TimeoutError as FutureTimeout

        results: List[Optional[RunResult]] = [None] * len(batch)
        #: Executions launched per spec (submits + in-process fallbacks);
        #: environment-caused failures report this as their attempts.
        launches = [0] * len(batch)
        timeout_attempts = [0] * len(batch)
        pending: List[int] = list(range(len(batch)))

        def finish(i: int, result: RunResult) -> None:
            results[i] = result
            self._emit(i, result)

        while pending:
            if token is not None and token.requested():
                self._preempt(pending, {}, results, token, finish)
                break
            if self._pool_failures > self.max_pool_rebuilds:
                # The pool keeps dying: finish the batch in-process so
                # partial results never strand.
                self.degraded = True
                for i in pending:
                    if token is not None and token.requested():
                        finish(i, preempted_result(token))
                        self.preempted_runs += 1
                        continue
                    launches[i] += 1
                    result = execute_spec_guarded(batch[i])
                    if result.failure is not None and launches[i] > 1:
                        result = _stamp_attempts(result, launches[i])
                    finish(i, result)
                pending = []
                break

            pool = self._ensure_pool()
            # When metrics are on, workers run the observed entry point
            # and ship per-run registry deltas back with their results.
            task = (
                execute_spec_observed if METRICS.enabled
                else execute_spec_guarded
            )
            try:
                futures = {}
                for i in pending:
                    futures[i] = pool.submit(task, batch[i])
                    launches[i] += 1
            except BrokenExecutor:
                self._rebuild_pool()
                continue

            retry: List[int] = []
            pool_broke = False
            stuck_worker = False
            preempted = False
            for pos, i in enumerate(pending):
                future = futures[i]
                if token is not None and token.requested():
                    # Stop dispatching: resolve this index and the rest
                    # of the wave by draining what already runs and
                    # cancelling the rest, then stop retrying anything.
                    self._preempt(
                        pending[pos:], futures, results, token, finish
                    )
                    retry = []
                    preempted = True
                    break
                if pool_broke:
                    # The pool died mid-batch; keep whatever already
                    # finished, queue the rest for the rebuilt pool.
                    if future.done():
                        try:
                            finish(i, _collect(future.result()))
                            continue
                        except Exception:
                            pass
                    retry.append(i)
                    self.retried_runs += 1
                    continue
                try:
                    finish(i, _collect(future.result(timeout=self.run_timeout)))
                except FutureTimeout:
                    cancelled = future.cancel()
                    if not cancelled:
                        stuck_worker = True
                    timeout_attempts[i] += 1
                    if timeout_attempts[i] > self.retries:
                        finish(i, _failure(
                            "wall-timeout",
                            f"run exceeded its {self.run_timeout:.3g}s "
                            f"wall-clock budget",
                            attempts=timeout_attempts[i],
                        ))
                    else:
                        self.retried_runs += 1
                        retry.append(i)
                except BrokenExecutor:
                    pool_broke = True
                    retry.append(i)
                    self.retried_runs += 1
                except Exception as exc:  # pragma: no cover - guarded
                    finish(i, _failure(
                        "worker-lost",
                        f"{type(exc).__name__}: {exc}",
                        attempts=launches[i],
                    ))

            if preempted:
                pending = []
                break
            if pool_broke:
                self._rebuild_pool()
            elif stuck_worker and retry:
                # A timed-out run is still occupying a worker; reclaim
                # the capacity before retrying.
                self._discard_pool()
                self.pool_rebuilds += 1
            pending = retry

        # Every index is filled by the loop above; the fallback is pure
        # defence so a logic slip can never silently drop a slot.
        final: List[RunResult] = []
        for i, r in enumerate(results):
            if r is None:
                r = _failure("worker-lost", "run produced no result")
                self._emit(i, r)
            final.append(r)
        return final

    def _preempt(
        self,
        indices: Sequence[int],
        futures: dict,
        results: List[Optional[RunResult]],
        token: PreemptionToken,
        finish: Callable[[int, RunResult], None],
    ) -> None:
        """Resolve every remaining index under a preemption request.

        Futures that never started are cancelled; futures already done
        keep their results; running futures get ``preempt_drain``
        seconds to finish, after which their specs are reported as
        preempted and the (possibly still busy) pool is discarded.
        """
        from concurrent.futures import wait as wait_futures

        in_flight = []
        for i in indices:
            future = futures.get(i)
            if future is None or future.cancel():
                finish(i, preempted_result(token))
                self.preempted_runs += 1
            else:
                in_flight.append((i, future))
        if in_flight:
            wait_futures(
                [f for _, f in in_flight], timeout=self.preempt_drain
            )
        abandoned = False
        for i, future in in_flight:
            taken = False
            if future.done():
                try:
                    finish(i, _collect(future.result()))
                    taken = True
                except Exception:
                    pass
            if not taken:
                finish(i, preempted_result(token))
                self.preempted_runs += 1
                abandoned = True
        if abandoned:
            # A worker is still grinding on an abandoned run; drop the
            # pool so close() cannot block on it.
            self._discard_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def _stamp_attempts(result: RunResult, attempts: int) -> RunResult:
    """Record how many launches an (environment-hit) spec consumed."""
    assert result.failure is not None
    if result.failure.attempts >= attempts:
        return result
    return dataclasses.replace(
        result,
        failure=dataclasses.replace(result.failure, attempts=attempts),
    )


def default_executor(
    jobs: Optional[int] = None,
    run_timeout: Optional[float] = None,
    retries: int = 2,
) -> Executor:
    """Serial for ``jobs in (None, 0, 1)``, parallel otherwise."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs, run_timeout=run_timeout, retries=retries)
