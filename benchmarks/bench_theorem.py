"""APPB — the Appendix B theorem as an executable experiment.

Definition 2's contract, checked wholesale: a fleet of generated DRF0
programs runs on the Section-5 implementation (DEF2) across timing
seeds, and every outcome is verified to be in the program's exhaustive
SC result set.  DEF1 (claimed weakly ordered under Definition 2 in
Section 6) and the DEF2-R refinement get the same treatment.  The
benchmarked quantity is the full verify pipeline: simulate + enumerate +
check.
"""

import pytest

from repro.memsys.config import NET_CACHE
from repro.memsys.system import run_program
from repro.models.policies import Def1Policy, Def2Policy, Def2RPolicy
from repro.workloads.random_programs import (
    random_drf0_program,
    random_mixed_sync_program,
)

PROGRAM_SEEDS = range(6)
HW_SEEDS = range(4)


def _fleet(verifier, policy_factory, generator):
    checked = 0
    for program_seed in PROGRAM_SEEDS:
        program = generator(program_seed)
        sc_set = verifier.sc_result_set(program)
        for hw_seed in HW_SEEDS:
            run = run_program(program, policy_factory(), NET_CACHE, seed=hw_seed)
            assert run.completed
            assert run.observable in sc_set, (
                f"weak-ordering violation: {program.name} seed {hw_seed}"
            )
            checked += 1
    return checked


@pytest.mark.parametrize(
    "policy_factory", [Def2Policy, Def2RPolicy, Def1Policy], ids=lambda p: p.name
)
def test_appb_lock_disciplined_fleet(benchmark, verifier, policy_factory):
    generator = lambda seed: random_drf0_program(
        seed, num_procs=2, sections_per_proc=2, ops_per_section=2
    )
    checked = benchmark.pedantic(
        lambda: _fleet(verifier, policy_factory, generator),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[APPB] {policy_factory.name}: {checked} runs of "
        f"{len(PROGRAM_SEEDS)} DRF0 programs — all appear SC"
    )
    assert checked == len(PROGRAM_SEEDS) * len(HW_SEEDS)


def test_appb_mixed_sync_fleet(benchmark, verifier):
    checked = benchmark.pedantic(
        lambda: _fleet(verifier, Def2Policy, random_mixed_sync_program),
        rounds=1,
        iterations=1,
    )
    print(f"\n[APPB] DEF2 on mixed-sync programs: {checked} runs, all SC")
    assert checked == len(PROGRAM_SEEDS) * len(HW_SEEDS)


def test_appb_inval_virtual_channel_fleet(benchmark, verifier):
    """The theorem on the paper's own network: invalidations racing
    grants on a separate virtual channel, where the reserve bit carries
    the correctness burden (see bench_necessity.py)."""
    from repro.memsys.config import NET_CACHE_VC

    def fleet():
        checked = 0
        config = NET_CACHE_VC.with_overrides(network_jitter=20)
        for program_seed in PROGRAM_SEEDS:
            program = random_drf0_program(
                program_seed, num_procs=2, sections_per_proc=2, ops_per_section=2
            )
            sc_set = verifier.sc_result_set(program)
            for hw_seed in HW_SEEDS:
                run = run_program(program, Def2Policy(), config, seed=hw_seed)
                assert run.completed
                assert run.observable in sc_set
                checked += 1
        return checked

    checked = benchmark.pedantic(fleet, rounds=1, iterations=1)
    print(f"\n[APPB] DEF2 on the inval-VC network: {checked} runs, all SC")
    assert checked == len(PROGRAM_SEEDS) * len(HW_SEEDS)
