"""Unit tests for exhaustive SC enumeration."""

import math

import pytest

from repro.core.program import Program, ThreadBuilder
from repro.sc.interleaving import (
    SearchBudgetExceeded,
    count_reachable_states,
    enumerate_executions,
    enumerate_results,
)


def dekker() -> Program:
    t0 = ThreadBuilder("P0").store("x", 1).load("r1", "y").build()
    t1 = ThreadBuilder("P1").store("y", 1).load("r2", "x").build()
    return Program([t0, t1], name="dekker")


def message_passing() -> Program:
    t0 = ThreadBuilder("P0").store("x", 42).store("f", 1).build()
    t1 = ThreadBuilder("P1").load("r1", "f").load("r2", "x").build()
    return Program([t0, t1], name="mp")


class TestEnumerateResults:
    def test_dekker_excludes_0_0(self):
        outcomes = {
            (o.register(0, "r1"), o.register(1, "r2"))
            for o in enumerate_results(dekker())
        }
        assert outcomes == {(0, 1), (1, 0), (1, 1)}

    def test_message_passing_excludes_stale_read(self):
        outcomes = {
            (o.register(1, "r1"), o.register(1, "r2"))
            for o in enumerate_results(message_passing())
        }
        assert (1, 0) not in outcomes
        assert (1, 42) in outcomes
        assert (0, 0) in outcomes

    def test_single_thread_single_result(self):
        program = Program([ThreadBuilder("P0").store("x", 1).load("r", "x").build()])
        results = enumerate_results(program)
        assert len(results) == 1
        assert next(iter(results)).register(0, "r") == 1

    def test_write_write_race_both_orders(self):
        program = Program(
            [
                ThreadBuilder("P0").store("x", 1).build(),
                ThreadBuilder("P1").store("x", 2).build(),
            ]
        )
        finals = {o.memory_value("x") for o in enumerate_results(program)}
        assert finals == {1, 2}

    def test_spin_loop_terminates(self):
        """A TestAndSet spin lock explores finitely many states."""
        t0 = (
            ThreadBuilder("P0")
            .label("acq")
            .test_and_set("t", "l")
            .bne("t", 0, "acq")
            .store("x", 1)
            .sync_store("l", 0)
            .build()
        )
        t1 = (
            ThreadBuilder("P1")
            .label("acq")
            .test_and_set("t", "l")
            .bne("t", 0, "acq")
            .load("r", "x")
            .sync_store("l", 0)
            .build()
        )
        program = Program([t0, t1])
        outcomes = {o.register(1, "r") for o in enumerate_results(program)}
        assert outcomes == {0, 1}

    def test_budget_enforced(self):
        threads = [
            ThreadBuilder(f"P{i}")
            .store(f"a{i}", 1)
            .store(f"b{i}", 1)
            .store(f"c{i}", 1)
            .build()
            for i in range(4)
        ]
        with pytest.raises(SearchBudgetExceeded):
            enumerate_results(Program(threads), max_states=10)


class TestEnumerateExecutions:
    def test_straightline_count_is_binomial(self):
        """Two independent 2-op threads interleave in C(4,2)=6 ways."""
        t0 = ThreadBuilder("P0").store("a", 1).store("b", 1).build()
        t1 = ThreadBuilder("P1").store("c", 1).store("d", 1).build()
        executions = list(enumerate_executions(Program([t0, t1]), prune=False))
        assert len(executions) == math.comb(4, 2)

    def test_pruning_collapses_independent_interleavings(self):
        """Disjoint-location threads form one trace class: pruned search
        emits a single representative with the same observable."""
        t0 = ThreadBuilder("P0").store("a", 1).store("b", 1).build()
        t1 = ThreadBuilder("P1").store("c", 1).store("d", 1).build()
        program = Program([t0, t1])
        pruned = list(enumerate_executions(program, prune=True))
        full = list(enumerate_executions(program, prune=False))
        assert len(pruned) == 1
        assert {e.observable for e in pruned} == {e.observable for e in full}

    def test_each_execution_is_complete_and_program_ordered(self):
        executions = list(enumerate_executions(dekker()))
        for execution in executions:
            assert execution.completed
            for proc in (0, 1):
                ops = execution.ops_of_proc(proc)
                assert [op.thread_pos for op in ops] == sorted(
                    op.thread_pos for op in ops
                )

    def test_results_match_enumerate_results(self):
        program = dekker()
        from_executions = {e.observable for e in enumerate_executions(program)}
        assert from_executions == enumerate_results(program)

    def test_max_executions_truncates(self):
        executions = list(enumerate_executions(dekker(), max_executions=2))
        assert len(executions) == 2

    def test_spin_livelock_marked_incomplete(self):
        """A lock that is never released can only livelock: paths that
        spin forever are pruned by the on-path state check and surface
        as incomplete executions."""
        program = Program(
            [
                ThreadBuilder("P0")
                .label("acq")
                .test_and_set("t", "l")
                .bne("t", 0, "acq")
                .build()
            ],
            initial_memory={"l": 1},
        )
        executions = list(enumerate_executions(program))
        assert executions
        assert all(not e.completed for e in executions)

    def test_read_values_are_consistent(self):
        for execution in enumerate_executions(message_passing()):
            memory = {"x": 0, "f": 0}
            for op in execution.ops:
                if op.reads_memory:
                    assert op.value_read == memory[op.location]
                if op.writes_memory:
                    memory[op.location] = op.value_written


class TestCountReachableStates:
    def test_tiny_program(self):
        program = Program([ThreadBuilder("P0").store("x", 1).build()])
        # initial state + post-store state
        assert count_reachable_states(program) == 2

    def test_budget(self):
        threads = [
            ThreadBuilder(f"P{i}").store(f"a{i}", 1).store(f"b{i}", 1).build()
            for i in range(4)
        ]
        with pytest.raises(SearchBudgetExceeded):
            count_reachable_states(Program(threads), max_states=5)
