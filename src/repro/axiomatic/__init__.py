"""The axiomatic (declarative) side of every memory model.

Where :mod:`repro.models` says what a processor may *do*, this package
says what an execution may *be*: po/rf/co/fr relations over candidate
executions (:mod:`~repro.axiomatic.relations`), herd-style acyclicity
axioms per model (:mod:`~repro.axiomatic.model`), an exhaustive
candidate enumerator for straight-line programs
(:mod:`~repro.axiomatic.candidates`), and the cross-checker that holds
the two formulations accountable to each other over the litmus catalog
(:mod:`~repro.axiomatic.crosscheck`).
"""

from repro.axiomatic.candidates import (
    Candidate,
    CandidateBudgetExceeded,
    NotStraightLine,
    enumerate_candidates,
    is_straightline,
)
from repro.axiomatic.crosscheck import (
    CrosscheckCell,
    CrosscheckReport,
    allowed_outcomes,
    crosscheck_models,
)
from repro.axiomatic.model import (
    AXIOMATIC_MODELS,
    AxiomaticModel,
    axiomatic_model_names,
    model_by_name,
    model_for_policy,
)
from repro.axiomatic.relations import (
    Relations,
    acyclic,
    relations_from_execution,
)

__all__ = [
    "AXIOMATIC_MODELS",
    "AxiomaticModel",
    "Candidate",
    "CandidateBudgetExceeded",
    "CrosscheckCell",
    "CrosscheckReport",
    "NotStraightLine",
    "Relations",
    "acyclic",
    "allowed_outcomes",
    "axiomatic_model_names",
    "crosscheck_models",
    "enumerate_candidates",
    "is_straightline",
    "model_by_name",
    "model_for_policy",
    "relations_from_execution",
]
