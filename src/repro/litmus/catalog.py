"""The litmus-test catalog.

``fig1_dekker`` is the paper's Figure 1 program (the Dekker /
store-buffering core).  The rest are the standard shapes used to probe
memory models, plus DRF0-conformant variants that exercise Definition 2's
software side: a DRF0 program must appear SC on weakly ordered hardware
even while its racy twin does not.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.program import Program, ThreadBuilder
from repro.litmus.test import LitmusTest


def fig1_dekker(warm: bool = False) -> LitmusTest:
    """Figure 1: W(x);R(y) || W(y);R(x).  SC forbids r1=r2=0.

    The paper's guard form ("if (Y == 0) kill P2") is modeled by reading
    into registers; outcome (0, 0) is the both-processes-killed result.
    """
    t0 = ThreadBuilder("P0").store("x", 1).load("r1", "y").build()
    t1 = ThreadBuilder("P1").store("y", 1).load("r2", "x").build()
    return LitmusTest(
        name="fig1_dekker" + ("_warm" if warm else ""),
        program=Program([t0, t1], name="fig1_dekker"),
        projection=((0, "r1"), (1, "r2")),
        forbidden=(0, 0),
        description="Figure 1 store-buffering core; (0,0) kills both processes",
        warm_caches=warm,
    )


def fig1_dekker_all_sync(warm: bool = False) -> LitmusTest:
    """Figure 1's program with every access labelled synchronization.

    All conflicting accesses are then synchronization operations on the
    same location, ordered by so — the program obeys DRF0, and hardware
    weakly ordered w.r.t. DRF0 (DEF1/DEF2) must forbid (0, 0).

    It does *not* obey the Section 6 refinement (DRF0-R): a read-only
    sync completing before the conflicting sync write has no
    writer-to-reader edge, so DEF2-R hardware is entitled to — and on
    the invalidation-virtual-channel machine actually does — show
    (0, 0).  This is the model-separating program of
    ``tests/integration/test_model_separation.py``.
    """
    t0 = ThreadBuilder("P0").sync_store("x", 1).sync_load("r1", "y").build()
    t1 = ThreadBuilder("P1").sync_store("y", 1).sync_load("r2", "x").build()
    return LitmusTest(
        name="fig1_dekker_sync" + ("_warm" if warm else ""),
        program=Program([t0, t1], name="fig1_dekker_sync"),
        projection=((0, "r1"), (1, "r2")),
        forbidden=(0, 0),
        description="Dekker with all accesses labelled sync: DRF0, so (0,0) must stay forbidden",
        warm_caches=warm,
    )


def fig1_dekker_fenced(warm: bool = False) -> LitmusTest:
    """Figure 1's program with RP3-style fences between write and read.

    Still racy by DRF0 (fences create no happens-before edges), but
    fence-honouring hardware drains the write before the read issues,
    so (0, 0) is prevented on *any* policy — hardware stronger than the
    weak-ordering contract requires.
    """
    t0 = ThreadBuilder("P0").store("x", 1).fence().load("r1", "y").build()
    t1 = ThreadBuilder("P1").store("y", 1).fence().load("r2", "x").build()
    return LitmusTest(
        name="fig1_dekker_fenced" + ("_warm" if warm else ""),
        program=Program([t0, t1], name="fig1_dekker_fenced"),
        projection=((0, "r1"), (1, "r2")),
        forbidden=(0, 0),
        description="Dekker with RP3 fences: racy, but fences forbid (0,0)",
        warm_caches=warm,
    )


def message_passing(warm: bool = False) -> LitmusTest:
    """MP: W(x);W(flag) || R(flag);R(x).  SC forbids flag=1, x=0."""
    t0 = ThreadBuilder("P0").store("x", 42).store("flag", 1).build()
    t1 = ThreadBuilder("P1").load("r1", "flag").load("r2", "x").build()
    return LitmusTest(
        name="message_passing" + ("_warm" if warm else ""),
        program=Program([t0, t1], name="message_passing"),
        projection=((1, "r1"), (1, "r2")),
        forbidden=(1, 0),
        description="racy message passing; stale data after seeing the flag",
        warm_caches=warm,
    )


def message_passing_sync() -> LitmusTest:
    """MP with a release (SyncStore) and a spinning acquire (SyncLoad).

    DRF0-conformant: the flag is a synchronization variable and the spin
    guarantees the data read happens-after the data write.
    """
    t0 = ThreadBuilder("P0").store("x", 42).sync_store("flag", 1).build()
    t1 = (
        ThreadBuilder("P1")
        .label("spin")
        .sync_load("r1", "flag")
        .beq("r1", 0, "spin")
        .load("r2", "x")
        .build()
    )
    return LitmusTest(
        name="message_passing_sync",
        program=Program([t0, t1], name="message_passing_sync"),
        projection=((1, "r1"), (1, "r2")),
        forbidden=(1, 0),
        description="DRF0 message passing: release flag, spin-acquire, read data",
    )


def load_buffering() -> LitmusTest:
    """LB: R(y);W(x) || R(x);W(y).  SC forbids r1=r2=1."""
    t0 = ThreadBuilder("P0").load("r1", "y").store("x", 1).build()
    t1 = ThreadBuilder("P1").load("r2", "x").store("y", 1).build()
    return LitmusTest(
        name="load_buffering",
        program=Program([t0, t1], name="load_buffering"),
        projection=((0, "r1"), (1, "r2")),
        forbidden=(1, 1),
        description="load buffering; needs speculative loads to violate",
    )


def coherence_corr(warm: bool = False) -> LitmusTest:
    """CoRR: two reads of one location must not see new-then-old."""
    t0 = ThreadBuilder("P0").store("x", 1).build()
    t1 = ThreadBuilder("P1").load("r1", "x").load("r2", "x").build()
    return LitmusTest(
        name="coherence_corr" + ("_warm" if warm else ""),
        program=Program([t0, t1], name="coherence_corr"),
        projection=((1, "r1"), (1, "r2")),
        forbidden=(1, 0),
        description="per-location coherence: reads of x may not go backwards",
        warm_caches=warm,
    )


def iriw(warm: bool = False) -> LitmusTest:
    """IRIW: independent readers must agree on the write order (SC).

    SC forbids r1=1,r2=0,r3=1,r4=0 (P2 sees x before y, P3 sees y
    before x).
    """
    t0 = ThreadBuilder("P0").store("x", 1).build()
    t1 = ThreadBuilder("P1").store("y", 1).build()
    t2 = ThreadBuilder("P2").load("r1", "x").load("r2", "y").build()
    t3 = ThreadBuilder("P3").load("r3", "y").load("r4", "x").build()
    return LitmusTest(
        name="iriw" + ("_warm" if warm else ""),
        program=Program([t0, t1, t2, t3], name="iriw"),
        projection=((2, "r1"), (2, "r2"), (3, "r3"), (3, "r4")),
        forbidden=(1, 0, 1, 0),
        description="independent reads of independent writes: write atomicity",
        warm_caches=warm,
    )


def write_to_read_causality(warm: bool = False) -> LitmusTest:
    """WRC: causality through a middleman.

    P0 writes x; P1 reads x then writes y; P2 reads y then x.  SC
    forbids P2 seeing y's update but not x's (r1=1, r2=1, r3=0).
    """
    t0 = ThreadBuilder("P0").store("x", 1).build()
    t1 = ThreadBuilder("P1").load("r1", "x").store("y", "r1").build()
    t2 = ThreadBuilder("P2").load("r2", "y").load("r3", "x").build()
    return LitmusTest(
        name="wrc" + ("_warm" if warm else ""),
        program=Program([t0, t1, t2], name="wrc"),
        projection=((1, "r1"), (2, "r2"), (2, "r3")),
        forbidden=(1, 1, 0),
        description="write-to-read causality through a middleman",
        warm_caches=warm,
    )


def store_then_read_other(warm: bool = False) -> LitmusTest:
    """S: W(x);W(y) || R(y);W(x').  SC forbids r1=1 with P1's write of x
    serialized before P0's (observed as final x=1 while r1=1 means P1 ran
    after P0's y write)."""
    t0 = ThreadBuilder("P0").store("x", 2).store("y", 1).build()
    t1 = ThreadBuilder("P1").load("r1", "y").store("x", 1).build()
    return LitmusTest(
        name="litmus_s" + ("_warm" if warm else ""),
        program=Program([t0, t1], name="litmus_s"),
        projection=((1, "r1"),),
        description="the S shape: coherence order vs program order",
        warm_caches=warm,
    )


def two_plus_two_w(warm: bool = False) -> LitmusTest:
    """2+2W: both processors write both locations in opposite orders.

    SC forbids the final state x=1, y=1 (each processor's *first* write
    surviving): some interleaving must put one second write last.
    """
    t0 = ThreadBuilder("P0").store("x", 1).store("y", 2).build()
    t1 = ThreadBuilder("P1").store("y", 1).store("x", 2).build()
    return LitmusTest(
        name="two_plus_two_w" + ("_warm" if warm else ""),
        program=Program([t0, t1], name="two_plus_two_w"),
        projection=(),
        description="2+2W: final memory must order the write pairs consistently",
        warm_caches=warm,
    )


def coherence_coww() -> LitmusTest:
    """CoWW: same-processor writes to one location must not be reordered."""
    t0 = ThreadBuilder("P0").store("x", 1).store("x", 2).build()
    return LitmusTest(
        name="coherence_coww",
        program=Program([t0], name="coherence_coww"),
        projection=(),
        description="per-location program order of writes (final x must be 2)",
    )


def critical_section() -> LitmusTest:
    """A TestAndSet lock protecting one shared counter (DRF0)."""

    def worker(name: str) -> ThreadBuilder:
        return (
            ThreadBuilder(name)
            .label("acquire")
            .test_and_set("t", "lock")
            .bne("t", 0, "acquire")
            .load("c", "count")
            .add("c", "c", 1)
            .store("count", "c")
            .sync_store("lock", 0)
        )

    t0 = worker("P0").build()
    t1 = worker("P1").build()
    return LitmusTest(
        name="critical_section",
        program=Program([t0, t1], name="critical_section"),
        projection=((0, "c"), (1, "c")),
        description="DRF0 lock-protected increment; final count must be 2",
    )


def dekker_racy_on_weak() -> LitmusTest:
    """Alias for :func:`fig1_dekker` with warm caches, the racy program
    used to show weakly ordered hardware is *not* SC for all software."""
    return fig1_dekker(warm=True)


# ----------------------------------------------------------------------
# Core-originated reordering (PR 6): shapes that only become observable
# when the *processor core* reorders — store-to-load forwarding and
# overlapping in-flight reads on the pipelined core.  They live in their
# own catalog: the standard battery's expectations are pinned by the
# pre-refactor conformance snapshot, which predates these tests.
# ----------------------------------------------------------------------

def store_forward_dekker() -> LitmusTest:
    """SB+rfi: each thread reads its own store before reading the other's.

    ``W(x);R(x);R(y) || W(y);R(y);R(x)``.  SC forces the same-location
    read to return the own store (r1=r3=1) and forbids both cross reads
    returning 0.  A forwarding core satisfies r1/r3 from its pending
    store while the store is still a miss in flight, so both cross reads
    can race ahead and observe the pre-write state — the classic
    store-buffer litmus with the buffer inside the core.
    """
    t0 = (
        ThreadBuilder("P0")
        .store("x", 1).load("r1", "x").load("r2", "y")
        .build()
    )
    t1 = (
        ThreadBuilder("P1")
        .store("y", 1).load("r3", "y").load("r4", "x")
        .build()
    )
    return LitmusTest(
        name="store_forward_dekker",
        program=Program([t0, t1], name="store_forward_dekker"),
        projection=((0, "r1"), (0, "r2"), (1, "r3"), (1, "r4")),
        forbidden=(1, 0, 1, 0),
        description="SB with same-location reads; forwarding exposes (1,0,1,0)",
    )


def store_forward_chain() -> LitmusTest:
    """Forwarding breaks write-to-read causality through a register chain.

    ``W(x)=1; R(x)->r1; W(y)=r1  ||  R(y)->r2; R(x)->r3``.  Without
    forwarding, r1 can only be read once ``x=1`` has committed, so any
    observer that sees ``y=1`` also sees ``x=1``.  A forwarding core
    hands r1 the value of the still-in-flight ``x=1``, letting the
    dependent ``y=1`` reach memory first: (r1,r2,r3) = (1,1,0).
    """
    t0 = (
        ThreadBuilder("P0")
        .store("x", 1).load("r1", "x").store("y", "r1")
        .build()
    )
    t1 = ThreadBuilder("P1").load("r2", "y").load("r3", "x").build()
    return LitmusTest(
        name="store_forward_chain",
        program=Program([t0, t1], name="store_forward_chain"),
        projection=((0, "r1"), (1, "r2"), (1, "r3")),
        forbidden=(1, 1, 0),
        description="forwarded value escapes via a dependent store before its source",
    )


def store_forward_coherence() -> LitmusTest:
    """Forwarding must respect same-location program order.

    ``W(x)=1; W(x)=2; R(x)->r1 || R(x)->r2``: the read must forward from
    the *newest* pending write, so r1=2 always — r1=1 (stale forward)
    and r1=0 (write skipped) are both coherence violations on every
    policy and every core.  The observer thread keeps the location
    contended so the window actually holds both writes.
    """
    t0 = (
        ThreadBuilder("P0")
        .store("x", 1).store("x", 2).load("r1", "x")
        .build()
    )
    t1 = ThreadBuilder("P1").load("r2", "x").build()
    return LitmusTest(
        name="store_forward_coherence",
        program=Program([t0, t1], name="store_forward_coherence"),
        projection=((0, "r1"), (1, "r2")),
        forbidden=(1, 0),
        description="per-location order under forwarding: r1 must be 2",
    )


def mp_release_overlapping_reads() -> LitmusTest:
    """Ordered sync writes vs. overlapping data reads.

    ``Wsync(x)=42; Wsync(flag)=1 || R(flag)->r1; R(x)->r2``.  DEF1
    orders the two sync stores (condition 3: the second issues only
    after the first globally performs), so on a core that blocks each
    read for its value, seeing flag=1 implies seeing x=42.  The
    pipelined core issues both reads back-to-back into its window; the
    x read can be satisfied *before* the flag read, observing (1, 0) —
    reordering that originates entirely in the core.  (The program is
    racy — data reads against sync writes — so DEF1's DRF0 promise does
    not apply to it.)
    """
    t0 = ThreadBuilder("P0").sync_store("x", 42).sync_store("flag", 1).build()
    t1 = ThreadBuilder("P1").load("r1", "flag").load("r2", "x").build()
    return LitmusTest(
        name="mp_release_overlapping_reads",
        program=Program([t0, t1], name="mp_release_overlapping_reads"),
        projection=((1, "r1"), (1, "r2")),
        forbidden=(1, 0),
        description="release-ordered writes, core-overlapped reads: (1,0) needs a pipelined core",
    )


def forwarding_catalog() -> List[LitmusTest]:
    """The core-originated-reordering battery (PR 6)."""
    return [
        store_forward_dekker(),
        store_forward_chain(),
        store_forward_coherence(),
        mp_release_overlapping_reads(),
    ]


def standard_catalog() -> List[LitmusTest]:
    """The full battery used by tests and benchmarks."""
    return [
        fig1_dekker(),
        fig1_dekker(warm=True),
        fig1_dekker_all_sync(),
        fig1_dekker_all_sync(warm=True),
        fig1_dekker_fenced(),
        fig1_dekker_fenced(warm=True),
        message_passing(),
        message_passing(warm=True),
        message_passing_sync(),
        load_buffering(),
        coherence_corr(),
        coherence_corr(warm=True),
        coherence_coww(),
        iriw(),
        iriw(warm=True),
        write_to_read_causality(),
        write_to_read_causality(warm=True),
        store_then_read_other(),
        two_plus_two_w(),
        two_plus_two_w(warm=True),
        critical_section(),
    ]


def catalog_by_name() -> Dict[str, LitmusTest]:
    return {
        test.name: test
        for test in standard_catalog() + forwarding_catalog()
    }
