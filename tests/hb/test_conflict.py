"""Unit tests for conflicting-pair enumeration."""

from repro.core.execution import Execution
from repro.core.operation import MemoryOp, OpKind
from repro.hb.conflict import conflicting_pair_count, conflicting_pairs, conflicts_of


def op(kind, loc, proc):
    return MemoryOp(proc=proc, kind=kind, location=loc)


class TestConflictingPairs:
    def test_cross_proc_write_read(self):
        w = op(OpKind.WRITE, "x", 0)
        r = op(OpKind.READ, "x", 1)
        pairs = list(conflicting_pairs(Execution(ops=[w, r])))
        assert pairs == [(w, r)]

    def test_pairs_in_trace_order(self):
        r = op(OpKind.READ, "x", 1)
        w = op(OpKind.WRITE, "x", 0)
        pairs = list(conflicting_pairs(Execution(ops=[r, w])))
        assert pairs == [(r, w)]

    def test_same_proc_excluded_by_default(self):
        w1 = op(OpKind.WRITE, "x", 0)
        w2 = op(OpKind.WRITE, "x", 0)
        assert list(conflicting_pairs(Execution(ops=[w1, w2]))) == []

    def test_same_proc_included_on_request(self):
        w1 = op(OpKind.WRITE, "x", 0)
        w2 = op(OpKind.WRITE, "x", 0)
        pairs = list(
            conflicting_pairs(Execution(ops=[w1, w2]), include_same_proc=True)
        )
        assert pairs == [(w1, w2)]

    def test_reads_do_not_pair(self):
        r1 = op(OpKind.READ, "x", 0)
        r2 = op(OpKind.READ, "x", 1)
        assert conflicting_pair_count(Execution(ops=[r1, r2])) == 0

    def test_cross_location_no_pairs(self):
        w1 = op(OpKind.WRITE, "x", 0)
        w2 = op(OpKind.WRITE, "y", 1)
        assert conflicting_pair_count(Execution(ops=[w1, w2])) == 0

    def test_count_quadratic_bucket(self):
        writes = [op(OpKind.WRITE, "x", i) for i in range(4)]
        assert conflicting_pair_count(Execution(ops=writes)) == 6

    def test_conflicts_of(self):
        w = op(OpKind.WRITE, "x", 0)
        r1 = op(OpKind.READ, "x", 1)
        r2 = op(OpKind.READ, "y", 1)
        execution = Execution(ops=[w, r1, r2])
        assert conflicts_of(w, execution) == [r1]
        assert conflicts_of(r2, execution) == []
