"""Round-trip tests: render_litmus o parse_litmus == identity (modulo
register renaming and trailing end-labels)."""

import pytest

from repro.core.program import Program, ThreadBuilder
from repro.litmus.catalog import (
    fig1_dekker,
    fig1_dekker_all_sync,
    fig1_dekker_fenced,
    message_passing_sync,
)
from repro.litmus.parse import parse_litmus
from repro.litmus.printer import UnrenderableError, render_litmus
from repro.litmus.suites import load_suite


def roundtrip(test):
    return parse_litmus(render_litmus(test))


def assert_same_instructions(a: Program, b: Program):
    assert a.num_procs == b.num_procs
    for thread_a, thread_b in zip(a.threads, b.threads):
        assert thread_a.instructions == thread_b.instructions
        assert dict(thread_a.labels) == dict(thread_b.labels)
    assert dict(a.initial_memory) == dict(b.initial_memory)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [fig1_dekker, fig1_dekker_all_sync, fig1_dekker_fenced,
         message_passing_sync],
    )
    def test_catalog_tests_roundtrip(self, factory):
        test = factory()
        parsed = roundtrip(test)
        assert_same_instructions(test.program, parsed.program)
        assert parsed.projection == test.projection
        assert parsed.forbidden == test.forbidden

    def test_suite_files_roundtrip(self):
        for name, test in load_suite().items():
            parsed = roundtrip(test)
            assert_same_instructions(test.program, parsed.program)

    def test_all_instruction_kinds(self):
        thread = (
            ThreadBuilder("P0")
            .mov("r1", 5)
            .add("r2", "r1", 1)
            .sub("r3", "r2", "r1")
            .mul("r4", "r3", 2)
            .load("r5", "x")
            .store("x", "r5")
            .sync_load("r6", "s")
            .sync_store("s", 0)
            .test_and_set("r7", "s")
            .fetch_and_add("r8", "c", 3)
            .swap("r9", "s", "r1")
            .fence()
            .nop()
            .label("end")
            .halt()
            .build()
        )
        program = Program([thread], name="kinds")
        parsed = parse_litmus(render_litmus(program))
        assert_same_instructions(program, parsed.program)

    def test_branches_and_labels(self):
        thread = (
            ThreadBuilder("P0")
            .label("spin")
            .test_and_set("r1", "lock")
            .bne("r1", 0, "spin")
            .jump("out")
            .label("out")
            .nop()
            .build()
        )
        program = Program([thread], name="branchy")
        parsed = parse_litmus(render_litmus(program))
        assert_same_instructions(program, parsed.program)

    def test_initial_memory_preserved(self):
        program = Program(
            [ThreadBuilder("P0").load("r1", "x").build()],
            initial_memory={"x": 7, "lock": 1},
            name="inits",
        )
        parsed = parse_litmus(render_litmus(program))
        assert parsed.program.initial_memory == {"x": 7, "lock": 1}


class TestRenaming:
    def test_nonconforming_registers_renamed(self):
        program = Program(
            [ThreadBuilder("P0").load("tmp", "x").add("sum", "sum", "tmp").build()]
        )
        source = render_litmus(program)
        assert "tmp" not in source.split("name:")[1]
        parsed = parse_litmus(source)
        # Semantics preserved: one load, one add, consistent renaming.
        instrs = parsed.program.threads[0].instructions
        assert instrs[0].dest == instrs[1].b

    def test_strict_mode_rejects_nonconforming(self):
        program = Program(
            [ThreadBuilder("P0").load("tmp", "x").build()]
        )
        with pytest.raises(UnrenderableError):
            render_litmus(program, strict=True)

    def test_renaming_avoids_collisions(self):
        program = Program(
            [ThreadBuilder("P0").load("r100", "x").load("tmp", "y").build()]
        )
        parsed = parse_litmus(render_litmus(program))
        dests = [i.dest for i in parsed.program.threads[0].instructions]
        assert len(set(dests)) == 2

    def test_forbidden_registers_renamed_consistently(self):
        from repro.litmus.test import LitmusTest

        program = Program(
            [ThreadBuilder("P0").load("out", "x").build()], name="t"
        )
        test = LitmusTest(
            name="t", program=program, projection=((0, "out"),), forbidden=(1,)
        )
        parsed = roundtrip(test)
        # The projection register was renamed along with the program.
        reg = parsed.projection[0][1]
        assert parsed.program.threads[0].instructions[0].dest == reg
        assert parsed.forbidden == (1,)


class TestSemanticEquivalence:
    def test_roundtripped_test_runs_identically(self):
        from repro.litmus.runner import LitmusRunner
        from repro.memsys.config import NET_NOCACHE
        from repro.models.policies import RelaxedPolicy

        runner = LitmusRunner()
        original = fig1_dekker()
        parsed = roundtrip(original)
        a = runner.run(original, RelaxedPolicy, NET_NOCACHE, runs=25, base_seed=3)
        b = runner.run(parsed, RelaxedPolicy, NET_NOCACHE, runs=25, base_seed=3)
        assert a.histogram == b.histogram
