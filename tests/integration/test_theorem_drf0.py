"""APPB integration: the paper's headline theorem, tested empirically.

Appendix B proves the Section 5.1 conditions sufficient for weak
ordering w.r.t. DRF0 — i.e. every execution of every DRF0 program on the
DEF2 implementation appears sequentially consistent (Definition 2).  We
fleet-test that over generated DRF0 programs, hardware seeds, and both
cache configurations, for DEF2, its DEF2-R refinement, DEF1 (which the
paper claims is also weakly ordered under Definition 2), and SC.

The contract has a software side too: racy programs get no guarantee,
and the same DEF2 hardware demonstrably violates SC for them — which is
precisely why the definition is a *contract* and not a blanket promise.
"""

import pytest

from repro.litmus.catalog import fig1_dekker
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import BUS_CACHE, NET_CACHE
from repro.memsys.system import run_program
from repro.models.policies import (
    Def1Policy,
    Def2Policy,
    Def2RPolicy,
    SCPolicy,
)
from repro.sc.verifier import SCVerifier
from repro.workloads.random_programs import (
    random_drf0_program,
    random_mixed_sync_program,
)

PROGRAM_SEEDS = range(8)
HW_SEEDS = range(4)
POLICIES = [Def2Policy, Def2RPolicy, Def1Policy, SCPolicy]


@pytest.fixture(scope="module")
def verifier():
    return SCVerifier()


class TestDRF0ProgramsAppearSC:
    @pytest.mark.parametrize("policy_cls", POLICIES, ids=lambda p: p.name)
    @pytest.mark.parametrize("config", [NET_CACHE, BUS_CACHE], ids=lambda c: c.name)
    def test_lock_disciplined_fleet(self, verifier, policy_cls, config):
        for program_seed in PROGRAM_SEEDS:
            program = random_drf0_program(
                program_seed, num_procs=2, sections_per_proc=2, ops_per_section=2
            )
            sc_set = verifier.sc_result_set(program)
            for hw_seed in HW_SEEDS:
                run = run_program(program, policy_cls(), config, seed=hw_seed)
                assert run.completed, (program_seed, hw_seed)
                assert run.observable in sc_set, (
                    f"weak-ordering violation: program seed {program_seed}, "
                    f"hw seed {hw_seed}: {run.observable.describe()}"
                )

    @pytest.mark.parametrize("policy_cls", [Def2Policy, Def2RPolicy],
                             ids=lambda p: p.name)
    def test_mixed_sync_fleet(self, verifier, policy_cls):
        for program_seed in PROGRAM_SEEDS:
            program = random_mixed_sync_program(program_seed)
            sc_set = verifier.sc_result_set(program)
            for hw_seed in HW_SEEDS:
                run = run_program(program, policy_cls(), NET_CACHE, seed=hw_seed)
                assert run.completed
                assert run.observable in sc_set

    def test_three_processor_programs(self, verifier):
        for program_seed in range(4):
            program = random_drf0_program(
                program_seed, num_procs=3, sections_per_proc=1, ops_per_section=2
            )
            sc_set = verifier.sc_result_set(program)
            for hw_seed in HW_SEEDS:
                run = run_program(program, Def2Policy(), NET_CACHE, seed=hw_seed)
                assert run.completed
                assert run.observable in sc_set


class TestTheSoftwareSideMatters:
    def test_racy_program_violates_on_def2(self):
        """DEF2 hardware gives no SC guarantee to racy software —
        Definition 2 is a contract, not unconditional SC."""
        runner = LitmusRunner()
        result = runner.run(
            fig1_dekker(warm=True), Def2Policy, NET_CACHE, runs=80
        )
        assert result.violated_sc
        assert result.forbidden_seen > 0
