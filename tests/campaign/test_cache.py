"""On-disk result cache: hits, misses, corruption tolerance."""

import pickle
import sys

from repro.campaign import PolicySpec, ResultCache, RunSpec, run_campaign
from repro.litmus.catalog import fig1_dekker
from repro.memsys.config import NET_NOCACHE
from repro.models.policies import RelaxedPolicy


def _specs(n):
    program = fig1_dekker().program
    policy = PolicySpec.of(RelaxedPolicy)
    return [
        RunSpec(program=program, policy=policy, config=NET_NOCACHE, seed=seed)
        for seed in range(n)
    ]


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _specs(1)[0]
        assert cache.get(spec) is None
        result = spec.execute()
        cache.put(spec, result)
        assert cache.get(spec) == result
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _specs(1)[0]
        cache.put(spec, spec.execute())
        (tmp_path / f"{spec.digest()}.pkl").write_bytes(b"not a pickle")
        assert cache.get(spec) is None

    def test_non_result_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _specs(1)[0]
        (tmp_path / f"{spec.digest()}.pkl").write_bytes(pickle.dumps({"bogus": 1}))
        assert cache.get(spec) is None

    def test_half_written_entry_is_quarantined_not_trusted(self, tmp_path):
        # Simulate a crash mid-write under the final name: a truncated
        # pickle must be moved aside, never returned as a result.
        cache = ResultCache(tmp_path)
        spec = _specs(1)[0]
        result = spec.execute()
        whole = pickle.dumps(result)
        entry = tmp_path / f"{spec.digest()}.pkl"
        entry.write_bytes(whole[: len(whole) // 2])

        assert cache.get(spec) is None
        assert cache.quarantined == 1
        assert not entry.exists()
        corrupt = entry.with_suffix(".corrupt")
        assert corrupt.exists(), "bad entry must be kept for post-mortem"

        # The digest's slot is free again: a fresh put round-trips.
        cache.put(spec, result)
        assert cache.get(spec) == result

    def test_atomic_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        for spec in _specs(3):
            cache.put(spec, spec.execute())
        assert list(tmp_path.glob("*.tmp")) == []

    def test_put_torn_mid_write_leaves_old_entry_intact(
        self, tmp_path, monkeypatch
    ):
        # The torn-write regression: a crash inside put() (here: the
        # pickler dying halfway through the temp file) must leave the
        # digest's slot exactly as it was — the complete old entry, not
        # a truncated new one — and clean up its temp file.
        cache = ResultCache(tmp_path)
        spec = _specs(1)[0]
        result = spec.execute()
        cache.put(spec, result)
        before = (tmp_path / f"{spec.digest()}.pkl").read_bytes()

        def torn_dump(obj, fh):
            fh.write(pickle.dumps(obj)[: 10])
            raise pickle.PicklingError("simulated crash mid-write")

        cache_module = sys.modules[ResultCache.__module__]
        monkeypatch.setattr(cache_module.pickle, "dump", torn_dump)
        cache.put(spec, result)  # swallowed, never torn
        monkeypatch.undo()

        assert (tmp_path / f"{spec.digest()}.pkl").read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get(spec) == result
        assert cache.quarantined == 0

    def test_sweep_stale_removes_orphaned_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _specs(1)[0]
        cache.put(spec, spec.execute())
        # A SIGKILLed writer leaves its temp file behind; sweep it.
        (tmp_path / "orphan-1.tmp").write_bytes(b"partial")
        (tmp_path / "orphan-2.tmp").write_bytes(b"")
        assert cache.sweep_stale() == 2
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get(spec) is not None

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        for spec in _specs(3):
            cache.put(spec, spec.execute())
        assert len(cache) == 3


class TestFailureCaching:
    def test_deterministic_failures_are_memoised(self, tmp_path):
        # A sim-timeout is a pure function of the spec: cache it.
        cache = ResultCache(tmp_path)
        spec = _specs(1)[0]
        spec = RunSpec(
            program=spec.program, policy=spec.policy, config=spec.config,
            seed=spec.seed, max_cycles=20,
        )
        first = run_campaign([spec], cache=cache)
        assert first.results[0].failure is not None
        assert first.results[0].failure.kind == "sim-timeout"
        second = run_campaign([spec], cache=cache)
        assert second.metrics.cache_hits == 1
        assert pickle.dumps(first.results) == pickle.dumps(second.results)


class TestCampaignCaching:
    def test_second_campaign_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = _specs(4)
        first = run_campaign(specs, cache=cache)
        assert first.metrics.cache_hits == 0
        second = run_campaign(specs, cache=cache)
        assert second.metrics.cache_hits == 4
        assert pickle.dumps(first.results) == pickle.dumps(second.results)

    def test_partial_hits_preserve_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = _specs(4)
        run_campaign(specs[:2], cache=cache)
        mixed = run_campaign(specs, cache=cache)
        assert mixed.metrics.cache_hits == 2
        uncached = run_campaign(specs)
        assert [pickle.dumps(r) for r in mixed.results] == [
            pickle.dumps(r) for r in uncached.results
        ]

    def test_cached_runner_output_identical(self, tmp_path):
        from repro.litmus.runner import LitmusRunner

        runner = LitmusRunner()
        cache = ResultCache(tmp_path)
        plain = runner.run(fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=10)
        cached = runner.run(
            fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=10, cache=cache
        )
        rehit = runner.run(
            fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=10, cache=cache
        )
        assert plain.histogram == cached.histogram == rehit.histogram
        assert cache.hits == 10
