"""Directory-based write-back invalidation coherence (Section 5.2/5.3)."""

from repro.coherence.cache import Cache
from repro.coherence.directory import (
    DIRECTORY_ENDPOINT,
    Directory,
    DirectoryEntry,
    EntryState,
    cache_endpoint,
)
from repro.coherence.line import CacheLine, LineState
from repro.coherence.protocol import (
    DataS,
    DataX,
    GetS,
    GetX,
    Inval,
    InvalAck,
    MemAck,
    Recall,
    RecallAck,
    RecallNack,
    SyncNack,
    WriteBack,
    WriteBackAck,
)

__all__ = [
    "Cache",
    "CacheLine",
    "DIRECTORY_ENDPOINT",
    "DataS",
    "DataX",
    "Directory",
    "DirectoryEntry",
    "EntryState",
    "GetS",
    "GetX",
    "Inval",
    "InvalAck",
    "LineState",
    "MemAck",
    "Recall",
    "RecallAck",
    "RecallNack",
    "SyncNack",
    "WriteBack",
    "WriteBackAck",
    "cache_endpoint",
]
