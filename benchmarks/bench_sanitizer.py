"""SANITIZE — the invariant-checking overhead contract, measured.

The sanitizer mirrors the tracer's deal with the hot paths: disabled it
must cost a guard branch, enabled it may sweep the whole machine every
cycle.  This benchmark times the Figure-3 release-overlap workload with
the sanitizer off, logging, and strict, prints the ratios, and asserts
the acceptance bounds from the issue: disabled within 5% of the
pre-instrumentation wall-clock, strict mode under 3x.
"""

import time

from repro.memsys.config import NET_CACHE
from repro.memsys.system import run_program
from repro.models.policies import Def2Policy
from repro.workloads.locks import release_overlap_program

RUNS = 40
REPEATS = 3


def _campaign(sanitize=None):
    program = release_overlap_program()
    for seed in range(RUNS):
        run = run_program(
            program, Def2Policy(), NET_CACHE, seed=seed, sanitize=sanitize
        )
        assert run.completed
        assert not run.sanitizer_violations


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sanitizer_overhead(benchmark):
    _campaign()  # warm imports and caches outside the timed region

    benchmark.pedantic(_campaign, rounds=1, iterations=1)
    # ``sanitize=None`` never touches the sanitizer; ``"off"`` goes
    # through configure() and pays the per-cycle guard branch that
    # instrumenting the engine added.  Interleave the two measurements
    # so clock drift hits both alike, then gate the branch cost at 5%.
    none_s = off_s = float("inf")
    for _ in range(5):
        none_s = min(none_s, _best_of(_campaign, repeats=1))
        off_s = min(off_s, _best_of(lambda: _campaign(sanitize="off"),
                                    repeats=1))
    log_s = _best_of(lambda: _campaign(sanitize="log"))
    strict_s = _best_of(lambda: _campaign(sanitize="strict"))

    print(f"\n[SANITIZE] {RUNS}-run DEF2 Figure-3 workload, best of 5")
    print(f"  none:    {none_s * 1e3:8.2f} ms")
    print(f"  off:     {off_s * 1e3:8.2f} ms ({off_s / none_s:.2f}x)")
    print(f"  log:     {log_s * 1e3:8.2f} ms ({log_s / none_s:.2f}x)")
    print(f"  strict:  {strict_s * 1e3:8.2f} ms "
          f"({strict_s / none_s:.2f}x)")

    assert off_s <= none_s * 1.05

    # Full per-cycle sweeps are allowed to cost, but must stay well
    # inside the same order of magnitude.
    assert log_s < none_s * 3.0
    assert strict_s < none_s * 3.0
