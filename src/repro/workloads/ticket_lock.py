"""Ticket locks and sense-reversing barriers.

Two further synchronization idioms built from the paper's primitives,
both DRF0 by construction:

* **ticket lock** — FIFO mutual exclusion from one ``FetchAndAdd`` (take
  a ticket) and a read-only spin on ``now_serving``; release increments
  ``now_serving`` with a write-only sync.  Contrast with TestAndSet
  locks: the RMW happens once per acquisition, so plain DEF2's
  sync-serialization cost falls on the spin reads only.
* **sense-reversing barrier** — each arrival flips a local sense and
  fetch-and-decrements the count; the last arrival resets the count and
  publishes the new sense; everyone else spins (read-only sync) on the
  sense word.  One sync location is written per episode, the classic fix
  for the naive counter barrier's spin storm.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.program import Program, Thread, ThreadBuilder


def ticket_acquire(
    builder: ThreadBuilder,
    ticket: str = "ticket",
    serving: str = "serving",
) -> ThreadBuilder:
    """Take a ticket, spin until served."""
    spin = f"__ticket_{builder.position}"
    return (
        builder.fetch_and_add("__my", ticket, 1)
        .label(spin)
        .sync_load("__now", serving)
        .bne("__now", "__my", spin)
    )


def ticket_release(
    builder: ThreadBuilder,
    serving: str = "serving",
) -> ThreadBuilder:
    """Serve the next ticket holder.

    The holder's ``__now`` register equals its own ticket, so the next
    value is ``__now + 1``; the store is a write-only synchronization.
    """
    return builder.add("__next", "__now", 1).sync_store(serving, "__next")


def ticket_lock_program(
    num_procs: int = 2,
    acquisitions_per_proc: int = 1,
    critical_work: int = 0,
    counter: str = "count",
    name: Optional[str] = None,
) -> Program:
    """Each processor increments a shared counter under a ticket lock."""
    threads: List[Thread] = []
    for proc in range(num_procs):
        builder = ThreadBuilder(f"P{proc}")
        for _ in range(acquisitions_per_proc):
            ticket_acquire(builder)
            builder.load("c", counter)
            if critical_work:
                builder.nop(critical_work)
            builder.add("c", "c", 1)
            builder.store(counter, "c")
            ticket_release(builder)
        threads.append(builder.build())
    return Program(
        threads,
        name=name or f"ticket_lock_p{num_procs}_a{acquisitions_per_proc}",
    )


def sense_barrier_program(
    num_procs: int = 3,
    episodes: int = 1,
    count: str = "bcount",
    sense: str = "bsense",
    post_work: int = 0,
) -> Program:
    """``episodes`` sense-reversing barrier episodes.

    ``bcount`` starts at ``num_procs``; ``bsense`` starts at 0.  In
    episode ``e`` the target sense is ``e + 1``: the last arrival resets
    the count and stores the new sense (write-only sync); the rest spin
    on the sense word with read-only syncs.
    """
    threads: List[Thread] = []
    for proc in range(num_procs):
        builder = ThreadBuilder(f"P{proc}")
        for episode in range(1, episodes + 1):
            builder.fetch_and_add("left", count, -1)
            # 'left' holds the pre-decrement value: 1 means last arrival.
            last = f"__last_{episode}"
            done = f"__done_{episode}"
            spin = f"__spin_{episode}"
            builder.beq("left", 1, last)
            builder.label(spin)
            builder.sync_load("s", sense)
            builder.bne("s", episode, spin)
            builder.jump(done)
            builder.label(last)
            builder.sync_store(count, num_procs)
            builder.sync_store(sense, episode)
            builder.label(done)
            if post_work:
                builder.nop(post_work)
        threads.append(builder.build())
    return Program(
        threads,
        initial_memory={count: num_procs, sense: 0},
        name=f"sense_barrier_p{num_procs}_e{episodes}",
    )
