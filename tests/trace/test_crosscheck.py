"""The correctness dividend, paid in full: the happens-before relation
reconstructed from trace events must agree with the native ``hb`` build
for every test in the standard litmus catalog."""

import pytest

from repro.litmus.catalog import standard_catalog
from repro.memsys.config import NET_CACHE, NET_NOCACHE
from repro.memsys.system import System
from repro.models.policies import Def2Policy, SCPolicy
from repro.trace import TraceSpec, crosscheck_run
from repro.trace.crosscheck import execution_from_trace

CATALOG = standard_catalog()


def traced_run(test, policy, config, seed=7):
    system = System(
        test.executable_program(), policy, config, seed=seed,
        trace=TraceSpec(categories=("proc",)),
    )
    run = system.run()
    assert run.completed, f"{test.name} did not complete"
    return run


@pytest.mark.parametrize(
    "test", CATALOG, ids=[test.name for test in CATALOG]
)
def test_crosscheck_full_catalog_def2(test):
    report = crosscheck_run(traced_run(test, Def2Policy(), NET_CACHE))
    assert report.ok, report.describe()
    assert report.ops_traced == report.ops_native > 0


@pytest.mark.parametrize(
    "test", CATALOG, ids=[test.name for test in CATALOG]
)
def test_crosscheck_full_catalog_sc_nocache(test):
    report = crosscheck_run(traced_run(test, SCPolicy(), NET_NOCACHE))
    assert report.ok, report.describe()


def test_reconstruction_matches_native_op_for_op():
    test = next(t for t in CATALOG if t.name == "fig1_dekker_sync")
    run = traced_run(test, Def2Policy(), NET_CACHE)
    rebuilt = execution_from_trace(run.trace_events)
    native = run.execution
    assert [op.static_id() for op in rebuilt.ops] == [
        op.static_id() for op in native.ops
    ]
    assert [op.commit_time for op in rebuilt.ops] == [
        op.commit_time for op in native.ops
    ]
    assert [(op.value_read, op.value_written) for op in rebuilt.ops] == [
        (op.value_read, op.value_written) for op in native.ops
    ]


def test_crosscheck_requires_trace_events():
    test = CATALOG[0]
    system = System(
        test.executable_program(), Def2Policy(), NET_CACHE, seed=7
    )
    run = system.run()
    with pytest.raises(ValueError, match="no trace events"):
        crosscheck_run(run)


def test_crosscheck_detects_a_dropped_commit():
    """A stream missing one commit must fail, not silently pass —
    otherwise the cross-check guards nothing."""
    test = next(t for t in CATALOG if t.name == "fig1_dekker_sync")
    run = traced_run(test, Def2Policy(), NET_CACHE)
    commits = [
        e for e in run.trace_events
        if e.category == "proc" and e.name == "commit"
    ]
    truncated = tuple(e for e in run.trace_events if e is not commits[-1])
    from repro.trace.crosscheck import crosscheck_execution

    report = crosscheck_execution(run.execution, truncated)
    assert not report.ok
    assert report.missing_ops
