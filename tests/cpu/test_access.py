"""Unit tests for the in-flight memory access lifecycle."""

import pytest

from repro.core.operation import OpKind
from repro.cpu.access import MemoryAccess


def make_access(kind=OpKind.READ):
    return MemoryAccess(proc=0, kind=kind, location="x")


class TestLifecycle:
    def test_value_delivery(self):
        access = make_access()
        seen = []
        access.on_value(lambda a: seen.append(a.value))
        access.deliver_value(7, now=5)
        assert access.value == 7
        assert access.has_value
        assert seen == [7]

    def test_commit_then_gp(self):
        access = make_access()
        access.mark_committed(now=3)
        access.mark_globally_performed(now=9)
        assert access.commit_time == 3
        assert access.gp_time == 9
        assert access.committed and access.globally_performed

    def test_gp_before_commit_asserts(self):
        access = make_access()
        with pytest.raises(AssertionError):
            access.mark_globally_performed(now=1)

    def test_double_events_assert(self):
        access = make_access()
        access.deliver_value(1, now=0)
        with pytest.raises(AssertionError):
            access.deliver_value(2, now=1)
        access.mark_committed(now=1)
        with pytest.raises(AssertionError):
            access.mark_committed(now=2)

    def test_late_subscriber_fires_immediately(self):
        access = make_access()
        access.mark_committed(now=2)
        seen = []
        access.on_commit(lambda a: seen.append(a.commit_time))
        assert seen == [2]

    def test_listener_order_preserved(self):
        access = make_access()
        log = []
        access.on_value(lambda a: log.append("first"))
        access.on_value(lambda a: log.append("second"))
        access.deliver_value(1, now=0)
        assert log == ["first", "second"]

    def test_gp_listeners(self):
        access = make_access()
        log = []
        access.on_globally_performed(lambda a: log.append(a.gp_time))
        access.mark_committed(now=1)
        access.mark_globally_performed(now=4)
        assert log == [4]

    def test_repr_mentions_state(self):
        access = make_access()
        access.deliver_value(3, now=0)
        assert "v=3" in repr(access)
