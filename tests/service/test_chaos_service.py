"""Kill-the-server chaos: accepted jobs survive anything short of
losing the state directory.

The acceptance drill for the service tier: submit a load of jobs over
real HTTP to a real ``repro serve`` subprocess, SIGKILL the server
mid-load, restart it on the same state dir, and every accepted job
must complete with journal records byte-identical to a clean serial
baseline (:func:`assert_exactly_once` — the same judge the campaign
soak harness answers to).  A SIGTERM instead must drain gracefully
with exit code 0.

These are subprocess tests; they are marked slow (``--runslow``).
"""

import threading

import pytest

from repro.campaign import SerialExecutor, run_campaign
from repro.service.chaos import (
    ServerProcess,
    assert_exactly_once,
    journal_results,
    wait_until,
)
from repro.service.jobs import build_job

pytestmark = pytest.mark.slow


def serial_baseline(kind, params):
    """Expected journal contents for one job, from a clean serial run."""
    work = build_job(kind, params)
    executor = SerialExecutor()
    try:
        campaign = run_campaign(
            work.specs, executor=executor, label="baseline"
        )
    finally:
        executor.close()
    return {
        spec.digest(): result
        for spec, result in zip(work.specs, campaign.results)
    }


JOBS = [
    ("litmus", {"test": "fig1_dekker", "runs": 8}),
    ("litmus", {"test": "fig1_dekker", "runs": 8, "policy": "SC"}),
    ("litmus", {"test": "fig1_dekker_sync", "runs": 8,
                "policy": "DEF2"}),
]


class TestServerSigkill:
    def test_accepted_jobs_survive_a_sigkill_byte_identical(
        self, tmp_path
    ):
        expected = {}
        for kind, params in JOBS:
            expected.update(serial_baseline(kind, params))

        state = tmp_path / "state"
        first = ServerProcess(state, workers=2, campaign_jobs=2)
        first.start()
        ids = []
        try:
            client = first.client
            for kind, params in JOBS:
                ids.append(
                    client.submit(kind, params)["job"]["id"]
                )
            # Let real work land in the journal, then pull the plug.
            wait_until(
                lambda: journal_results(state / "runs.jsonl") >= 3,
                timeout=60, message="journaled results before the kill",
            )
        finally:
            first.sigkill()

        second = ServerProcess(state, workers=2, campaign_jobs=2)
        second.start()
        try:
            client = second.client
            for job_id in ids:
                job = client.wait_done(job_id, timeout=180)
                assert job["state"] == "done", job
                assert job["recovered"] or job["state"] == "done"
            # Every expected digest exactly once, byte-identical to the
            # clean serial baseline — the SIGKILL cost nothing.
            assert_exactly_once(state / "runs.jsonl", expected)
            # A repeat submission is now a pure replay.
            kind, params = JOBS[0]
            doc = client.submit(kind, params)
            assert doc["verdict"] == "completed"
            assert second.sigterm() == 0
        finally:
            second.stop()


class TestServerSigterm:
    def test_sigterm_drains_cleanly_with_exit_zero(self, tmp_path):
        state = tmp_path / "state"
        server = ServerProcess(state, workers=1, campaign_jobs=1)
        server.start()
        try:
            client = server.client
            job_id = client.submit(
                "litmus", {"test": "fig1_dekker", "runs": 4}
            )["job"]["id"]
            client.wait_done(job_id, timeout=120)
            assert server.sigterm() == 0
        finally:
            server.stop()

    def test_jobs_preempted_by_sigterm_finish_after_restart(
        self, tmp_path
    ):
        kind, params = "litmus", {"test": "fig1_dekker", "runs": 16}
        expected = serial_baseline(kind, params)
        state = tmp_path / "state"
        first = ServerProcess(state, workers=1, campaign_jobs=1)
        first.start()
        try:
            job_id = first.client.submit(kind, params)["job"]["id"]
            # Terminate while the campaign is (very likely) in flight;
            # the drain is graceful either way.
            wait_until(
                lambda: journal_results(state / "runs.jsonl") >= 1,
                timeout=60, message="first journaled result",
            )
            assert first.sigterm() == 0
        finally:
            first.stop()

        second = ServerProcess(state, workers=1, campaign_jobs=1)
        second.start()
        try:
            job = second.client.wait_done(job_id, timeout=180)
            assert job["state"] == "done"
            result = second.client.result(job_id)["result"]
            assert result["completed_runs"] == 16
            assert_exactly_once(state / "runs.jsonl", expected)
        finally:
            second.stop()


class TestWorkerLoss:
    def test_sigkilled_pool_worker_does_not_lose_the_job(
        self, tmp_path
    ):
        kind = "conformance"
        params = {
            "machines": ["net_nocache"],
            "policies": ["SC", "RELAXED"],
            "tests": ["fig1_dekker"],
            "runs_per_test": 1000,
        }
        expected = serial_baseline(kind, params)
        state = tmp_path / "state"
        server = ServerProcess(state, workers=1, campaign_jobs=2)
        server.start()
        try:
            client = server.client
            # Hunt for a pool worker from the moment of submission —
            # the pool exists only while the campaign runs.
            victims = []
            hunter = threading.Thread(
                target=lambda: victims.append(
                    server.kill_one_worker(timeout=60)
                )
            )
            hunter.start()
            job_id = client.submit(kind, params)["job"]["id"]
            hunter.join(timeout=90)
            assert victims, "never caught a pool worker to kill"
            job = client.wait_done(job_id, timeout=180)
            assert job["state"] == "done", job
            result = client.result(job_id)["result"]
            assert result["preempted"] is False
            assert {cell["policy"] for cell in result["cells"]} == {
                "SC", "RELAXED"
            }
            # The retried runs landed byte-identical regardless.
            assert_exactly_once(state / "runs.jsonl", expected)
            assert server.sigterm() == 0
        finally:
            server.stop()
