"""The durable campaign journal: append, replay, resume, crash safety.

The contract under test (ISSUE: crash-safe resumable campaigns): a
journaled campaign killed at *any* point — including mid-batch — resumes
from its journal executing only the remainder, and the final results are
byte-identical to an uninterrupted campaign's.
"""

import json
import pickle

import pytest

from repro.campaign import (
    CampaignJournal,
    JournalError,
    PolicySpec,
    RunSpec,
    SerialExecutor,
    campaign_digest,
    execute_spec_guarded,
    open_journal,
    run_campaign,
)
from repro.campaign.spec import RunFailure, RunResult
from repro.litmus.catalog import fig1_dekker
from repro.memsys.config import NET_NOCACHE
from repro.models.policies import RelaxedPolicy


def _specs(n=6, **kwargs):
    return [
        RunSpec(
            program=fig1_dekker().program,
            policy=PolicySpec.of(RelaxedPolicy),
            config=NET_NOCACHE,
            seed=seed,
            **kwargs,
        )
        for seed in range(n)
    ]


class CountingExecutor(SerialExecutor):
    """Counts real executions, so replays are observable."""

    def __init__(self):
        super().__init__()
        self.executed = 0

    def map(self, batch):
        self.executed += len(batch)
        return super().map(batch)


class KillingExecutor(SerialExecutor):
    """Dies (in-process stand-in for SIGKILL) after ``after`` runs."""

    def __init__(self, after):
        super().__init__()
        self.after = after

    def map(self, batch):
        out = []
        for i, spec in enumerate(batch):
            if i == self.after:
                raise KeyboardInterrupt("simulated kill")
            result = execute_spec_guarded(spec)
            self._emit(i, result)
            out.append(result)
        return out


class TestJournalBasics:
    def test_roundtrip_replays_byte_identical_results(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = _specs()
        first = run_campaign(specs, journal=path, label="t")
        second = run_campaign(specs, journal=path, label="t")
        assert second.metrics.journal_replayed == len(specs)
        assert second.metrics.journal_appends == 0
        assert [pickle.dumps(r) for r in first.results] == [
            pickle.dumps(r) for r in second.results
        ]

    def test_journaled_run_matches_unjournaled_run(self, tmp_path):
        specs = _specs()
        journaled = run_campaign(specs, journal=tmp_path / "j.jsonl")
        plain = run_campaign(specs)
        assert [pickle.dumps(r) for r in journaled.results] == [
            pickle.dumps(r) for r in plain.results
        ]

    def test_record_is_idempotent_per_digest(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = _specs(1)[0]
        result = spec.execute()
        with CampaignJournal(path) as journal:
            assert journal.record(spec.digest(), result)
            assert not journal.record(spec.digest(), result)
        raw = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert sum(1 for r in raw if r["type"] == "result") == 1

    def test_campaign_header_stamped_per_campaign(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = _specs(3)
        run_campaign(specs, journal=path, label="first")
        run_campaign(specs, journal=path, label="second")
        with CampaignJournal(path) as journal:
            assert [c["label"] for c in journal.campaigns] == [
                "first", "second",
            ]
            digests = [spec.digest() for spec in specs]
            assert journal.campaigns[0]["digest"] == campaign_digest(digests)
            assert journal.campaigns[0]["already_completed"] == 0
            assert journal.campaigns[1]["already_completed"] == 3

    def test_periodic_checkpoint_markers(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, checkpoint_interval=2) as journal:
            for i, spec in enumerate(_specs(5)):
                journal.record(spec.digest(), spec.execute())
        raw = [json.loads(line) for line in path.read_text().splitlines()]
        marks = [r for r in raw if r["type"] == "checkpoint"]
        assert [m["completed"] for m in marks] == [2, 4]


class TestCrashRecovery:
    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = _specs(4)
        run_campaign(specs, journal=path)
        with path.open("a") as fh:
            fh.write('{"type": "result", "digest": "abcd", "resu')
        with CampaignJournal(path) as journal:
            assert journal.torn_records == 1
            assert len(journal.replayed) == 4

    def test_kill_mid_batch_then_resume_executes_only_remainder(
        self, tmp_path
    ):
        path = tmp_path / "j.jsonl"
        specs = _specs(8)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(specs, executor=KillingExecutor(3), journal=path)
        with CampaignJournal(path) as journal:
            # Incremental journaling: the three finished runs survived
            # even though the batch itself never returned.
            assert len(journal.replayed) == 3

        counting = CountingExecutor()
        resumed = run_campaign(specs, executor=counting, journal=path)
        assert counting.executed == 5
        assert resumed.metrics.journal_replayed == 3
        assert resumed.metrics.journal_appends == 5

        clean = run_campaign(specs)
        assert [pickle.dumps(r) for r in clean.results] == [
            pickle.dumps(r) for r in resumed.results
        ]

    def test_double_kill_then_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = _specs(8)
        for after in (2, 3):
            with pytest.raises(KeyboardInterrupt):
                run_campaign(
                    specs, executor=KillingExecutor(after), journal=path
                )
        resumed = run_campaign(specs, journal=path)
        assert resumed.metrics.journal_replayed == 5
        clean = run_campaign(specs)
        assert [pickle.dumps(r) for r in clean.results] == [
            pickle.dumps(r) for r in resumed.results
        ]


class TestJournalPolicy:
    def test_environmental_failures_never_journaled(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = _specs(1)[0]
        lost = RunResult(
            observable=None, cycles=0, completed=False,
            failure=RunFailure(kind="worker-lost", message="gone"),
        )
        ok = _specs(2)[1]

        class Mixed(SerialExecutor):
            def map(self, batch):
                results = []
                for i, s in enumerate(batch):
                    result = (
                        lost if s.digest() == spec.digest()
                        else execute_spec_guarded(s)
                    )
                    self._emit(i, result)
                    results.append(result)
                return results

        campaign = run_campaign([spec, ok], executor=Mixed(), journal=path)
        assert campaign.metrics.journal_appends == 1
        with CampaignJournal(path) as journal:
            assert spec.digest() not in journal
            assert ok.digest() in journal
        # The resume re-attempts the lost run and journals it this time.
        resumed = run_campaign([spec, ok], journal=path)
        assert resumed.metrics.journal_replayed == 1
        assert resumed.metrics.journal_appends == 1
        assert resumed.ok

    def test_deterministic_failures_are_journaled(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = _specs(2, max_cycles=20)  # trips the cycle watchdog
        first = run_campaign(specs, journal=path)
        assert first.metrics.journal_appends == 2
        counting = CountingExecutor()
        second = run_campaign(specs, executor=counting, journal=path)
        assert counting.executed == 0
        assert [pickle.dumps(r) for r in first.results] == [
            pickle.dumps(r) for r in second.results
        ]

    def test_cache_hits_are_journaled_too(self, tmp_path):
        from repro.campaign import ResultCache

        cache = ResultCache(tmp_path / "cache")
        specs = _specs(4)
        run_campaign(specs, cache=cache)  # warm the cache, no journal
        path = tmp_path / "j.jsonl"
        campaign = run_campaign(specs, cache=cache, journal=path)
        assert campaign.metrics.cache_hits == 4
        assert campaign.metrics.journal_appends == 4


class TestOpenJournal:
    def test_passthrough_and_coercion(self, tmp_path):
        assert open_journal(None) is None
        journal = CampaignJournal(tmp_path / "a.jsonl")
        assert open_journal(journal) is journal
        journal.close()
        opened = open_journal(tmp_path / "b.jsonl")
        assert isinstance(opened, CampaignJournal)
        opened.close()

    def test_resume_requires_existing_path(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            open_journal(tmp_path / "missing.jsonl", resume=True)

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.close()
        spec = _specs(1)[0]
        with pytest.raises(JournalError, match="closed"):
            journal.record(spec.digest(), spec.execute())
