"""Suite-wide options: the ``slow`` marker gate.

Heavyweight campaigns (full-catalog serial/parallel equivalence, large
grids) are marked ``@pytest.mark.slow`` and skipped by default so tier-1
stays fast; opt in with ``pytest --runslow``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
