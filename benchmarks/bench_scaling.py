"""SCALE — processor-count scaling of the DEF1/DEF2 comparison.

Sweeps the number of contending processors on the critical-section
workload.  Expected shape: all policies degrade with contention (the
lock serializes), DEF2 keeps its release-overlap advantage over DEF1 at
every width, and the advantage does not collapse as contention grows.
"""

from repro.analysis.comparison import sweep
from repro.analysis.report import format_table, ratio
from repro.memsys.config import NET_CACHE
from repro.models.policies import Def1Policy, Def2Policy, SCPolicy
from repro.workloads.locks import critical_section_program

WIDTHS = [2, 3, 4, 6]


def test_scale_processor_count(benchmark, executor):
    points = benchmark.pedantic(
        lambda: sweep(
            parameter_values=WIDTHS,
            program_for=lambda procs: (
                lambda: critical_section_program(procs, 2, private_writes=4)
            ),
            config_for=lambda procs: NET_CACHE.with_overrides(
                network_base_latency=10, network_jitter=3
            ),
            policies=[SCPolicy, Def1Policy, Def2Policy],
            runs=3,
            max_cycles=5_000_000,
            executor=executor,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for point in points:
        sc = point.cycles_of("SC")
        d1 = point.cycles_of("DEF1")
        d2 = point.cycles_of("DEF2")
        rows.append([point.parameter, sc, d1, d2, ratio(d1, d2)])
    print("\n[SCALE] critical sections, cycles vs processor count")
    print(
        format_table(
            ["procs", "SC", "DEF1", "DEF2", "DEF1/DEF2"], rows
        )
    )
    for point in points:
        assert point.cycles_of("DEF2") < point.cycles_of("DEF1"), (
            f"DEF2 lost its advantage at {point.parameter} processors"
        )
    # Work grows with width: each width's DEF2 cycles exceed the previous.
    cycles = [p.cycles_of("DEF2") for p in points]
    assert cycles == sorted(cycles)
