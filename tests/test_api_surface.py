"""Snapshot of the public ``repro.api`` surface.

The facade is the stability contract of the package: its names and
call signatures may only change together with this snapshot, so any
accidental rename, parameter reorder, or keyword-only regression fails
loudly here before it reaches a consumer.

The second half checks the deprecation shims: the legacy call patterns
must still *work* — and must warn.
"""

import inspect
import warnings

import pytest

import repro
import repro.api as api
from repro.litmus.catalog import fig1_dekker
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import NET_NOCACHE
from repro.models.policies import RelaxedPolicy
from repro.sc.verifier import SCVerifier


def _shape(fn):
    """A stable fingerprint of a signature: (name, kind, has-default)."""
    return tuple(
        (p.name, p.kind.name, p.default is not inspect.Parameter.empty)
        for p in inspect.signature(fn).parameters.values()
    )


#: The frozen facade signatures.  A change here is an API break (or an
#: intentional extension): update the snapshot in the same commit and
#: say so in the changelog.
FACADE_SHAPES = {
    "run": (
        ("program", "POSITIONAL_OR_KEYWORD", False),
        ("policy", "POSITIONAL_OR_KEYWORD", False),
        ("machine", "KEYWORD_ONLY", True),
        ("core", "KEYWORD_ONLY", True),
        ("seed", "KEYWORD_ONLY", True),
        ("max_cycles", "KEYWORD_ONLY", True),
        ("faults", "KEYWORD_ONLY", True),
        ("trace", "KEYWORD_ONLY", True),
        ("sanitize", "KEYWORD_ONLY", True),
    ),
    "explore": (
        ("program", "POSITIONAL_OR_KEYWORD", False),
        ("policy", "POSITIONAL_OR_KEYWORD", False),
        ("max_delays", "KEYWORD_ONLY", True),
        ("prune", "KEYWORD_ONLY", True),
        ("machine", "KEYWORD_ONLY", True),
        ("core", "KEYWORD_ONLY", True),
        ("max_runs", "KEYWORD_ONLY", True),
        ("max_cycles", "KEYWORD_ONLY", True),
        ("relaxed_request_channels", "KEYWORD_ONLY", True),
        ("inval_virtual_channel", "KEYWORD_ONLY", True),
        ("executor", "KEYWORD_ONLY", True),
        ("jobs", "KEYWORD_ONLY", True),
        ("trace", "KEYWORD_ONLY", True),
        ("sanitize", "KEYWORD_ONLY", True),
        ("journal", "KEYWORD_ONLY", True),
        ("resume", "KEYWORD_ONLY", True),
        ("progress", "KEYWORD_ONLY", True),
    ),
    "verify_sc": (
        ("program", "POSITIONAL_OR_KEYWORD", False),
        ("outcomes", "POSITIONAL_OR_KEYWORD", True),
        ("max_states", "KEYWORD_ONLY", True),
        ("prune", "KEYWORD_ONLY", True),
    ),
    "check_drf0": (
        ("program", "POSITIONAL_OR_KEYWORD", False),
        ("model", "KEYWORD_ONLY", True),
        ("max_executions", "KEYWORD_ONLY", True),
        ("jobs", "KEYWORD_ONLY", True),
        ("prune", "KEYWORD_ONLY", True),
    ),
    "campaign": (
        ("specs", "POSITIONAL_OR_KEYWORD", False),
        ("executor", "KEYWORD_ONLY", True),
        ("jobs", "KEYWORD_ONLY", True),
        ("cache", "KEYWORD_ONLY", True),
        ("metrics", "KEYWORD_ONLY", True),
        ("label", "KEYWORD_ONLY", True),
        ("run_timeout", "KEYWORD_ONLY", True),
        ("retries", "KEYWORD_ONLY", True),
        ("triage", "KEYWORD_ONLY", True),
        ("journal", "KEYWORD_ONLY", True),
        ("progress", "KEYWORD_ONLY", True),
    ),
}

#: Every name ``repro.api`` exports.  Additions are fine but deliberate:
#: extend the snapshot in the same commit.
EXPORTED_NAMES = frozenset(
    {
        "run", "explore", "verify_sc", "check_drf0", "campaign",
        "Observable", "Program", "Thread", "ThreadBuilder",
        "CampaignJournal", "CampaignMetrics", "CampaignResult",
        "Executor", "JournalError", "ParallelExecutor", "PolicySpec",
        "PreemptionToken", "ResultCache", "RunFailure",
        "RunResult", "RunSpec", "SerialExecutor", "current_token",
        "default_executor", "emit_metrics", "graceful_preemption",
        "open_journal", "preempted_result",
        "program_fingerprint", "register_metrics_hook",
        "run_campaign", "unregister_metrics_hook",
        "BUS_CACHE", "BUS_CACHE_SNOOP", "BUS_NOCACHE", "FIGURE1_CONFIGS",
        "MachineConfig", "NET_CACHE", "NET_CACHE_VC", "NET_NOCACHE",
        "System", "config_by_name",
        "Def1Policy", "Def2Policy", "Def2RPolicy", "RelaxedPolicy",
        "SCPolicy", "core_names", "policy_by_name",
        "LitmusResult", "LitmusRunner", "LitmusTest", "catalog_by_name",
        "fig1_dekker", "fig1_dekker_all_sync", "forwarding_catalog",
        "parse_litmus", "standard_catalog",
        "ConformancePlan", "ConformanceReport", "judge_conformance",
        "plan_conformance", "run_conformance", "VERDICT_BROKEN",
        "VERDICT_NA", "VERDICT_SC", "VERDICT_WEAK",
        "DRF0", "DRF0_R", "DRFReport", "ExplorationReport", "SCVerifier",
        "SCViolation", "SearchStats", "SynchronizationModel",
        "check_program", "enumerate_executions", "enumerate_results",
        "explore_program", "explore_to_fixpoint", "obeys_drf0",
        "verify_weak_ordering",
        "delay_pairs", "describe_delay_set", "minimal_delay_pairs",
        "static_footprints",
        "FaultPlan", "parse_fault_plan", "FORMATS", "TraceEvent",
        "TraceSpec", "crosscheck_run", "format_timeline", "write_trace",
        "ReproBundle", "TriageConfig", "random_drf0_program",
        "random_mixed_sync_program", "random_racy_program",
        "random_spin_program",
        "figure3_sweep", "format_table", "configure_cli_logging",
        "get_logger",
        "METRICS", "MetricsRegistry", "Snapshot", "ProgressReporter",
        "FlightRecorder", "enable_metrics", "disable_metrics",
        "load_snapshot", "serve_metrics", "to_prometheus",
        "write_prometheus",
        # Service tier (lazy, PEP 562).
        "AdmissionQueue", "CircuitBreaker", "JobError", "Rejected",
        "ServiceClient", "ServiceError", "ServiceServer", "Unavailable",
        "VerificationService", "build_job", "read_endpoint",
        "serve_blocking",
    }
)


class TestApiSurface:
    @pytest.mark.parametrize("name", sorted(FACADE_SHAPES))
    def test_facade_signature_matches_snapshot(self, name):
        assert _shape(getattr(api, name)) == FACADE_SHAPES[name]

    def test_exported_names_match_snapshot(self):
        assert set(api.__all__) == EXPORTED_NAMES

    def test_every_export_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_reexported_from_package_root(self):
        for name in ("run", "explore", "verify_sc", "check_drf0", "campaign"):
            assert getattr(repro, name) is getattr(api, name)
            assert name in repro.__all__

    def test_campaign_subpackage_still_importable(self):
        # The facade function shadows the subpackage *attribute*; the
        # import system must still resolve the subpackage itself.
        from repro.campaign import RunSpec  # noqa: F401
        from repro.campaign.spec import RunResult  # noqa: F401


class TestFacadeBehaviour:
    def test_run_accepts_policy_and_machine_names(self):
        program = fig1_dekker().executable_program()
        result = api.run(program, "SC", machine="net_nocache", seed=3)
        assert result.completed
        assert result.observable is not None

    def test_verify_sc_classifies_outcomes(self):
        program = fig1_dekker().executable_program()
        sc_set = api.verify_sc(program)
        assert sc_set
        good = next(iter(sc_set))
        assert api.verify_sc(program, [good]) == []

    def test_check_drf0_flags_the_racy_dekker(self):
        program = fig1_dekker().program
        report = api.check_drf0(program)
        assert not report.obeys

    def test_campaign_metrics_hook_scoped_to_call(self):
        program = fig1_dekker().executable_program()
        spec = api.RunSpec(
            program=program,
            policy=api.PolicySpec.of(RelaxedPolicy),
            config=NET_NOCACHE,
            seed=1,
            max_cycles=100_000,
        )
        seen = []
        api.campaign([spec], metrics=seen.append)
        assert len(seen) == 1
        assert seen[0].runs == 1
        # The hook must be gone after the call.
        api.campaign([spec])
        assert len(seen) == 1


class TestDeprecationShims:
    def test_scverifier_positional_max_states_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="positional"):
            verifier = SCVerifier(500_000)
        program = fig1_dekker().program
        assert verifier.sc_result_set(program)

    def test_scverifier_keyword_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SCVerifier(max_states=500_000)
            SCVerifier()

    def test_explore_program_positional_options_warn_and_work(self):
        program = fig1_dekker().executable_program()
        with pytest.warns(DeprecationWarning, match="positionally"):
            report = api.explore_program(program, RelaxedPolicy, 1)
        assert report.max_delays == 1
        assert report.exhausted

    def test_litmus_runner_positional_options_warn_and_work(self):
        runner = LitmusRunner()
        with pytest.warns(DeprecationWarning, match="positionally"):
            result = runner.run(
                fig1_dekker(), RelaxedPolicy, NET_NOCACHE, 5, 99
            )
        assert result.runs == 5

    def test_litmus_runner_keyword_call_stays_silent(self):
        runner = LitmusRunner()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner.run(fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=3)
