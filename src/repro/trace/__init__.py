"""Cycle-accurate event tracing and run telemetry.

The observability layer of the simulator: a per-simulation
:class:`Tracer` records typed, timestamped :class:`TraceEvent` records
(processor lifecycle, stall windows, cache transitions, reserve bits,
protocol messages, injected faults), :class:`TraceSummary` distills a
stream into campaign-sized telemetry, and :mod:`repro.trace.export`
serializes streams as JSONL or Perfetto-loadable Chrome trace JSON.
:mod:`repro.trace.crosscheck` pays the correctness dividend: the
happens-before relation reconstructed from a trace must agree with the
one the :mod:`repro.hb` module builds from the native execution.
"""

from repro.trace.crosscheck import (
    CrosscheckReport,
    crosscheck_execution,
    crosscheck_run,
    execution_from_trace,
)
from repro.trace.events import CATEGORIES, PHASES, TraceEvent
from repro.trace.export import (
    FORMATS,
    chrome_events,
    format_timeline,
    from_jsonl,
    to_chrome,
    to_jsonl,
    write_trace,
)
from repro.trace.summary import TOP_STALLS, StallSpan, TraceSummary
from repro.trace.tracer import Tracer, TraceSpec

__all__ = [
    "CATEGORIES",
    "PHASES",
    "FORMATS",
    "TOP_STALLS",
    "CrosscheckReport",
    "StallSpan",
    "TraceEvent",
    "TraceSpec",
    "TraceSummary",
    "Tracer",
    "chrome_events",
    "crosscheck_execution",
    "crosscheck_run",
    "execution_from_trace",
    "format_timeline",
    "from_jsonl",
    "to_chrome",
    "to_jsonl",
    "write_trace",
]
