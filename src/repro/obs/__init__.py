"""``repro.obs`` — the runtime metrics and progress subsystem.

The package exposes one process-wide registry, :data:`METRICS`,
disabled by default.  Instrumentation sites across the tree guard
themselves with ``if METRICS.enabled:`` (one attribute load, one falsy
branch — the Tracer's overhead discipline), so a tree that never calls
:func:`enable_metrics` pays nothing measurable.

Quick tour::

    from repro.obs import METRICS, enable_metrics

    enable_metrics()                  # also sets REPRO_OBS for workers
    ... run a campaign ...
    snap = METRICS.snapshot()
    print(to_prometheus(snap))

Exporters (:func:`write_prometheus`, :class:`FlightRecorder`,
:func:`serve_metrics`) live in :mod:`repro.obs.export`; the campaign
heartbeat (:class:`ProgressReporter`) in :mod:`repro.obs.progress`.
"""

from __future__ import annotations

import os

from repro.obs.export import (
    FlightRecorder,
    MetricsServer,
    load_snapshot,
    parse_prometheus,
    serve_metrics,
    to_prometheus,
    write_prometheus,
)
from repro.obs.progress import ProgressReporter, coerce_progress
from repro.obs.registry import (
    ENV_FLAG,
    MetricsRegistry,
    Snapshot,
    exponential_buckets,
)

#: The process-wide registry every instrumentation site bumps.
METRICS = MetricsRegistry()


def enable_metrics(propagate: bool = True) -> MetricsRegistry:
    """Turn :data:`METRICS` on and return it.

    With ``propagate`` (the default) the ``REPRO_OBS`` environment
    variable is set too, so spawn-based pool workers construct their
    registries enabled; fork workers inherit the flag either way.
    """
    METRICS.enable()
    if propagate:
        os.environ[ENV_FLAG] = "1"
    return METRICS


def disable_metrics() -> None:
    """Turn :data:`METRICS` off and clear the worker hand-off."""
    METRICS.disable()
    os.environ.pop(ENV_FLAG, None)


__all__ = [
    "ENV_FLAG",
    "FlightRecorder",
    "METRICS",
    "MetricsRegistry",
    "MetricsServer",
    "ProgressReporter",
    "Snapshot",
    "coerce_progress",
    "disable_metrics",
    "enable_metrics",
    "exponential_buckets",
    "load_snapshot",
    "parse_prometheus",
    "serve_metrics",
    "to_prometheus",
    "write_prometheus",
]
