"""FIG1 — Figure 1: SC violations across the four machine organizations.

Regenerates the figure's content: on each quadrant of
{bus, network} x {no caches, caches}, the Dekker-core litmus shows the
forbidden (0, 0) outcome under relaxed hardware and never under
SC-enforcing hardware.  The table printed per configuration is the
outcome histogram with SC classification.
"""

import pytest

from repro.analysis.report import format_table
from repro.litmus.catalog import fig1_dekker
from repro.memsys.config import BUS_CACHE, BUS_NOCACHE, NET_CACHE, NET_NOCACHE
from repro.models.policies import RelaxedPolicy, SCPolicy

RUNS = 60

#: (config, warm caches) — cache machines need resident lines (Figure 1's
#: "both processors initially have X and Y in their caches").
SETTINGS = [
    (BUS_NOCACHE, False),
    (NET_NOCACHE, False),
    (BUS_CACHE, True),
    (NET_CACHE, True),
]


@pytest.mark.parametrize("config,warm", SETTINGS, ids=lambda v: getattr(v, "name", str(v)))
def test_fig1_relaxed_violates(benchmark, runner, executor, config, warm):
    test = fig1_dekker(warm=warm)

    result = benchmark.pedantic(
        lambda: runner.run(
            test, RelaxedPolicy, config, runs=RUNS, executor=executor
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            test.describe_outcome(outcome),
            count,
            "VIOLATES SC" if outcome in result.sc_violations else "sc",
        ]
        for outcome, count in sorted(result.histogram.items())
    ]
    print(f"\n[FIG1] {config.name} / RELAXED (warm={warm}), {RUNS} runs")
    print(format_table(["outcome", "count", "class"], rows))

    assert result.completed_runs == RUNS
    assert result.forbidden_seen > 0, "the Figure-1 violation must appear"


@pytest.mark.parametrize("config,warm", SETTINGS, ids=lambda v: getattr(v, "name", str(v)))
def test_fig1_sc_hardware_clean(benchmark, runner, executor, config, warm):
    test = fig1_dekker(warm=warm)

    result = benchmark.pedantic(
        lambda: runner.run(
            test, SCPolicy, config, runs=RUNS, executor=executor
        ),
        rounds=1,
        iterations=1,
    )

    print(
        f"\n[FIG1] {config.name} / SC (warm={warm}): outcomes="
        f"{sorted(result.histogram)} — no violation"
    )
    assert result.completed_runs == RUNS
    assert not result.violated_sc
    assert result.forbidden_seen == 0
