"""Unit tests for RunSpec / RunResult / PolicySpec."""

import pickle

import pytest

from repro.campaign import PolicySpec, RunSpec, program_fingerprint
from repro.litmus.catalog import fig1_dekker, message_passing_sync
from repro.memsys.config import NET_CACHE, NET_NOCACHE
from repro.models.base import OrderingPolicy
from repro.models.policies import Def2Policy, Def2RPolicy, RelaxedPolicy, SCPolicy


class TestPolicySpec:
    def test_of_class(self):
        spec = PolicySpec.of(SCPolicy)
        assert spec.name == "SC"
        assert spec.params == ()

    def test_of_instance_and_factory(self):
        assert PolicySpec.of(SCPolicy()) == PolicySpec.of(lambda: SCPolicy())

    def test_of_spec_is_identity(self):
        spec = PolicySpec.of(SCPolicy)
        assert PolicySpec.of(spec) is spec

    def test_of_rejects_non_policy(self):
        with pytest.raises(TypeError):
            PolicySpec.of(lambda: 42)

    def test_build_reconstructs_constructor_state(self):
        spec = PolicySpec.of(Def2Policy(nack_mode=False, miss_bound_while_reserved=2))
        policy = spec.build()
        assert isinstance(policy, Def2Policy)
        assert policy.nack_mode is False
        assert policy.miss_bound_while_reserved == 2

    def test_build_distinguishes_subclasses(self):
        assert isinstance(PolicySpec.of(Def2RPolicy).build(), Def2RPolicy)

    def test_roundtrips_through_pickle(self):
        spec = PolicySpec.of(Def2Policy(nack_mode=False))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.build().nack_mode is False

    def test_ad_hoc_subclass_does_not_shadow_registry(self):
        class Probe(Def2Policy):  # no `name` of its own
            pass

        assert not isinstance(PolicySpec.of(Def2Policy).build(), Probe)


def _spec(seed=1, **kwargs):
    defaults = dict(
        program=fig1_dekker().program,
        policy=PolicySpec.of(RelaxedPolicy),
        config=NET_NOCACHE,
        seed=seed,
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


class TestRunSpec:
    def test_execute_produces_result(self):
        result = _spec().execute()
        assert result.completed
        assert result.observable is not None
        assert result.cycles > 0
        assert result.timings.messages > 0

    def test_execute_is_deterministic(self):
        a, b = _spec(seed=5).execute(), _spec(seed=5).execute()
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_spec_is_picklable(self):
        spec = _spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.execute().observable == spec.execute().observable

    def test_digest_stable(self):
        assert _spec().digest() == _spec().digest()

    def test_digest_varies_with_seed_policy_config(self):
        base = _spec()
        assert base.digest() != _spec(seed=2).digest()
        assert base.digest() != _spec(policy=PolicySpec.of(SCPolicy)).digest()
        assert (
            _spec(
                program=message_passing_sync().program,
                policy=PolicySpec.of(Def2Policy),
                config=NET_CACHE,
            ).digest()
            != base.digest()
        )

    def test_schedule_run_reports_choice_log(self):
        result = _spec(
            config=NET_CACHE.with_overrides(start_skew=0),
            policy=PolicySpec.of(SCPolicy),
            schedule=(),
            max_cycles=200_000,
        ).execute()
        assert result.completed
        assert result.choice_log is not None
        assert len(result.choice_log) > 0


class TestProgramFingerprint:
    def test_same_content_same_fingerprint(self):
        assert program_fingerprint(fig1_dekker().program) == program_fingerprint(
            fig1_dekker().program
        )

    def test_different_content_different_fingerprint(self):
        assert program_fingerprint(fig1_dekker().program) != program_fingerprint(
            message_passing_sync().program
        )
