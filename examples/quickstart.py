"""Quickstart: weak ordering as a contract, in five minutes.

Builds the paper's Figure-1 litmus program, shows that relaxed hardware
violates sequential consistency while SC hardware does not, and that the
*same weak hardware* keeps its SC promise for a data-race-free version
of the program — Definition 2 in action.

Run:  python examples/quickstart.py
"""

from repro import (
    LitmusRunner,
    NET_CACHE,
    Program,
    RelaxedPolicy,
    SCPolicy,
    Def2Policy,
    ThreadBuilder,
    check_program,
)
from repro.litmus import fig1_dekker, fig1_dekker_all_sync


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A program with a data race (Figure 1's Dekker core).
    # ------------------------------------------------------------------
    t0 = ThreadBuilder("P0").store("x", 1).load("r1", "y").build()
    t1 = ThreadBuilder("P1").store("y", 1).load("r2", "x").build()
    program = Program([t0, t1], name="dekker")

    print("DRF0 check of the racy program:")
    print(" ", check_program(program).describe().replace("\n", "\n  "))
    print()

    # ------------------------------------------------------------------
    # 2. Run it on simulated hardware: relaxed vs sequentially consistent.
    # ------------------------------------------------------------------
    runner = LitmusRunner()
    racy = fig1_dekker(warm=True)  # warm caches, as in the paper's figure

    print("Racy Dekker on RELAXED hardware (network + caches):")
    print(" ", runner.run(racy, RelaxedPolicy, NET_CACHE, runs=50)
          .describe().replace("\n", "\n  "))
    print()
    print("Racy Dekker on SC hardware:")
    print(" ", runner.run(racy, SCPolicy, NET_CACHE, runs=50)
          .describe().replace("\n", "\n  "))
    print()

    # ------------------------------------------------------------------
    # 3. The contract: label the accesses as synchronization (making the
    #    program DRF0) and the paper's weakly ordered implementation
    #    (DEF2: counters + reserve bits) appears sequentially consistent.
    # ------------------------------------------------------------------
    drf = fig1_dekker_all_sync(warm=True)
    print("DRF0 (all-sync) Dekker on DEF2 weakly ordered hardware:")
    result = runner.run(drf, Def2Policy, NET_CACHE, runs=50)
    print(" ", result.describe().replace("\n", "\n  "))
    assert not result.violated_sc, "Definition 2 violated?!"
    print()
    print("The forbidden (0,0) outcome never appears: hardware honoured")
    print("its side of the weak-ordering contract.")


if __name__ == "__main__":
    main()
