"""Chaos/soak harness: kill a journaled campaign, resume it, prove it.

The crash-safety claim of :mod:`repro.campaign.journal` is behavioural:
*any* campaign may die at *any* instant — ``SIGKILL`` included — and
re-running it against its journal must finish the remainder and end with
byte-identical results, every spec's result recorded exactly once.  This
module tests that claim against a real subprocess, not a simulated one:

* :class:`ChaosPlan` draws seeded kill points (journal record counts at
  which to strike, and which signal to use);
* :func:`run_supervised` launches the campaign command, watches its
  journal grow, kills it at each planned point, and relaunches it until
  the plan is exhausted — then lets the final attempt run to completion;
* :func:`assert_exactly_once` replays the raw journal and checks each
  expected digest appears exactly once with the byte-exact result;
* :func:`soak` wires the above around ``python -m repro litmus`` with an
  in-process clean baseline.

Kill points are expressed in *journal records*, not wall-clock seconds,
so a plan is meaningful on any machine speed: "kill once 7 results are
durable" lands mid-campaign whether a run takes a millisecond or a
minute.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.journal import _decode_result
from repro.campaign.spec import RunResult

#: Exit code a gracefully preempted CLI campaign reports (EX_TEMPFAIL:
#: "try again later" — here, by resuming from the journal).
EXIT_PREEMPTED = 75


@dataclass(frozen=True)
class KillPoint:
    """Strike once the journal holds ``after_records`` results."""

    after_records: int
    signum: int = signal.SIGKILL

    def describe(self) -> str:
        name = signal.Signals(self.signum).name
        return f"{name} after {self.after_records} journaled result(s)"


@dataclass
class ChaosPlan:
    """A seeded sequence of kill points for one campaign."""

    seed: int
    kills: List[KillPoint]

    @classmethod
    def seeded(
        cls,
        seed: int,
        total_runs: int,
        kills: int = 3,
        signals: Sequence[int] = (signal.SIGKILL, signal.SIGTERM),
    ) -> "ChaosPlan":
        """Draw ``kills`` strictly increasing kill points in
        ``[1, total_runs - 1]``, alternating through ``signals``.

        Increasing points matter: every relaunch starts with all prior
        records already journaled, so a later kill point is reached by
        *new* work, and each attempt makes progress before dying.
        """
        if total_runs < 2:
            raise ValueError("chaos needs a campaign of at least 2 runs")
        rnd = random.Random(seed)
        universe = list(range(1, total_runs))
        count = min(kills, len(universe))
        points = sorted(rnd.sample(universe, count))
        return cls(
            seed=seed,
            kills=[
                KillPoint(after_records=p, signum=signals[i % len(signals)])
                for i, p in enumerate(points)
            ],
        )


@dataclass
class SoakAttempt:
    """One supervised launch of the campaign command."""

    kill: Optional[KillPoint]
    records_at_kill: Optional[int]
    returncode: Optional[int]
    killed: bool

    def describe(self) -> str:
        if self.killed:
            return (
                f"killed ({self.kill.describe()}), journal held "
                f"{self.records_at_kill}, exit {self.returncode}"
            )
        return f"ran to completion, exit {self.returncode}"


@dataclass
class SoakReport:
    """What the harness did and whether the claim held."""

    plan: ChaosPlan
    journal: Path
    attempts: List[SoakAttempt] = field(default_factory=list)
    #: Result records in the journal after the final attempt.
    journaled_results: int = 0
    #: Torn (unparseable) lines tolerated across all loads.
    torn_records: int = 0
    exactly_once: bool = False
    byte_identical: bool = False

    @property
    def ok(self) -> bool:
        return self.exactly_once and self.byte_identical

    def describe(self) -> str:
        lines = [
            f"soak: {len(self.attempts)} attempt(s), "
            f"{len(self.plan.kills)} kill(s) planned (seed {self.plan.seed})"
        ]
        for i, attempt in enumerate(self.attempts):
            lines.append(f"  attempt {i}: {attempt.describe()}")
        lines.append(
            f"  journal: {self.journaled_results} result(s), "
            f"{self.torn_records} torn line(s)"
        )
        lines.append(
            "  exactly-once: " + ("PASS" if self.exactly_once else "FAIL")
        )
        lines.append(
            "  byte-identical: " + ("PASS" if self.byte_identical else "FAIL")
        )
        return "\n".join(lines)


def _journal_records(path: Path) -> Dict[str, List[RunResult]]:
    """Every decodable result record, per digest, in file order.

    Reads the *raw* lines rather than going through
    :class:`CampaignJournal` — the whole point is to check what is
    actually on disk, duplicates and all.
    """
    records: Dict[str, List[RunResult]] = {}
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return records
    for line in raw.splitlines():
        try:
            record = json.loads(line.decode("utf-8"))
            if record.get("type") != "result":
                continue
            records.setdefault(record["digest"], []).append(
                _decode_result(record["result"])
            )
        except Exception:
            continue
    return records


def _count_results(path: Path) -> int:
    """A cheap poll: complete result lines currently durable."""
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return 0
    return sum(
        1
        for line in raw.splitlines()
        if line.startswith(b'{"digest"') or b'"type": "result"' in line
    )


def run_supervised(
    argv: Sequence[str],
    journal: Union[str, Path],
    plan: ChaosPlan,
    env: Optional[Dict[str, str]] = None,
    poll_interval: float = 0.01,
    attempt_timeout: float = 300.0,
) -> List[SoakAttempt]:
    """Run ``argv`` under the chaos plan: kill, relaunch, repeat.

    Each planned kill gets one launch: the supervisor polls the journal
    until it holds the kill point's record count, strikes, and reaps the
    child.  A child that finishes before its kill point is recorded as a
    completed attempt and ends the plan early (the campaign is done).
    After the plan, one final unkilled launch runs to completion.
    """
    journal = Path(journal)
    attempts: List[SoakAttempt] = []
    finished = False
    for kill in plan.kills:
        proc = subprocess.Popen(
            list(argv),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        killed = False
        records = 0
        deadline = time.monotonic() + attempt_timeout
        try:
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                records = _count_results(journal)
                if records >= kill.after_records:
                    proc.send_signal(kill.signum)
                    killed = True
                    break
                time.sleep(poll_interval)
            else:
                proc.kill()
            returncode = proc.wait(timeout=attempt_timeout)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.kill()
                proc.wait()
        attempts.append(
            SoakAttempt(
                kill=kill if killed else None,
                records_at_kill=records if killed else None,
                returncode=returncode,
                killed=killed,
            )
        )
        if not killed and returncode == 0:
            # The campaign outran the kill point; nothing left to kill.
            finished = True
            break
    if not finished:
        completed = subprocess.run(
            list(argv),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=attempt_timeout,
        )
        attempts.append(
            SoakAttempt(
                kill=None,
                records_at_kill=None,
                returncode=completed.returncode,
                killed=False,
            )
        )
    return attempts


def assert_exactly_once(
    journal: Union[str, Path],
    expected: Dict[str, RunResult],
) -> None:
    """The journal must hold each expected digest exactly once, with the
    byte-exact pickled result; raises ``AssertionError`` otherwise."""
    records = _journal_records(Path(journal))
    duplicated = sorted(d for d, r in records.items() if len(r) > 1)
    assert not duplicated, (
        f"{len(duplicated)} digest(s) journaled more than once: "
        f"{duplicated[:3]}..."
    )
    missing = sorted(set(expected) - set(records))
    assert not missing, (
        f"{len(missing)} expected digest(s) missing from the journal"
    )
    for digest, result in expected.items():
        got = records[digest][0]
        assert pickle.dumps(got) == pickle.dumps(result), (
            f"journaled result for {digest[:12]} differs from the "
            f"clean-run baseline"
        )


def default_repo_env() -> Dict[str, str]:
    """A child environment whose ``PYTHONPATH`` resolves this package."""
    src = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{existing}" if existing else str(src)
    )
    return env


def soak(
    test: str = "fig1_dekker",
    policy: str = "RELAXED",
    machine: str = "net_nocache",
    runs: int = 24,
    base_seed: int = 12345,
    kills: int = 3,
    seed: int = 0,
    workdir: Union[str, Path, None] = None,
    python: str = sys.executable,
    attempt_timeout: float = 300.0,
    jobs: int = 1,
    progress=None,
) -> SoakReport:
    """Soak one litmus campaign: seeded kills, resumes, exact-once proof.

    Computes the clean baseline in-process (no journal; ``jobs``
    parallelises it and is forwarded to the supervised child, which
    exercises kill/resume under the parallel executor too), then
    drives ``python -m repro litmus ... --journal J`` through
    :func:`run_supervised` under a :class:`ChaosPlan`, and finally
    checks the journal against the baseline with
    :func:`assert_exactly_once` — reported, not raised, so callers can
    print :meth:`SoakReport.describe` before deciding to fail.
    ``progress`` prints a heartbeat while the baseline runs.
    """
    import tempfile

    from repro.campaign import CampaignJournal, PolicySpec, run_campaign
    from repro.litmus.runner import LitmusRunner
    from repro.memsys.config import config_by_name
    from repro.models.policies import policy_by_name

    workdir = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="soak-"))
    workdir.mkdir(parents=True, exist_ok=True)
    journal_path = workdir / "soak-journal.jsonl"

    # The baseline mirrors the CLI's spec construction exactly: same
    # catalog test, same policy coercion, same seed stream — so digests
    # agree between this process and the supervised child.
    from repro.cli import _load_test

    runner = LitmusRunner()
    specs = runner.campaign_specs(
        _load_test(test),
        PolicySpec.of(lambda: policy_by_name(policy)),
        config_by_name(machine),
        runs,
        base_seed,
    )
    baseline = run_campaign(
        specs, jobs=jobs, label="soak-baseline", progress=progress
    )
    expected = {
        spec.digest(): result
        for spec, result in zip(specs, baseline.results)
    }

    plan = ChaosPlan.seeded(seed, total_runs=len(specs), kills=kills)
    argv = [
        python, "-m", "repro", "litmus", test,
        "--policy", policy,
        "--machine", machine,
        "--runs", str(runs),
        "--seed", str(base_seed),
        "--journal", str(journal_path),
    ]
    if jobs > 1:
        argv += ["--jobs", str(jobs)]
    attempts = run_supervised(
        argv,
        journal_path,
        plan,
        env=default_repo_env(),
        attempt_timeout=attempt_timeout,
    )

    report = SoakReport(plan=plan, journal=journal_path, attempts=attempts)
    final = CampaignJournal(journal_path)
    report.journaled_results = len(final.replayed)
    report.torn_records = final.torn_records
    final.close()
    try:
        assert_exactly_once(journal_path, expected)
        report.exactly_once = True
        report.byte_identical = True
    except AssertionError:
        records = _journal_records(journal_path)
        report.exactly_once = all(len(r) == 1 for r in records.values()) and (
            set(expected) <= set(records)
        )
        report.byte_identical = False
    return report
