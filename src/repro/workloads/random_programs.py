"""Random program generators for property-based testing.

Three families:

* :func:`random_racy_program` — unconstrained loads/stores over a small
  location pool.  Almost always full of data races; used to show relaxed
  hardware violating SC and the DRF0 checker rejecting.
* :func:`random_drf0_program` — every shared data location is owned by
  exactly one lock, and every access to it happens inside that lock's
  critical section.  Data-race-free **by construction**, so Definition 2
  requires DEF1/DEF2/DEF2-R hardware to make these appear sequentially
  consistent — the empirical form of the Appendix B theorem.
* :func:`random_spin_program` — spin loops on flags a partner thread may
  or may not ever set.  Some seeds deterministically never terminate,
  which is exactly what the failure-triage pipeline (watchdog ->
  deadlock diagnosis -> shrinking -> repro bundle) needs as fuel.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.core.program import Program, ThreadBuilder
from repro.workloads.locks import acquire_test_and_set, release


def random_racy_program(
    seed: int,
    num_procs: int = 2,
    ops_per_proc: int = 4,
    locations: Sequence[str] = ("x", "y"),
    write_bias: float = 0.5,
) -> Program:
    """Straight-line random loads and stores (racy on purpose)."""
    rng = random.Random(seed)
    threads = []
    for proc in range(num_procs):
        builder = ThreadBuilder(f"P{proc}")
        for op_idx in range(ops_per_proc):
            loc = rng.choice(list(locations))
            if rng.random() < write_bias:
                builder.store(loc, rng.randint(1, 9))
            else:
                builder.load(f"r{op_idx}", loc)
        threads.append(builder.build())
    return Program(threads, name=f"racy_s{seed}")


def random_drf0_program(
    seed: int,
    num_procs: int = 2,
    sections_per_proc: int = 2,
    ops_per_section: int = 2,
    num_locks: int = 2,
    locations_per_lock: int = 2,
    write_bias: float = 0.5,
) -> Program:
    """Lock-disciplined random program (DRF0 by construction).

    Lock ``L<k>`` owns locations ``v<k>_0 .. v<k>_{locations_per_lock-1}``;
    every access to an owned location occurs between that lock's acquire
    (TestAndSet spin) and release (Unset).
    """
    rng = random.Random(seed)
    ownership: Dict[int, List[str]] = {
        k: [f"v{k}_{j}" for j in range(locations_per_lock)] for k in range(num_locks)
    }
    threads = []
    for proc in range(num_procs):
        builder = ThreadBuilder(f"P{proc}")
        reg = 0
        for _section in range(sections_per_proc):
            lock_id = rng.randrange(num_locks)
            acquire_test_and_set(builder, f"L{lock_id}")
            for _op in range(ops_per_section):
                loc = rng.choice(ownership[lock_id])
                if rng.random() < write_bias:
                    builder.store(loc, rng.randint(1, 9))
                else:
                    builder.load(f"r{reg}", loc)
                    reg += 1
            release(builder, f"L{lock_id}")
        threads.append(builder.build())
    return Program(threads, name=f"drf0_s{seed}")


def random_spin_program(
    seed: int,
    num_procs: int = 2,
    flags: int = 3,
    set_bias: float = 0.6,
) -> Program:
    """Spinners on flags that a partner *may or may not* ever set.

    Each processor picks one flag to spin on (``SyncLoad``/``beq``) and
    sets a random subset of the others first.  Whether the program
    terminates is a pure function of the seed: if every spun-on flag is
    set by some thread, all spinners exit; otherwise the run trips the
    cycle watchdog and signs as ``sim-timeout`` — deterministic fuel for
    shrinking and triage (the hang is a property of the *program*, not
    of the timing seed).
    """
    rng = random.Random(seed)
    flag_names = [f"f{i}" for i in range(flags)]
    threads = []
    for proc in range(num_procs):
        builder = ThreadBuilder(f"P{proc}")
        spin_on = rng.choice(flag_names)
        for flag in flag_names:
            if flag != spin_on and rng.random() < set_bias:
                builder.sync_store(flag, 1)
        builder.label("spin")
        builder.sync_load("r0", spin_on)
        builder.beq("r0", 0, "spin")
        builder.load("r1", "x")
        threads.append(builder.build())
    return Program(threads, name=f"spin_s{seed}")


def random_mixed_sync_program(
    seed: int,
    num_procs: int = 2,
    ops_per_proc: int = 4,
) -> Program:
    """Random programs mixing data and *all-sync* location accesses.

    Locations ``s*`` are only ever touched by synchronization operations
    (so conflicting accesses to them are so-ordered); locations ``x*``
    are only read.  Also DRF0 by construction, but exercising sync-reads,
    sync-writes and RMWs rather than lock discipline.
    """
    rng = random.Random(seed)
    sync_locs = ["s0", "s1"]
    read_locs = ["x0", "x1"]
    threads = []
    for proc in range(num_procs):
        builder = ThreadBuilder(f"P{proc}")
        for op_idx in range(ops_per_proc):
            roll = rng.random()
            if roll < 0.3:
                builder.sync_store(rng.choice(sync_locs), rng.randint(1, 9))
            elif roll < 0.55:
                builder.sync_load(f"r{op_idx}", rng.choice(sync_locs))
            elif roll < 0.75:
                builder.test_and_set(f"r{op_idx}", rng.choice(sync_locs))
            else:
                builder.load(f"r{op_idx}", rng.choice(read_locs))
        threads.append(builder.build())
    return Program(threads, name=f"mixed_sync_s{seed}")
