"""Traces ride the campaign layer: specs carry TraceSpec in, results
carry events and summaries out — identically serial and parallel."""

import json
import pickle

from repro.campaign import (
    ParallelExecutor,
    PolicySpec,
    RunSpec,
    SerialExecutor,
    run_campaign,
)
from repro.litmus.catalog import fig1_dekker_all_sync as fig1_dekker_sync
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import NET_CACHE
from repro.models.policies import Def2Policy
from repro.trace import TraceSpec


def traced_specs(runs=4, trace=TraceSpec()):
    program = fig1_dekker_sync().executable_program()
    return [
        RunSpec(
            program=program,
            policy=PolicySpec.of(Def2Policy),
            config=NET_CACHE,
            seed=seed,
            trace=trace,
        )
        for seed in range(runs)
    ]


class TestRunResultCarriesTrace:
    def test_traced_spec_returns_events_and_summary(self):
        (result,) = run_campaign(traced_specs(runs=1)).results
        assert result.ok
        assert result.trace_events
        assert result.trace_summary is not None
        assert result.trace_summary.events_recorded == len(result.trace_events)

    def test_untraced_spec_returns_none(self):
        spec = traced_specs(runs=1)[0]
        untraced = RunSpec(
            program=spec.program, policy=spec.policy,
            config=spec.config, seed=spec.seed,
        )
        (result,) = run_campaign([untraced]).results
        assert result.trace_events is None
        assert result.trace_summary is None

    def test_events_only_spec(self):
        specs = traced_specs(runs=1, trace=TraceSpec(summary=False))
        (result,) = run_campaign(specs).results
        assert result.trace_events
        assert result.trace_summary is None

    def test_summary_only_spec(self):
        specs = traced_specs(runs=1, trace=TraceSpec(events=False))
        (result,) = run_campaign(specs).results
        assert result.trace_events is None
        assert result.trace_summary is not None

    def test_traced_result_pickles(self):
        (result,) = run_campaign(traced_specs(runs=1)).results
        assert pickle.loads(pickle.dumps(result)) == result


class TestSerialParallelTracedEquivalence:
    def test_traced_results_value_identical(self):
        # Value equality, not pickle-byte equality: traced events cross
        # the worker boundary one run at a time, so cross-run string
        # sharing differs from the serial path even though every field
        # matches.  (Byte identity across cache round trips is covered
        # for untraced results in test_cache.py.)
        specs = traced_specs()
        serial = run_campaign(specs, executor=SerialExecutor())
        with ParallelExecutor(jobs=2) as executor:
            parallel = run_campaign(specs, executor=executor)
        assert serial.results == parallel.results
        assert (
            serial.metrics.trace_summary == parallel.metrics.trace_summary
        )


class TestCampaignMetricsSummary:
    def test_metrics_fold_per_run_summaries(self):
        campaign = run_campaign(traced_specs(runs=3), label="traced")
        merged = campaign.metrics.trace_summary
        assert merged is not None
        assert merged.runs == 3
        assert merged.events_recorded == sum(
            len(r.trace_events) for r in campaign.results
        )

    def test_untraced_campaign_has_no_summary(self):
        spec = traced_specs(runs=1)[0]
        untraced = RunSpec(
            program=spec.program, policy=spec.policy,
            config=spec.config, seed=spec.seed,
        )
        campaign = run_campaign([untraced])
        assert campaign.metrics.trace_summary is None

    def test_metrics_to_dict_json_safe(self):
        campaign = run_campaign(traced_specs(runs=2), label="traced")
        record = json.loads(json.dumps(campaign.metrics.to_dict()))
        assert record["trace_summary"]["runs"] == 2

    def test_describe_mentions_trace(self):
        campaign = run_campaign(traced_specs(runs=2), label="traced")
        assert "traced:" in campaign.metrics.describe()


class TestLitmusTracePlumbing:
    def test_runner_collects_per_run_traces(self):
        result = LitmusRunner().run(
            fig1_dekker_sync(), Def2Policy, NET_CACHE, runs=3,
            trace=TraceSpec(),
        )
        assert len(result.run_traces) == 3
        assert [label for label, _ in result.run_traces] == [
            "run0", "run1", "run2",
        ]
        assert all(events for _, events in result.run_traces)
        assert result.trace_summary.runs == 3

    def test_untraced_runner_result_stays_lean(self):
        result = LitmusRunner().run(
            fig1_dekker_sync(), Def2Policy, NET_CACHE, runs=2
        )
        assert result.run_traces == []
        assert result.trace_summary is None

    def test_tracing_does_not_perturb_outcomes(self):
        plain = LitmusRunner().run(
            fig1_dekker_sync(), Def2Policy, NET_CACHE, runs=5, base_seed=3
        )
        traced = LitmusRunner().run(
            fig1_dekker_sync(), Def2Policy, NET_CACHE, runs=5, base_seed=3,
            trace=TraceSpec(),
        )
        assert plain.histogram == traced.histogram
        assert plain.mean_cycles == traced.mean_cycles

    def test_ring_bound_flags_truncation(self):
        result = LitmusRunner().run(
            fig1_dekker_sync(), Def2Policy, NET_CACHE, runs=1,
            trace=TraceSpec(ring=10),
        )
        (_, events), = result.run_traces
        assert len(events) == 10
        assert result.trace_summary.events_dropped > 0
