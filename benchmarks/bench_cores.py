"""CORES — simple vs pipelined core, cost and observable effect.

The pipelined core buys parallelized-sequential-composition reordering
(overlapping accesses, store-to-load forwarding) with extra bookkeeping
per issue: a scoreboard sweep, a forward scan over the window, and slot
accounting when traced.  This benchmark runs the same litmus campaign on
both cores and prints wall-clock, mean cycle count, and forward counts,
then asserts the contract both directions:

* the pipelined core must actually overlap — mean cycles strictly below
  the simple core's on the store-forwarding battery under a weak policy;
* the bookkeeping must stay cheap — campaign wall-clock within 2x of
  the simple core's.
"""

import time

from repro.litmus.catalog import (
    store_forward_chain,
    store_forward_dekker,
)
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import NET_CACHE
from repro.memsys.system import System
from repro.models.policies import policy_by_name

RUNS = 40
BASE_SEED = 7
TESTS = (store_forward_dekker, store_forward_chain)


def _campaign(core):
    runner = LitmusRunner()
    results = []
    for make_test in TESTS:
        results.append(
            runner.run(
                make_test(),
                lambda: policy_by_name("DEF1", core=core),
                NET_CACHE,
                runs=RUNS,
                base_seed=BASE_SEED,
            )
        )
    return results


def _timed(core):
    start = time.perf_counter()
    results = _campaign(core)
    return time.perf_counter() - start, results


def _forward_count(core, seeds=range(1, 6)):
    total = 0
    for make_test in TESTS:
        for seed in seeds:
            system = System(
                make_test().program,
                policy_by_name("DEF1", core=core),
                NET_CACHE,
                seed=seed,
            )
            system.run()
            total += system.stats.count("core.forwards")
    return total


def test_core_cost_and_overlap(benchmark):
    _campaign("simple")  # warm imports and caches outside the timed region

    simple_s, simple = benchmark.pedantic(
        lambda: _timed("simple"), rounds=1, iterations=1
    )
    pipelined_s, pipelined = _timed("pipelined")

    simple_cycles = sum(r.mean_cycles for r in simple) / len(simple)
    pipelined_cycles = sum(r.mean_cycles for r in pipelined) / len(pipelined)
    forwards = _forward_count("pipelined")

    print(f"\n[CORES] {len(TESTS)}x{RUNS}-run DEF1 campaign")
    print(f"  simple:     {simple_s * 1e3:8.2f} ms   "
          f"mean {simple_cycles:6.1f} cycles")
    print(f"  pipelined:  {pipelined_s * 1e3:8.2f} ms   "
          f"mean {pipelined_cycles:6.1f} cycles   "
          f"({forwards} forwards over 5 seeds)")

    # Overlap is real: the issue window shortens the critical path.
    assert pipelined_cycles < simple_cycles
    assert forwards > 0
    # And affordable: same order of magnitude in wall-clock.
    assert pipelined_s < simple_s * 2.0
    assert _forward_count("simple") == 0
