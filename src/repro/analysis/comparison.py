"""Quantitative policy comparison — the study Section 7 calls for.

"A quantitative performance analysis comparing implementations for the
old and new definitions of weak ordering would provide useful insight."
:func:`compare_policies` runs one workload across a set of ordering
policies (same seeds, same machine) and reports execution time, stall
breakdowns, and protocol traffic; :func:`sweep` does it across a
parameter axis for crossover hunting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.campaign import Executor, PolicySpec, RunSpec, run_campaign
from repro.core.program import Program
from repro.memsys.config import MachineConfig, NET_CACHE
from repro.models.base import OrderingPolicy
from repro.sim.rng import seed_stream
from repro.sim.stats import StallReason

PolicyFactory = Callable[[], OrderingPolicy]


@dataclass
class PolicyComparison:
    """Aggregated runs of one policy on one workload."""

    policy_name: str
    runs: int
    completed_runs: int
    mean_cycles: float
    mean_stall_cycles: float
    stall_by_reason: Dict[StallReason, float] = field(default_factory=dict)
    mean_messages: float = 0.0
    mean_sync_nacks: float = 0.0

    def describe(self) -> str:
        stalls = ", ".join(
            f"{reason.value}={cycles:.0f}"
            for reason, cycles in sorted(
                self.stall_by_reason.items(), key=lambda kv: -kv[1]
            )
            if cycles >= 0.5
        )
        return (
            f"{self.policy_name:8s} cycles={self.mean_cycles:8.1f} "
            f"stalls={self.mean_stall_cycles:8.1f} msgs={self.mean_messages:7.1f}"
            + (f"  [{stalls}]" if stalls else "")
        )


def compare_policies(
    program_factory: Callable[[], Program],
    policies: Sequence[PolicyFactory],
    config: MachineConfig = NET_CACHE,
    runs: int = 5,
    base_seed: int = 99,
    max_cycles: int = 2_000_000,
    executor: Optional[Executor] = None,
    jobs: int = 1,
) -> List[PolicyComparison]:
    """Run the workload under each policy over the same seed stream.

    All (policy, seed) runs form one flat campaign, so a parallel
    executor overlaps policies as well as seeds.
    """
    seeds = list(seed_stream(base_seed, runs))
    policy_specs = [PolicySpec.of(make_policy) for make_policy in policies]
    specs = [
        RunSpec(
            program=program_factory(),
            policy=policy_spec,
            config=config,
            seed=seed,
            max_cycles=max_cycles,
        )
        for policy_spec in policy_specs
        for seed in seeds
    ]
    campaign = run_campaign(
        specs, executor=executor, jobs=jobs, label="compare_policies"
    )

    results: List[PolicyComparison] = []
    for i, policy_spec in enumerate(policy_specs):
        block = campaign.results[i * runs : (i + 1) * runs]
        total_cycles = 0.0
        total_stalls = 0.0
        total_messages = 0.0
        total_nacks = 0.0
        by_reason: Dict[StallReason, float] = {}
        completed = 0
        for run in block:
            if not run.completed:
                continue
            completed += 1
            total_cycles += run.cycles
            total_stalls += run.timings.stall_cycles
            total_messages += run.timings.messages
            total_nacks += run.timings.sync_nacks
            for reason, cycles in run.timings.stall_by_reason:
                by_reason[reason] = by_reason.get(reason, 0.0) + cycles
        n = max(completed, 1)
        results.append(
            PolicyComparison(
                policy_name=policy_spec.name,
                runs=runs,
                completed_runs=completed,
                mean_cycles=total_cycles / n,
                mean_stall_cycles=total_stalls / n,
                stall_by_reason={r: c / n for r, c in by_reason.items()},
                mean_messages=total_messages / n,
                mean_sync_nacks=total_nacks / n,
            )
        )
    return results


@dataclass
class SweepPoint:
    """One axis value of a parameter sweep."""

    parameter: int
    comparisons: List[PolicyComparison]

    def cycles_of(self, policy_name: str) -> Optional[float]:
        for comparison in self.comparisons:
            if comparison.policy_name == policy_name:
                return comparison.mean_cycles
        return None


def sweep(
    parameter_values: Iterable[int],
    program_for: Callable[[int], Callable[[], Program]],
    config_for: Callable[[int], MachineConfig],
    policies: Sequence[PolicyFactory],
    runs: int = 5,
    base_seed: int = 99,
    max_cycles: int = 2_000_000,
    executor: Optional[Executor] = None,
    jobs: int = 1,
) -> List[SweepPoint]:
    """Compare policies at each parameter value.

    ``program_for(v)`` returns a program factory for axis value ``v``;
    ``config_for(v)`` the machine configuration (either may ignore ``v``).
    """
    points: List[SweepPoint] = []
    for value in parameter_values:
        comparisons = compare_policies(
            program_factory=program_for(value),
            policies=policies,
            config=config_for(value),
            runs=runs,
            base_seed=base_seed,
            max_cycles=max_cycles,
            executor=executor,
            jobs=jobs,
        )
        points.append(SweepPoint(parameter=value, comparisons=comparisons))
    return points
