"""Unit tests for the Shasha-Snir delay-set analysis."""

import pytest

from repro.core.program import Program, ThreadBuilder
from repro.delayset.analysis import (
    NotStraightLineError,
    conflict_graph,
    delay_pairs,
    describe_delay_set,
    minimal_delay_pairs,
    static_accesses,
)


def dekker() -> Program:
    t0 = ThreadBuilder("P0").store("x", 1).load("r1", "y").build()
    t1 = ThreadBuilder("P1").store("y", 1).load("r2", "x").build()
    return Program([t0, t1], name="dekker")


def message_passing() -> Program:
    t0 = ThreadBuilder("P0").store("x", 42).store("f", 1).build()
    t1 = ThreadBuilder("P1").load("r1", "f").load("r2", "x").build()
    return Program([t0, t1], name="mp")


def independent() -> Program:
    t0 = ThreadBuilder("P0").store("a", 1).store("b", 1).build()
    t1 = ThreadBuilder("P1").store("c", 1).load("r", "c").build()
    return Program([t0, t1], name="independent")


class TestStaticAccesses:
    def test_extraction(self):
        per_thread = static_accesses(dekker())
        assert [len(t) for t in per_thread] == [2, 2]
        assert per_thread[0][0].location == "x"
        assert per_thread[0][0].kind.writes_memory

    def test_local_instructions_skipped(self):
        program = Program(
            [ThreadBuilder("P0").mov("a", 1).store("x", "a").nop().build()]
        )
        per_thread = static_accesses(program)
        assert len(per_thread[0]) == 1
        assert per_thread[0][0].pos == 1

    def test_branches_rejected(self):
        program = Program(
            [ThreadBuilder("P0").label("l").load("r", "x").beq("r", 0, "l").build()]
        )
        with pytest.raises(NotStraightLineError):
            static_accesses(program)


class TestConflictGraph:
    def test_dekker_graph_shape(self):
        graph = conflict_graph(dekker())
        assert graph.number_of_nodes() == 4
        program_edges = [
            e for e in graph.edges(data=True) if e[2]["kind"] == "program"
        ]
        conflict_edges = [
            e for e in graph.edges(data=True) if e[2]["kind"] == "conflict"
        ]
        assert len(program_edges) == 2
        assert len(conflict_edges) == 4  # two conflicts, both directions

    def test_no_conflict_edges_for_disjoint_locations(self):
        graph = conflict_graph(independent())
        assert all(d["kind"] == "program" for _, _, d in graph.edges(data=True))


class TestDelayPairs:
    def test_dekker_needs_both_pairs(self):
        delays = delay_pairs(dekker())
        assert len(delays) == 2
        procs = {a.proc for a, _ in delays}
        assert procs == {0, 1}

    def test_mp_needs_both_pairs(self):
        delays = delay_pairs(message_passing())
        assert len(delays) == 2

    def test_independent_program_needs_none(self):
        assert delay_pairs(independent()) == set()

    def test_single_thread_needs_none(self):
        program = Program(
            [ThreadBuilder("P0").store("x", 1).load("r", "x").build()]
        )
        assert delay_pairs(program) == set()

    def test_one_sided_conflict_needs_none(self):
        """P1 only reads x once: no cycle, no delays."""
        program = Program(
            [
                ThreadBuilder("P0").store("x", 1).store("y", 1).build(),
                ThreadBuilder("P1").load("r", "x").build(),
            ]
        )
        assert delay_pairs(program) == set()

    def test_iriw_reader_pairs_delayed(self):
        t0 = ThreadBuilder("P0").store("x", 1).build()
        t1 = ThreadBuilder("P1").store("y", 1).build()
        t2 = ThreadBuilder("P2").load("r1", "x").load("r2", "y").build()
        t3 = ThreadBuilder("P3").load("r3", "y").load("r4", "x").build()
        delays = delay_pairs(Program([t0, t1, t2, t3], name="iriw"))
        delayed_procs = {a.proc for a, _ in delays}
        assert delayed_procs == {2, 3}  # only the readers have po pairs


class TestMinimalDelayPairs:
    def test_minimal_subset_of_sound(self):
        for program in (dekker(), message_passing(), independent()):
            minimal = minimal_delay_pairs(program)
            sound = delay_pairs(program)
            assert minimal <= sound

    def test_dekker_minimal_equals_sound(self):
        assert minimal_delay_pairs(dekker()) == delay_pairs(dekker())

    def test_mp_minimal_equals_sound(self):
        assert minimal_delay_pairs(message_passing()) == delay_pairs(
            message_passing()
        )


class TestDescribe:
    def test_empty(self):
        assert "empty" in describe_delay_set(set())

    def test_nonempty_lists_pairs(self):
        text = describe_delay_set(delay_pairs(dekker()))
        assert "2 pair(s)" in text
        assert "globally perform" in text
