"""Ordering policies: RELAXED, SC, DEF1, DEF2, DEF2-R."""

from repro.models.base import BlockKind, OrderingPolicy
from repro.models.policies import (
    AllSyncPolicy,
    Def1Policy,
    Def2Policy,
    Def2RPolicy,
    RP3FencePolicy,
    RelaxedPolicy,
    SCPolicy,
    policy_by_name,
)

__all__ = [
    "AllSyncPolicy",
    "BlockKind",
    "Def1Policy",
    "Def2Policy",
    "Def2RPolicy",
    "OrderingPolicy",
    "RP3FencePolicy",
    "RelaxedPolicy",
    "SCPolicy",
    "policy_by_name",
]
