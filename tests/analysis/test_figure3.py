"""Unit tests for the Figure 3 release-stall analysis."""

import pytest

from repro.analysis.figure3 import (
    analyze_release_stall,
    figure3_sweep,
)
from repro.memsys.config import NET_CACHE
from repro.models.policies import Def1Policy, Def2Policy


class TestAnalyzeReleaseStall:
    def test_reports_complete_runs(self):
        report = analyze_release_stall(Def1Policy(), seed=3)
        assert report.completed
        assert report.policy_name == "DEF1"
        assert report.total_cycles > 0
        assert report.acquirer_finish > 0

    def test_def1_release_stall_positive(self):
        """DEF1 must wait for the pending data writes at the Unset."""
        report = analyze_release_stall(Def1Policy(), seed=3)
        assert report.release_stall > 0

    def test_describe(self):
        report = analyze_release_stall(Def2Policy(), seed=3)
        assert "DEF2" in report.describe()


class TestFigure3Sweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure3_sweep(latencies=[4, 32], seeds=[1, 2, 3])

    def test_row_per_latency(self, rows):
        assert [r.network_latency for r in rows] == [4, 32]

    def test_def1_release_stall_grows_with_latency(self, rows):
        assert rows[1].def1_release_stall > rows[0].def1_release_stall

    def test_def2_releaser_finishes_earlier_at_high_latency(self, rows):
        """The paper's headline: P0 gains under DEF2 as latency grows."""
        assert rows[1].def2_releaser_finish < rows[1].def1_releaser_finish

    def test_both_acquirers_stall(self, rows):
        """'P0 but not P1 gains an advantage': P1 waits under both."""
        for row in rows:
            assert row.def1_acquirer_finish > 0
            assert row.def2_acquirer_finish > 0
