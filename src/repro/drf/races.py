"""Data races: conflicting accesses unordered by happens-before.

The paper motivates DRF0 as "a formalization that prohibits data races"
and points to Netzer & Miller's contemporaneous work on locating races.
This module detects and reports races in a *single* (idealized, possibly
augmented) execution; :mod:`repro.drf.drf0` quantifies over all idealized
executions to decide the program-level property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.execution import Execution
from repro.core.operation import MemoryOp
from repro.drf.models import DRF0, SynchronizationModel
from repro.hb.augment import augment_execution
from repro.hb.conflict import conflicting_pairs
from repro.hb.relations import HappensBefore, build_happens_before


@dataclass(frozen=True)
class Race:
    """A pair of conflicting accesses unordered by happens-before."""

    first: MemoryOp
    second: MemoryOp

    def describe(self) -> str:
        return (
            f"data race on {self.first.location!r}: {self.first!r} (P{self.first.proc}) "
            f"and {self.second!r} (P{self.second.proc}) are unordered by happens-before"
        )

    @property
    def location(self) -> str:
        return self.first.location


def find_races(
    execution: Execution,
    model: SynchronizationModel = DRF0,
    hb: Optional[HappensBefore] = None,
    augment: bool = True,
    initial_memory: Optional[dict] = None,
) -> List[Race]:
    """All races in one idealized execution under ``model``.

    The execution is augmented per Section 4 unless ``augment=False`` or a
    prebuilt ``hb`` is passed.  Only cross-processor conflicting pairs can
    race (same-processor pairs are program-ordered).
    """
    if hb is None:
        trace = (
            augment_execution(execution, initial_memory=initial_memory)
            if augment
            else execution
        )
        hb = build_happens_before(trace, sync_edge_rule=model.sync_edge_rule)
    else:
        trace = hb.execution

    races: List[Race] = []
    for earlier, later in conflicting_pairs(trace):
        if model.is_exempt(earlier, later):
            continue
        if not hb.are_ordered(earlier, later):
            races.append(Race(first=earlier, second=later))
    return races


def race_free(execution: Execution, model: SynchronizationModel = DRF0) -> bool:
    """True iff the execution has no race under ``model``."""
    return not find_races(execution, model=model)


def format_race_report(races: List[Race]) -> str:
    """Multi-line human-readable report, one line per race."""
    if not races:
        return "no data races detected"
    lines = [f"{len(races)} data race(s) detected:"]
    lines.extend(f"  - {race.describe()}" for race in races)
    return "\n".join(lines)
