"""LEMMA1 / tooling — cost of the verification machinery itself.

Benchmarks the building blocks every experiment leans on: exhaustive SC
enumeration, happens-before closure at scale, DRF0 checking, and the
Lemma-1 witness search for hardware executions.
"""

import pytest

from repro.core.execution import Execution
from repro.core.operation import MemoryOp, OpKind
from repro.drf.races import find_races
from repro.hb.relations import build_happens_before
from repro.litmus.catalog import fig1_dekker, iriw
from repro.memsys.config import NET_CACHE
from repro.memsys.system import run_program
from repro.models.policies import Def2Policy
from repro.sc.independence import SearchStats
from repro.sc.interleaving import count_reachable_states, enumerate_results
from repro.sc.lemma1 import find_hb_witness
from repro.workloads.barrier import barrier_program
from repro.workloads.locks import release_overlap_program


def test_verify_sc_enumeration_dekker(benchmark):
    program = fig1_dekker().program
    results = benchmark(lambda: enumerate_results(program))
    assert len(results) == 3


def test_verify_sc_enumeration_iriw(benchmark):
    """Four threads: the largest standard litmus shape."""
    program = iriw().program
    results = benchmark(lambda: enumerate_results(program))
    assert len(results) >= 10


@pytest.mark.parametrize("workload", ["spin", "barrier"])
def test_verify_pruning_reduction(benchmark, workload):
    """Persistent-set + sleep-set pruning of the SC enumerator on the
    synchronization workloads: identical observable sets with the
    explored-transition counts recorded in the bench JSON."""
    from repro.workloads.locks import critical_section_program

    program = (
        critical_section_program(2, 1, private_writes=3)
        if workload == "spin"
        else barrier_program(2, private_writes=3)
    )
    full_stats = SearchStats()
    full = enumerate_results(program, prune=False, stats=full_stats)
    pruned_stats = SearchStats()
    pruned = benchmark.pedantic(
        lambda: enumerate_results(program, stats=pruned_stats),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["transitions_pruned"] = pruned_stats.transitions
    benchmark.extra_info["transitions_unpruned"] = full_stats.transitions
    benchmark.extra_info["states_pruned"] = pruned_stats.states
    benchmark.extra_info["states_unpruned"] = full_stats.states
    print(
        f"\n[VERIFY] {program.name}: {full_stats.transitions} transitions "
        f"unpruned vs {pruned_stats.transitions} pruned "
        f"({full_stats.transitions / pruned_stats.transitions:.2f}x)"
    )
    assert pruned == full
    assert full_stats.transitions >= 3 * pruned_stats.transitions


def test_verify_state_count_scales(benchmark):
    program = iriw().program
    states = benchmark(lambda: count_reachable_states(program))
    print(f"\n[VERIFY] IRIW reachable idealized states: {states}")
    assert states > 10


def _large_execution(num_procs=8, ops_per_proc=40):
    """A synthetic trace with cross-processor sync chains."""
    ops = []
    for i in range(ops_per_proc):
        for proc in range(num_procs):
            if i % 5 == 4:
                ops.append(
                    MemoryOp(
                        proc=proc,
                        kind=OpKind.SYNC_RMW,
                        location=f"s{proc % 3}",
                        value_read=0,
                        value_written=1,
                    )
                )
            else:
                ops.append(
                    MemoryOp(
                        proc=proc,
                        kind=OpKind.WRITE if i % 2 else OpKind.READ,
                        location=f"v{(proc + i) % 6}",
                        value_read=0 if i % 2 == 0 else None,
                        value_written=1 if i % 2 else None,
                    )
                )
    return Execution(ops=ops)


def test_verify_hb_closure_at_scale(benchmark):
    execution = _large_execution()
    hb = benchmark(lambda: build_happens_before(execution))
    first, last = execution.ops[0], execution.ops[-1]
    assert hb.ordered(first, last) or not hb.ordered(last, first)


def test_verify_race_scan_at_scale(benchmark):
    execution = _large_execution()
    races = benchmark(lambda: find_races(execution))
    print(f"\n[VERIFY] races in 320-op synthetic trace: {len(races)}")


def test_verify_trace_checker_scales(benchmark):
    """The constraint-graph SC checker handles traces far beyond the
    enumerator's reach: a 16-processor lock workload in one pass."""
    from repro.sc.trace_check import check_trace_sc
    from repro.workloads.locks import critical_section_program

    program = critical_section_program(8, 2, private_writes=2)
    run = run_program(program, Def2Policy(), NET_CACHE, seed=5, max_cycles=5_000_000)
    assert run.completed
    print(f"\n[VERIFY] trace of {len(run.execution.ops)} committed ops")
    result = benchmark(
        lambda: check_trace_sc(run.execution, dict(program.initial_memory))
    )
    assert result.is_sc, result.describe()


def test_verify_lemma1_witness_search(benchmark):
    program = release_overlap_program(data_writes=2, post_release_work=2,
                                      private_writes=1)
    run = run_program(program, Def2Policy(), NET_CACHE, seed=3)
    assert run.completed
    witness = benchmark.pedantic(
        lambda: find_hb_witness(program, run.execution), rounds=1, iterations=1
    )
    assert witness is not None
