"""FIG3 + QUANT integration: the performance claims, end to end.

Figure 3's qualitative claims and Section 6's Test-and-TestAndSet
discussion, checked on real simulated runs:

* DEF2's releaser overtakes DEF1's as memory latency grows;
* DEF2 beats DEF1 on release-heavy critical sections (overlap of the
  release with subsequent private work);
* plain DEF2 serializes read-only sync spinning (the Section 6
  pathology) and DEF2-R relieves it.
"""

import pytest

from repro.analysis.comparison import compare_policies
from repro.analysis.figure3 import figure3_sweep
from repro.memsys.config import NET_CACHE
from repro.models.policies import Def1Policy, Def2Policy, Def2RPolicy, SCPolicy
from repro.workloads.locks import critical_section_program


class TestFigure3Shape:
    @pytest.fixture(scope="class")
    def sweep_rows(self):
        return figure3_sweep(latencies=[4, 16, 48], seeds=[1, 2, 3, 4])

    def test_def1_release_stall_grows_linearly_ish(self, sweep_rows):
        stalls = [row.def1_release_stall for row in sweep_rows]
        assert stalls[0] < stalls[1] < stalls[2]
        # roughly linear: the 4->48 growth should be several-fold
        assert stalls[2] > 3 * stalls[0]

    def test_def2_releaser_wins_at_high_latency(self, sweep_rows):
        high = sweep_rows[-1]
        assert high.def2_releaser_finish < high.def1_releaser_finish

    def test_gap_grows_with_latency(self, sweep_rows):
        gaps = [
            row.def1_releaser_finish - row.def2_releaser_finish
            for row in sweep_rows
        ]
        assert gaps[-1] > gaps[0]


class TestQuantitativeComparison:
    def test_def2_beats_def1_on_release_heavy_sections(self):
        comparisons = compare_policies(
            program_factory=lambda: critical_section_program(
                2, 2, private_writes=6
            ),
            policies=[Def1Policy, Def2Policy],
            config=NET_CACHE.with_overrides(network_base_latency=16,
                                            network_jitter=4),
            runs=4,
        )
        by_name = {c.policy_name: c for c in comparisons}
        assert by_name["DEF2"].mean_cycles < by_name["DEF1"].mean_cycles

    def test_weak_policies_beat_sc(self):
        comparisons = compare_policies(
            program_factory=lambda: critical_section_program(
                2, 2, private_writes=6
            ),
            policies=[SCPolicy, Def2Policy],
            config=NET_CACHE.with_overrides(network_base_latency=16,
                                            network_jitter=4),
            runs=4,
        )
        by_name = {c.policy_name: c for c in comparisons}
        assert by_name["DEF2"].mean_cycles < by_name["SC"].mean_cycles


class TestSection6SpinningPathology:
    def test_def2r_relieves_test_spin_serialization(self):
        """Test-and-TestAndSet spinning: plain DEF2 turns every Test into
        an exclusive-ownership transfer; DEF2-R lets Tests spin on a
        shared copy, cutting protocol traffic."""
        comparisons = compare_policies(
            program_factory=lambda: critical_section_program(
                3, 2, local_work=8, use_test_test_and_set=True
            ),
            policies=[Def2Policy, Def2RPolicy],
            config=NET_CACHE,
            runs=4,
        )
        by_name = {c.policy_name: c for c in comparisons}
        assert (
            by_name["DEF2-R"].mean_messages < by_name["DEF2"].mean_messages
        )
