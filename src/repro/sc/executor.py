"""The idealized architecture of Section 4.

DRF0 is defined over executions "on an abstract, idealized architecture
where all memory accesses are executed atomically and in program order".
:class:`IdealizedMachine` is that architecture: at every step one thread
is chosen and runs until it completes exactly one *memory* operation
(local register arithmetic and branches are not interleaving points —
they commute with every other thread's actions, so collapsing them loses
no observable behaviour and shrinks the interleaving space).

The machine is deliberately a small, forkable state machine so the
enumerator in :mod:`repro.sc.interleaving` can drive exhaustive searches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.execution import Execution, Observable
from repro.core.instructions import (
    Branch,
    Fence,
    Halt,
    Jump,
    MemInstruction,
    RegInstruction,
)
from repro.core.operation import Location, MemoryOp, Value
from repro.core.program import Program
from repro.core.registers import RegisterFile


class LocalLoopError(RuntimeError):
    """A thread looped without touching memory for too many steps."""


#: Hashable machine-state key: (pcs, register snapshots, memory items).
StateKey = Tuple[Tuple[int, ...], Tuple, Tuple[Tuple[Location, Value], ...]]


@dataclass
class _ThreadState:
    pc: int
    regs: RegisterFile

    def copy(self) -> "_ThreadState":
        return _ThreadState(self.pc, self.regs.copy())


class IdealizedMachine:
    """Executes a :class:`Program` atomically and in program order.

    The trace (:attr:`execution`) records every memory operation in the
    exact order it executed — which on this architecture is both a legal
    completion order and, per thread, program order.
    """

    #: Bound on consecutive local (non-memory) instructions per step; a
    #: thread exceeding it is assumed stuck in a memory-free loop.
    MAX_LOCAL_STEPS = 10_000

    def __init__(self, program: Program) -> None:
        self.program = program
        self._threads = [_ThreadState(0, RegisterFile()) for _ in program.threads]
        self._memory: Dict[Location, Value] = dict(program.initial_memory)
        self._occurrences: Dict[Tuple[int, int], int] = {}
        self.execution = Execution()

    # -- forking / state identity -----------------------------------------
    def fork(self) -> "IdealizedMachine":
        """An independent copy sharing no mutable state (trace included)."""
        clone = IdealizedMachine.__new__(IdealizedMachine)
        clone.program = self.program
        clone._threads = [t.copy() for t in self._threads]
        clone._memory = dict(self._memory)
        clone._occurrences = dict(self._occurrences)
        clone.execution = Execution(ops=list(self.execution.ops))
        return clone

    def state_key(self) -> StateKey:
        """Hashable identity of the *forward-relevant* machine state.

        Occurrence counters and the trace are excluded: they do not affect
        future behaviour, only bookkeeping of the past.
        """
        return (
            tuple(t.pc for t in self._threads),
            tuple(t.regs.snapshot() for t in self._threads),
            tuple(sorted((k, v) for k, v in self._memory.items() if v != 0)),
        )

    # -- execution ----------------------------------------------------------
    def thread_halted(self, proc: int) -> bool:
        state = self._threads[proc]
        thread = self.program.threads[proc]
        if state.pc >= len(thread.instructions):
            return True
        return isinstance(thread.instructions[state.pc], Halt)

    def runnable_threads(self) -> List[int]:
        return [p for p in range(self.program.num_procs) if not self.thread_halted(p)]

    def thread_pc(self, proc: int) -> int:
        """Current program counter of thread ``proc``."""
        return self._threads[proc].pc

    def next_access(self, proc: int) -> Optional[Tuple[Location, bool, bool]]:
        """``(location, writes_memory, is_sync)`` of the thread's next
        memory operation, or ``None`` if it halts without another one.

        A pure peek: local instructions are simulated on a register-file
        copy, so the machine is unchanged.  Because registers are
        thread-private and local control flow is deterministic, the
        answer is *exact* — no other thread can steer ``proc`` onto a
        different path before its next memory access.  That exactness is
        what makes persistent-set pruning in :mod:`repro.sc.interleaving`
        a proof: a thread whose next access is known cannot halt, nor
        touch memory anywhere else, without first performing it.
        """
        state = self._threads[proc]
        thread = self.program.threads[proc]
        pc = state.pc
        regs = state.regs
        for _ in range(self.MAX_LOCAL_STEPS):
            if pc >= len(thread.instructions):
                return None
            instr = thread.instructions[pc]
            if isinstance(instr, Halt):
                return None
            if isinstance(instr, MemInstruction):
                return (instr.location, instr.kind.writes_memory, instr.kind.is_sync)
            if isinstance(instr, RegInstruction):
                if regs is state.regs:
                    regs = regs.copy()
                instr.apply(regs)
                pc += 1
            elif isinstance(instr, Fence):
                pc += 1
            elif isinstance(instr, Branch):
                pc = thread.target_of(instr) if instr.taken(regs) else pc + 1
            elif isinstance(instr, Jump):
                pc = thread.target_of(instr)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown instruction {instr!r}")
        raise LocalLoopError(
            f"thread {thread.name!r} executed {self.MAX_LOCAL_STEPS} local "
            "instructions without a memory access"
        )

    @property
    def halted(self) -> bool:
        return not self.runnable_threads()

    def step(self, proc: int) -> Optional[MemoryOp]:
        """Run thread ``proc`` up to and including its next memory op.

        Returns the memory operation performed, or ``None`` if the thread
        halted before reaching one.  Raises ``LocalLoopError`` on a
        memory-free infinite loop.
        """
        state = self._threads[proc]
        thread = self.program.threads[proc]
        for _ in range(self.MAX_LOCAL_STEPS):
            if self.thread_halted(proc):
                return None
            instr = thread.instructions[state.pc]
            if isinstance(instr, MemInstruction):
                op = self._perform_memory(proc, state, instr)
                state.pc += 1
                return op
            if isinstance(instr, RegInstruction):
                instr.apply(state.regs)
                state.pc += 1
            elif isinstance(instr, Fence):
                # On the idealized architecture every access is already
                # atomic and globally performed in program order, so a
                # fence is a no-op.
                state.pc += 1
            elif isinstance(instr, Branch):
                state.pc = thread.target_of(instr) if instr.taken(state.regs) else state.pc + 1
            elif isinstance(instr, Jump):
                state.pc = thread.target_of(instr)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown instruction {instr!r}")
        raise LocalLoopError(
            f"thread {thread.name!r} executed {self.MAX_LOCAL_STEPS} local "
            "instructions without a memory access"
        )

    def _perform_memory(
        self, proc: int, state: _ThreadState, instr: MemInstruction
    ) -> MemoryOp:
        pos = state.pc
        occ_key = (proc, pos)
        occurrence = self._occurrences.get(occ_key, 0)
        self._occurrences[occ_key] = occurrence + 1

        old = self._memory.get(instr.location, self.program.initial_value(instr.location))
        value_read: Optional[Value] = None
        value_written: Optional[Value] = None
        if instr.kind.reads_memory:
            value_read = old
            if instr.dest is not None:
                state.regs.write(instr.dest, old)
        if instr.kind.writes_memory:
            value_written = instr.compute_write(state.regs, old)
            self._memory[instr.location] = value_written

        op = MemoryOp(
            proc=proc,
            kind=instr.kind,
            location=instr.location,
            thread_pos=pos,
            occurrence=occurrence,
            value_read=value_read,
            value_written=value_written,
            # Trace order is issue order on the idealized architecture.
            issue_index=len(self.execution.ops),
        )
        self.execution.append(op)
        return op

    # -- results -----------------------------------------------------------
    def observable(self) -> Observable:
        return Observable.create(
            registers=[t.regs.as_dict() for t in self._threads],
            memory=self._memory,
        )

    def finish(self) -> Execution:
        """Mark the trace complete and attach the observable."""
        self.execution.completed = self.halted
        self.execution.observable = self.observable()
        return self.execution

    def memory_value(self, location: Location) -> Value:
        return self._memory.get(location, self.program.initial_value(location))


def run_schedule(program: Program, schedule: List[int]) -> Execution:
    """Run the idealized machine under an explicit thread schedule.

    Each schedule entry picks the thread for one step; entries naming
    halted threads are skipped.  After the schedule is exhausted, the
    remaining threads run round-robin to completion, so the returned
    execution is always complete.
    """
    machine = IdealizedMachine(program)
    for proc in schedule:
        if not machine.thread_halted(proc):
            machine.step(proc)
    while not machine.halted:
        for proc in machine.runnable_threads():
            machine.step(proc)
    return machine.finish()
