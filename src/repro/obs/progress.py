"""Live campaign progress: a heartbeat on stderr while runs execute.

:class:`ProgressReporter` rides :attr:`Executor.result_callback` — the
same hook the campaign journal uses for incremental appends — so it
sees every run the moment it finishes, in completion order, without
the campaign layer growing a second notification path.  Lines are
throttled to one per ``interval`` seconds and always end with a final
summary from :meth:`finish`.

A reporter is reusable across several campaigns (the delay-bounded
explorer runs one campaign per wave and shares a single reporter so
rate/ETA reflect the whole exploration): each ``run_campaign`` call
adds its spec count via :meth:`add_total` and reports cache/journal
skips via :meth:`note_skipped`.
"""

from __future__ import annotations

import sys
import time
from typing import Optional


class ProgressReporter:
    """Throttled ``done/total (rate, ETA, cache %, failures)`` lines."""

    def __init__(
        self,
        label: str = "campaign",
        stream=None,
        interval: float = 1.0,
        total: int = 0,
    ):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval = max(0.0, float(interval))
        self.total = total
        self.done = 0
        self.skipped = 0
        self.failed = 0
        self.lines_emitted = 0
        self._started = time.monotonic()
        self._last_emit = 0.0

    # -- campaign wiring -------------------------------------------

    def add_total(self, count: int) -> None:
        """Another campaign's worth of specs joins this reporter."""
        self.total += count

    def note_skipped(self, count: int) -> None:
        """Runs satisfied without execution (cache hits, journal replays)."""
        if count <= 0:
            return
        self.skipped += count
        self.done += count
        self._emit()

    def tick(self, result=None) -> None:
        """One run finished; ``result`` is its RunResult (may be None)."""
        self.done += 1
        if result is not None and getattr(result, "failure", None) is not None:
            self.failed += 1
        now = time.monotonic()
        if now - self._last_emit >= self.interval:
            self._emit(now)

    def finish(self, metrics=None) -> None:
        """Always-emitted closing line; ``metrics`` adds the summary."""
        self._emit(final=True)
        if metrics is not None:
            print(f"[{self.label}] {metrics.describe()}",
                  file=self.stream, flush=True)

    # -- rendering --------------------------------------------------

    def _emit(self, now: Optional[float] = None, final: bool = False) -> None:
        now = now if now is not None else time.monotonic()
        self._last_emit = now
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        parts = [f"[{self.label}]"]
        if self.total:
            pct = 100.0 * self.done / self.total
            parts.append(f"{self.done}/{self.total} ({pct:.0f}%)")
        else:
            parts.append(f"{self.done} runs")
        parts.append(f"{rate:.1f} runs/s")
        executed = self.done - self.skipped
        if self.total and not final and rate > 0:
            # ETA from the *execution* rate: skipped runs were free.
            exec_rate = executed / elapsed if executed else rate
            remaining = self.total - self.done
            if remaining > 0 and exec_rate > 0:
                parts.append(f"eta {remaining / exec_rate:.0f}s")
        if self.skipped:
            share = 100.0 * self.skipped / max(self.done, 1)
            parts.append(f"cached/replayed {self.skipped} ({share:.0f}%)")
        if self.failed:
            parts.append(f"failed {self.failed}")
        if final:
            parts.append(f"done in {elapsed:.1f}s")
        print(" ".join(parts), file=self.stream, flush=True)
        self.lines_emitted += 1


def coerce_progress(progress, label: str):
    """``(reporter, owned)`` from a ``progress=`` argument.

    ``True`` builds a fresh stderr reporter the caller owns (and must
    ``finish``); a :class:`ProgressReporter` instance is shared and
    left open; anything falsy disables progress.
    """
    if progress is True:
        return ProgressReporter(label=label), True
    if progress:
        return progress, False
    return None, False
