"""Shrinker: determinism, idempotence, minimization power, signatures."""

import pytest

from repro.campaign import PolicySpec, RunSpec, RunFailure, RunResult
from repro.campaign.spec import execute_spec_guarded
from repro.memsys.config import NET_CACHE
from repro.models.policies import Def2Policy
from repro.sanitizer import ReproBundle, failure_signature, shrink_spec
from repro.sanitizer.shrink import instruction_count
from repro.workloads import random_spin_program

from tests.sanitizer.conftest import spin_deadlock_spec


def _result(failure=None, completed=True):
    return RunResult(
        completed=completed, failure=failure, observable=None, cycles=0
    )


class TestFailureSignature:
    def test_success_signs_none(self):
        assert failure_signature(_result()) is None

    def test_quiet_noncompletion_signs_deadlock(self):
        assert failure_signature(_result(completed=False)) == "deadlock"

    def test_sanitizer_failures_sign_by_rule_tag(self):
        failure = RunFailure(
            kind="sanitizer",
            message="[reserve-consistency] cycle 39 cache0: dropped clear",
        )
        signature = failure_signature(_result(failure, completed=False))
        assert signature == "sanitizer:reserve-consistency"

    def test_exceptions_sign_by_type_name(self):
        failure = RunFailure(kind="exception", message="KeyError: 'x'")
        signature = failure_signature(_result(failure, completed=False))
        assert signature == "exception:KeyError"

    def test_other_kinds_sign_verbatim(self):
        failure = RunFailure(kind="sim-timeout", message="watchdog")
        assert failure_signature(_result(failure, completed=False)) == (
            "sim-timeout"
        )


class TestShrinkSpinDeadlock:
    """The hand-built 12-instruction hang must shrink to one spinner."""

    def test_minimizes_to_a_single_instruction(self):
        result = shrink_spec(spin_deadlock_spec(), signature="sim-timeout")
        assert result.signature == "sim-timeout"
        assert result.original_instructions == 11
        assert result.minimized_instructions == 1
        assert len(result.spec.program.threads) == 1
        assert not result.exhausted

    def test_budget_pass_respects_the_timeout_floor(self):
        # Halving max_cycles below ~20k would make ANY run "reproduce" a
        # timeout; the floor keeps the minimized budget honest.
        result = shrink_spec(spin_deadlock_spec(), signature="sim-timeout")
        assert 20_000 <= result.spec.max_cycles < 200_000

    def test_deterministic_byte_identical_bundles(self):
        bundles = []
        for _ in range(2):
            result = shrink_spec(
                spin_deadlock_spec(), signature="sim-timeout"
            )
            bundles.append(
                ReproBundle(
                    spec=result.spec,
                    signature=result.signature,
                    kind="sim-timeout",
                    label="determinism",
                    shrink_runs=result.runs,
                    original_instructions=result.original_instructions,
                    minimized_instructions=result.minimized_instructions,
                ).to_json()
            )
        assert bundles[0] == bundles[1]

    def test_idempotent_on_minimized_spec(self):
        first = shrink_spec(spin_deadlock_spec(), signature="sim-timeout")
        second = shrink_spec(first.spec, signature="sim-timeout")
        assert second.spec == first.spec
        assert second.minimized_instructions == first.minimized_instructions

    def test_minimized_spec_still_reproduces(self):
        result = shrink_spec(spin_deadlock_spec(), signature="sim-timeout")
        replayed = execute_spec_guarded(result.spec)
        assert failure_signature(replayed) == "sim-timeout"


class TestShrinkRandomProgram:
    def test_seeded_random_failure_halved_at_least(self):
        """Issue acceptance: a random-program failure loses >= 50% of its
        instructions under shrinking."""
        spec = RunSpec(
            program=random_spin_program(0),
            policy=PolicySpec.of(Def2Policy),
            config=NET_CACHE,
            seed=0,
            max_cycles=60_000,
        )
        result = shrink_spec(spec)  # signature established by execution
        assert result.signature == "sim-timeout"
        assert result.minimized_instructions <= (
            result.original_instructions // 2
        )
        assert instruction_count(result.spec.program) == (
            result.minimized_instructions
        )


class TestShrinkGuards:
    def test_non_failing_spec_is_rejected(self):
        spec = spin_deadlock_spec(max_cycles=200_000)
        passing = RunSpec(
            program=random_spin_program(3),  # this seed terminates
            policy=spec.policy,
            config=spec.config,
            seed=0,
            max_cycles=200_000,
        )
        with pytest.raises(ValueError, match="does not fail"):
            shrink_spec(passing)

    def test_max_runs_exhaustion_is_reported_not_raised(self):
        result = shrink_spec(
            spin_deadlock_spec(), signature="sim-timeout", max_runs=2
        )
        assert result.exhausted
        # Whatever it managed is still a reproducing spec.
        replayed = execute_spec_guarded(result.spec)
        assert failure_signature(replayed) == "sim-timeout"

    def test_schedule_replay_specs_skip_structural_passes(self):
        spec = spin_deadlock_spec(schedule=(0, 0))
        calls = []

        def fake_execute(candidate):
            calls.append(candidate)
            return _result(
                RunFailure(kind="sim-timeout", message="watchdog"),
                completed=False,
            )

        result = shrink_spec(
            spec, signature="sim-timeout", execute=fake_execute
        )
        # The program is untouched: only the budget pass may shrink.
        assert result.spec.program is spec.program
        assert result.minimized_instructions == result.original_instructions
        assert all(c.program is spec.program for c in calls)
