"""The write-buffered, cache-less memory port.

This is Figure 1's processor-side relaxation: writes enter a FIFO buffer
and drain to memory one at a time (the next write leaves only after the
previous one is acknowledged), while reads are sent to memory directly —
"reads are allowed to pass writes in write buffers".  A read of a
location with a buffered write is forwarded the newest buffered value.

A buffered write is *committed* on entering the buffer (its value could
be dispatched to a local read from that moment) and *globally performed*
when memory acknowledges it — the vocabulary the ordering policies gate
on.  Under the SC policy the issue gate keeps at most one access
outstanding, so the buffer degenerates to the strongly-ordered case and
no bypassing ever happens, exactly as the figure's caption requires.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.core.operation import OpKind
from repro.cpu.access import MemoryAccess
from repro.interconnect.base import Interconnect
from repro.memsys.memory import (
    MEMORY_ENDPOINT,
    MemRMW,
    MemRMWResp,
    MemRead,
    MemReadResp,
    MemWrite,
    MemWriteAck,
)
from repro.sim.engine import Component, Simulator
from repro.sim.stats import Stats


def port_endpoint(proc_id: int) -> str:
    return f"port:{proc_id}"


class WriteBufferPort(Component):
    """Per-processor memory port for the no-cache configurations."""

    def __init__(
        self,
        sim: Simulator,
        proc_id: int,
        interconnect: Interconnect,
        stats: Stats,
        drain_delay: int = 2,
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(sim, f"port{proc_id}")
        self.proc_id = proc_id
        self.interconnect = interconnect
        self.stats = stats
        #: Cycles the buffer head waits before being eligible to issue —
        #: models read-priority arbitration at the processor-bus boundary.
        self.drain_delay = drain_delay
        #: Maximum buffered writes (None = unbounded).  The processor
        #: checks :attr:`write_full` before issuing and stalls with
        #: ``WRITE_BUFFER_FULL`` when the bound is reached.
        self.capacity = capacity
        self._buffer: Deque[MemoryAccess] = deque()
        self._head_issued = False
        self._inflight: Dict[int, MemoryAccess] = {}
        self._tokens = itertools.count()
        self.sanitizer = sim.sanitizer
        #: Per-location FIFO bookkeeping, maintained only when the
        #: sanitizer is enabled: enqueue stamps and the stamp of the
        #: last write drained per location.
        self._enqueue_seq = 0
        self._drained_seq: Dict[Any, int] = {}
        interconnect.register(port_endpoint(proc_id), self._on_message)

    # ------------------------------------------------------------------
    # Processor-facing API
    # ------------------------------------------------------------------
    def submit(self, access: MemoryAccess) -> None:
        if access.kind in (OpKind.WRITE, OpKind.SYNC_WRITE):
            self._submit_write(access)
        elif access.kind in (OpKind.READ, OpKind.SYNC_READ):
            self._submit_read(access)
        else:  # SYNC_RMW: straight to memory, atomic at the module.
            self._submit_rmw(access)

    @property
    def buffered_writes(self) -> int:
        return len(self._buffer)

    @property
    def write_full(self) -> bool:
        return self.capacity is not None and len(self._buffer) >= self.capacity

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _submit_write(self, access: MemoryAccess) -> None:
        assert access.compute_write is not None
        access.value_written = access.compute_write(0)
        access.mark_committed(self.sim.now)
        self._buffer.append(access)
        if self.sanitizer.enabled:
            self._enqueue_seq += 1
            access.wbuf_seq = self._enqueue_seq
        self.stats.bump("wbuf.enqueued")
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                "wbuf",
                "enqueue",
                track=self.name,
                args=(
                    ("location", access.location),
                    ("depth", len(self._buffer)),
                ),
            )
        self._try_drain()

    def _try_drain(self) -> None:
        if self._head_issued or not self._buffer:
            return
        self._head_issued = True
        head = self._buffer[0]

        def issue() -> None:
            token = next(self._tokens)
            self._inflight[token] = head
            self.interconnect.send(
                port_endpoint(self.proc_id),
                MEMORY_ENDPOINT,
                MemWrite(
                    head.location,
                    head.value_written,
                    token,
                    port_endpoint(self.proc_id),
                ),
            )

        self.sim.schedule(self.drain_delay, issue)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _submit_read(self, access: MemoryAccess) -> None:
        forwarded = self._forward_from_buffer(access)
        if forwarded:
            return
        token = next(self._tokens)
        self._inflight[token] = access
        self.interconnect.send(
            port_endpoint(self.proc_id),
            MEMORY_ENDPOINT,
            MemRead(access.location, token, port_endpoint(self.proc_id)),
        )

    def _forward_from_buffer(self, access: MemoryAccess) -> bool:
        for buffered in reversed(self._buffer):
            if buffered.location == access.location:
                self.stats.bump("wbuf.forwards")
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.emit(
                        "wbuf",
                        "forward",
                        track=self.name,
                        args=(
                            ("location", access.location),
                            ("value", buffered.value_written),
                        ),
                    )
                access.deliver_value(buffered.value_written, self.sim.now)
                access.mark_committed(self.sim.now)
                access.mark_globally_performed(self.sim.now)
                return True
        return False

    # ------------------------------------------------------------------
    # Read-modify-writes
    # ------------------------------------------------------------------
    def _submit_rmw(self, access: MemoryAccess) -> None:
        assert access.compute_write is not None
        token = next(self._tokens)
        self._inflight[token] = access
        self.interconnect.send(
            port_endpoint(self.proc_id),
            MEMORY_ENDPOINT,
            MemRMW(access.location, access.compute_write, token, port_endpoint(self.proc_id)),
        )

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def _on_message(self, payload: Any, src: str) -> None:
        if not isinstance(payload, (MemReadResp, MemWriteAck, MemRMWResp)):
            raise TypeError(f"port cannot handle {payload!r}")
        # A faulty network may deliver a response twice; tokens are
        # issued once, so an unknown token is a replay to drop.
        access = self._inflight.pop(payload.token, None)
        if access is None:
            self.stats.bump("wbuf.duplicate_drops")
            return
        if isinstance(payload, MemReadResp):
            access.deliver_value(payload.value, self.sim.now)
            access.mark_committed(self.sim.now)
            access.mark_globally_performed(self.sim.now)
        elif isinstance(payload, MemWriteAck):
            if not self._buffer or self._buffer[0] is not access:
                head = (
                    f"the buffer head is a write to "
                    f"{self._buffer[0].location!r}"
                    if self._buffer
                    else "the write buffer is empty"
                )
                self.sanitizer.protocol_error(
                    "wbuf-fifo",
                    f"MemWriteAck for {access.location!r} does not match "
                    f"the FIFO drain order: {head}",
                    component=self.name,
                    location=access.location,
                )
            if self.sanitizer.enabled:
                seq = getattr(access, "wbuf_seq", 0)
                last = self._drained_seq.get(access.location, 0)
                if seq <= last:
                    self.sanitizer.record(
                        "wbuf-fifo",
                        f"write to {access.location!r} drained out of "
                        f"per-location order (stamp {seq} after {last})",
                        component=self.name,
                        location=access.location,
                    )
                self._drained_seq[access.location] = seq
            self._buffer.popleft()
            self._head_issued = False
            access.mark_globally_performed(self.sim.now)
            self._try_drain()
        else:
            access.value_written = access.compute_write(payload.old_value)
            access.deliver_value(payload.old_value, self.sim.now)
            access.mark_committed(self.sim.now)
            access.mark_globally_performed(self.sim.now)
