"""The chaos/soak harness proving crash-safety against real processes.

The headline acceptance test for the resumable-campaign work: a real
``python -m repro litmus`` subprocess is SIGKILLed/SIGTERMed at seeded
journal record counts, resumed repeatedly, and the final journal must
hold exactly one byte-exact record per spec — identical to a clean,
uninterrupted in-process baseline.
"""

import pickle
import signal

import pytest

from repro.campaign.spec import RunFailure, RunResult
from repro.testing import chaos


class TestChaosPlan:
    def test_seeded_plan_is_deterministic(self):
        a = chaos.ChaosPlan.seeded(7, total_runs=20, kills=3)
        b = chaos.ChaosPlan.seeded(7, total_runs=20, kills=3)
        assert a == b

    def test_kill_points_strictly_increasing_within_campaign(self):
        plan = chaos.ChaosPlan.seeded(0, total_runs=50, kills=5)
        points = [k.after_records for k in plan.kills]
        assert points == sorted(set(points))
        assert all(1 <= p < 50 for p in points)

    def test_signals_alternate(self):
        plan = chaos.ChaosPlan.seeded(0, total_runs=50, kills=4)
        assert [k.signum for k in plan.kills] == [
            signal.SIGKILL, signal.SIGTERM, signal.SIGKILL, signal.SIGTERM,
        ]

    def test_tiny_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            chaos.ChaosPlan.seeded(0, total_runs=1)

    def test_kill_point_describe(self):
        point = chaos.KillPoint(after_records=7, signum=signal.SIGKILL)
        assert point.describe() == "SIGKILL after 7 journaled result(s)"


class TestExactlyOnce:
    def _result(self, marker):
        return RunResult(
            observable=None, cycles=marker, completed=False,
            failure=RunFailure(kind="sim-timeout", message="x"),
        )

    def _write(self, path, records):
        import json

        from repro.campaign.journal import _encode_result

        with path.open("w") as fh:
            for digest, result in records:
                fh.write(json.dumps({
                    "type": "result",
                    "digest": digest,
                    "result": _encode_result(result),
                }) + "\n")

    def test_accepts_exact_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        expected = {"aa": self._result(1), "bb": self._result(2)}
        self._write(path, list(expected.items()))
        chaos.assert_exactly_once(path, expected)

    def test_rejects_duplicate_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        result = self._result(1)
        self._write(path, [("aa", result), ("aa", result)])
        with pytest.raises(AssertionError, match="more than once"):
            chaos.assert_exactly_once(path, {"aa": result})

    def test_rejects_missing_digest(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [("aa", self._result(1))])
        with pytest.raises(AssertionError, match="missing"):
            chaos.assert_exactly_once(
                path, {"aa": self._result(1), "bb": self._result(2)}
            )

    def test_rejects_divergent_result_bytes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [("aa", self._result(1))])
        with pytest.raises(AssertionError, match="differs"):
            chaos.assert_exactly_once(path, {"aa": self._result(99)})


class TestSoak:
    def test_soak_survives_seeded_kills(self, tmp_path):
        # The acceptance criterion: SIGKILL/SIGTERM at 3 seeded points,
        # resume after each, and the final journal is exactly-once and
        # byte-identical to the clean baseline.
        report = chaos.soak(
            runs=12, kills=3, seed=0, workdir=tmp_path,
        )
        print(report.describe())
        assert report.ok, report.describe()
        assert report.journaled_results == 12
        assert report.torn_records == 0
        killed = [a for a in report.attempts if a.killed]
        assert len(killed) >= 1, "campaign outran every kill point"
        # The last attempt always completes the campaign cleanly.
        assert report.attempts[-1].returncode == 0
        assert not report.attempts[-1].killed
        assert "exactly-once: PASS" in report.describe()
