"""The processor-core contract: fetch/issue/retire/stall/migration.

The paper locates reordering in the *memory system* — but PAPERS.md's
parallelized-sequential-composition line of work shows the core itself
is a second, independent source of reordering (store forwarding,
overlapping in-flight accesses).  This module is the seam between the
two: :class:`ProcessorCore` owns everything every core shape shares —
program-order fetch, the policy hooks (issue gate / block kind), access
generation, stall attribution, tracing, and drained context migration —
while the concrete cores decide *how far the front end may run ahead of
the memory system*:

* :class:`~repro.cpu.processor.SimpleCore` — the original model: at
  most one access per location outstanding, destination registers block
  immediately for their value.
* :class:`~repro.cpu.pipelined.PipelinedCore` — an in-order-issue
  pipeline with an issue window, register scoreboarding, and
  store-to-load forwarding from the core's own pending writes.

Cores register themselves by ``core_name`` (the same
``__init_subclass__`` pattern as the policy registry), so the campaign
layer can rebuild a core choice from its picklable spec string.

Intra-processor dependencies (condition 1 of Section 5.1) remain
enforced structurally by every core:

* no instruction may consume a register whose producing access has not
  delivered its value;
* write values are computed from the register file at issue time, after
  all producing reads have completed;
* same-location program order is preserved through the memory system —
  either by stalling (one open transaction per location) or, in the
  pipelined core, by forwarding the newest pending write's value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple, Type

from repro.core.instructions import (
    Branch,
    Fence,
    Halt,
    Jump,
    MemInstruction,
    RegInstruction,
)
from repro.core.operation import MemoryOp
from repro.core.program import Thread
from repro.core.registers import RegisterFile
from repro.cpu.access import MemoryAccess
from repro.models.base import BlockKind, OrderingPolicy
from repro.sim.engine import Component, Simulator
from repro.sim.stats import StallReason, Stats


class MemoryPort(Protocol):
    """Anything a processor can issue accesses to (cache or memory path)."""

    def submit(self, access: MemoryAccess) -> None:  # pragma: no cover
        ...


#: Core name -> core class, populated by ``__init_subclass__`` so the
#: campaign layer can rebuild a core from its picklable spec string, the
#: same pattern as the policy registry in :mod:`repro.models.base`.
_CORE_REGISTRY: Dict[str, Type["ProcessorCore"]] = {}


def core_class_by_name(name: str) -> Type["ProcessorCore"]:
    """The core class registered under a core name."""
    try:
        return _CORE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown core {name!r}; registered: {sorted(_CORE_REGISTRY)}"
        )


def core_names() -> Tuple[str, ...]:
    """The registered core names, sorted (CLI choices, capability checks)."""
    return tuple(sorted(_CORE_REGISTRY))


class ProcessorCore(Component):
    """Shared machinery of every in-order-fetch processor core.

    Subclasses implement :meth:`_try_memory` (when may a memory access
    generate, and what happens when it cannot) and
    :meth:`_complete_issue` (how the pipeline treats a freshly issued
    access); everything else — the fetch loop, local instructions, fence
    drains, access construction, stall accounting, tracing, migration —
    is identical across core shapes and lives here.
    """

    #: Identifier used by ``--core``/``PolicySpec.core``; subclasses that
    #: declare their own name are registered as constructible cores.
    core_name = "base"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Register only classes that declare their own core name, so
        # ad-hoc subclasses (test doubles, the deprecation shim) never
        # shadow a real core.
        if "core_name" in cls.__dict__:
            _CORE_REGISTRY[cls.core_name] = cls

    def __init__(
        self,
        sim: Simulator,
        proc_id: int,
        thread: Thread,
        policy: OrderingPolicy,
        port: MemoryPort,
        stats: Stats,
        local_cycles: int = 1,
        cache=None,
    ) -> None:
        super().__init__(sim, f"proc{proc_id}")
        self.proc_id = proc_id
        #: The *thread* this processor currently runs.  Trace operations
        #: and observables are keyed by this, so a migrated thread keeps
        #: its identity while running on different physical processors.
        self.logical_proc = proc_id
        self.thread = thread
        self.policy = policy
        self.port = port
        self.stats = stats
        self.local_cycles = max(1, local_cycles)
        self.cache = cache

        self.regs = RegisterFile()
        self.pc = 0
        self.halted = False
        self.halt_time: Optional[int] = None
        #: Accesses generated but not yet globally performed.
        self.pending_accesses: List[MemoryAccess] = []
        #: Completed memory operations with commit timestamps, for traces.
        self.trace: List[MemoryOp] = []
        self._occurrences: dict = {}
        self._issue_counter = 0
        self._stall_reason: Optional[StallReason] = None
        self._busy = False  # mid-instruction delay in flight
        #: Set while a context switch is draining: no new issues.
        self._migrating = False
        self.tracer = sim.tracer
        #: Whether the memory port is a write buffer that can actually
        #: fill up.  Hoisted out of the issue path entirely: PR 3 hoisted
        #: the ``getattr``, but an unbounded buffer still paid the
        #: ``write_full`` property call per issued write — for a buffer
        #: with ``capacity=None`` the answer is constant ``False``.
        self._port_is_bounded = (
            hasattr(port, "write_full")
            and getattr(port, "capacity", None) is not None
        )
        #: Location of the sync access this processor is commit-blocked
        #: on, if any — the anchor for attributing remote reserve NACKs
        #: (condition 5's DEF2_RESERVED_REMOTE stall) to this processor.
        self._commit_wait_loc = None
        #: The access the pipeline is hard-blocked on (value/commit/gp)
        #: and which milestone it awaits — read by the deadlock
        #: diagnosis to draw processor wait-for edges.
        self.blocked_access: Optional[MemoryAccess] = None
        self.blocked_until: Optional[str] = None
        if cache is not None and hasattr(cache, "on_sync_nack"):
            cache.on_sync_nack.append(self._on_sync_nack)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.call_soon(self._advance)

    # The coalesced-wake facility itself lives on Component (anything
    # re-evaluating state after an event cascade can use it); the hooks
    # below bind it to the core's halt/busy flags.
    def wake_suppressed(self) -> bool:
        return self.halted

    def wake_ready(self) -> bool:
        return not self._busy

    def on_wake(self) -> None:
        self._advance()

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        if self.halted or self._busy or self._migrating:
            return
        self._end_stall()
        if self._at_end():
            self._halt()
            return
        instr = self.thread.instructions[self.pc]
        hazard = self._pre_execute(instr)
        if hazard is not None:
            self._begin_stall(hazard)
            return
        if isinstance(instr, MemInstruction):
            self._try_memory(instr)
        elif isinstance(instr, Fence):
            # The RP3 fence: wait until every previous access has
            # globally performed, regardless of the ordering policy.
            if self.pending_accesses:
                self._begin_stall(StallReason.FENCE_DRAIN)
                return
            self.pc += 1
            self._after_delay(self.local_cycles)
        elif isinstance(instr, RegInstruction):
            instr.apply(self.regs)
            self.pc += 1
            self._after_delay(self.local_cycles)
        elif isinstance(instr, Branch):
            self.pc = (
                self.thread.target_of(instr) if instr.taken(self.regs) else self.pc + 1
            )
            self._after_delay(self.local_cycles)
        elif isinstance(instr, Jump):
            self.pc = self.thread.target_of(instr)
            self._after_delay(self.local_cycles)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown instruction {instr!r}")

    def _at_end(self) -> bool:
        return self.pc >= len(self.thread.instructions) or isinstance(
            self.thread.instructions[self.pc], Halt
        )

    def _halt(self) -> None:
        self.halted = True
        self.halt_time = self.sim.now
        if self.tracer.enabled:
            self.tracer.emit("proc", "halt", track=f"P{self.logical_proc}")

    def _after_delay(self, cycles: int) -> None:
        self._busy = True

        def resume() -> None:
            self._busy = False
            self._advance()

        self.sim.schedule(cycles, resume)

    # ------------------------------------------------------------------
    # Core-shape hooks
    # ------------------------------------------------------------------
    def _pre_execute(self, instr) -> Optional[StallReason]:
        """Core-specific hazard check before any instruction executes.

        Runs for *every* instruction kind (a register scoreboard must
        also hold back arithmetic and branches whose sources are still
        in flight).  Return a stall reason to hold the front end, or
        ``None`` to proceed.
        """
        return None

    def _try_memory(self, instr: MemInstruction) -> None:
        """Decide whether ``instr``'s access may generate now.

        Must either call :meth:`_issue` (possibly after core-specific
        resolution such as store forwarding) or record a stall via
        :meth:`_begin_stall` and return; a later :meth:`wake` re-runs
        the decision.
        """
        raise NotImplementedError

    def _complete_issue(
        self, access: MemoryAccess, instr: MemInstruction, block: BlockKind
    ) -> None:
        """Advance the pipeline past a freshly generated access.

        ``block`` is the policy's verdict; the core decides how to honor
        it (block the whole front end, scoreboard the destination, ...)
        and is responsible for advancing ``pc`` and submitting the
        access to the memory port.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Memory instructions — shared generation path
    # ------------------------------------------------------------------
    def _common_gate(self, instr: MemInstruction) -> Optional[StallReason]:
        """The policy's issue gate plus the bounded-write-buffer check,
        identical across core shapes (checked in this order so stall
        attribution is stable)."""
        gate = self.policy.issue_gate(self, instr.kind)
        if gate is not None:
            return gate
        # A bounded write buffer refuses new writes while full; the
        # processor stalls until a buffered write globally performs (its
        # MemWriteAck pops the buffer head and wakes us via retire).
        if (
            self._port_is_bounded
            and instr.kind.writes_memory
            and self.port.write_full
        ):
            return StallReason.WRITE_BUFFER_FULL
        return None

    def _issue(self, instr: MemInstruction) -> None:
        pos = self.pc
        occurrence = self._occurrences.get(pos, 0)
        self._occurrences[pos] = occurrence + 1

        compute_write = None
        if instr.kind.writes_memory:
            # Snapshot the register file now: the write's operands are an
            # intra-processor dependency bound at issue, not at whatever
            # later cycle the memory system performs the write.
            regs_at_issue = self.regs.copy()

            def compute_write(old, _instr=instr, _regs=regs_at_issue):
                return _instr.compute_write(_regs, old)

        access = MemoryAccess(
            proc=self.logical_proc,
            kind=instr.kind,
            location=instr.location,
            compute_write=compute_write,
            sync_protocol=self.policy.sync_protocol(instr.kind),
            needs_exclusive=self.policy.needs_exclusive(instr.kind),
            thread_pos=pos,
            occurrence=occurrence,
        )
        access.generate_time = self.sim.now
        access.issue_index = self._issue_counter
        self._issue_counter += 1
        self.pending_accesses.append(access)
        self.stats.bump(f"proc.{instr.kind.value}")
        if self.tracer.enabled and self.tracer.wants("proc"):
            self.tracer.emit(
                "proc",
                "issue",
                track=f"P{self.logical_proc}",
                args=(
                    ("kind", instr.kind.value),
                    ("location", instr.location),
                    ("pos", pos),
                    ("occurrence", occurrence),
                    ("issue_index", access.issue_index),
                ),
            )

        dest = instr.dest
        if dest is not None:
            access.on_value(lambda a: self.regs.write(dest, a.value))
        access.on_commit(self._record_trace)
        access.on_commit(lambda a: self.wake())
        access.on_globally_performed(self._retire)

        block = self.policy.block_kind(instr.kind)
        self._complete_issue(access, instr, block)

    def _block_on(self, access: MemoryAccess, block: BlockKind) -> None:
        if block is BlockKind.NONE:
            self._after_delay(self.local_cycles)
            return

        self._busy = True
        started = self.sim.now
        reason = {
            BlockKind.VALUE: StallReason.READ_VALUE,
            BlockKind.COMMIT: StallReason.DEF2_SYNC_COMMIT,
            BlockKind.GP: StallReason.SC_PREVIOUS_GP,
        }[block]
        self.stats.stall_begin(self.proc_id, reason, started)
        if block is BlockKind.COMMIT:
            self._commit_wait_loc = access.location
        self.blocked_access = access
        self.blocked_until = {
            BlockKind.VALUE: "value",
            BlockKind.COMMIT: "commit",
            BlockKind.GP: "global perform",
        }[block]

        def resume(_a: MemoryAccess) -> None:
            self.stats.stall_end(self.proc_id, reason, self.sim.now)
            if block is BlockKind.COMMIT:
                self._commit_wait_loc = None
                # Close the remote-reserve overlay window, if a NACK
                # opened one while we waited for the commit.
                self.stats.stall_end(
                    self.proc_id, StallReason.DEF2_RESERVED_REMOTE, self.sim.now
                )
            self.blocked_access = None
            self.blocked_until = None
            self._busy = False
            self.sim.call_soon(self._advance)

        if block is BlockKind.VALUE:
            access.on_value(resume)
        elif block is BlockKind.COMMIT:
            access.on_commit(resume)
        else:
            access.on_globally_performed(resume)

    def _record_trace(self, access: MemoryAccess) -> None:
        op = MemoryOp(
            proc=access.proc,
            kind=access.kind,
            location=access.location,
            thread_pos=access.thread_pos,
            occurrence=access.occurrence,
            value_read=access.value if access.kind.reads_memory else None,
            value_written=access.value_written,
        )
        op.commit_time = access.commit_time
        op.issue_index = access.issue_index
        self.trace.append(op)
        if self.tracer.enabled and self.tracer.wants("proc"):
            # Carries the op's full identity: the trace-based
            # happens-before cross-check rebuilds the execution from
            # exactly these events (see repro.trace.crosscheck).
            self.tracer.emit(
                "proc",
                "commit",
                track=f"P{op.proc}",
                args=(
                    ("proc", op.proc),
                    ("kind", op.kind.value),
                    ("location", op.location),
                    ("pos", op.thread_pos),
                    ("occurrence", op.occurrence),
                    ("issue_index", op.issue_index),
                    ("value_read", op.value_read),
                    ("value_written", op.value_written),
                ),
            )

    def _retire(self, access: MemoryAccess) -> None:
        self.pending_accesses.remove(access)
        if self.tracer.enabled and self.tracer.wants("proc"):
            self.tracer.emit(
                "proc",
                "gp",
                track=f"P{access.proc}",
                args=(
                    ("kind", access.kind.value),
                    ("location", access.location),
                    ("issue_index", access.issue_index),
                ),
            )
        self.wake()

    def _on_sync_nack(self, location) -> None:
        """Cache observer: our sync request was NACKed because the line is
        reserved at a remote owner — condition 5's distinct stall cause,
        accounted as an overlay on the enclosing commit wait."""
        if location == self._commit_wait_loc:
            self.stats.stall_begin(
                self.proc_id, StallReason.DEF2_RESERVED_REMOTE, self.sim.now
            )

    # ------------------------------------------------------------------
    # Stall accounting
    # ------------------------------------------------------------------
    def _begin_stall(self, reason: StallReason) -> None:
        if self._stall_reason is not None and self._stall_reason is not reason:
            self.stats.stall_end(self.proc_id, self._stall_reason, self.sim.now)
            self._stall_reason = None
        if self._stall_reason is None:
            self._stall_reason = reason
            self.stats.stall_begin(self.proc_id, reason, self.sim.now)

    def _end_stall(self) -> None:
        if self._stall_reason is not None:
            self.stats.stall_end(self.proc_id, self._stall_reason, self.sim.now)
            self._stall_reason = None

    @property
    def stalled(self) -> bool:
        return self._stall_reason is not None

    # ------------------------------------------------------------------
    # Process migration (Section 5.1's footnote)
    # ------------------------------------------------------------------
    @property
    def idle_for_adoption(self) -> bool:
        """True when this processor can take over another thread: its own
        thread is empty (a dedicated idle slot) or it has already
        migrated its thread away, and nothing is in flight."""
        if self.pending_accesses or self._busy:
            return False
        # An empty thread is idle whether or not its (trivial) halt has
        # been processed yet — early migrations may beat the start event.
        return len(self.thread.instructions) == 0

    def begin_migration(self) -> None:
        """Stop issuing; in-flight accesses continue to completion."""
        self._end_stall()
        self._migrating = True

    def export_context(self) -> dict:
        """The thread context a context switch transfers."""
        assert not self.pending_accesses, "export before drain completed"
        return {
            "logical_proc": self.logical_proc,
            "thread": self.thread,
            "regs": self.regs,
            "pc": self.pc,
            "occurrences": self._occurrences,
            "issue_counter": self._issue_counter,
        }

    def adopt_context(self, context: dict) -> dict:
        """Take over a thread; returns this processor's previous identity
        (for the source to assume, keeping the identity set intact)."""
        assert self.idle_for_adoption, f"{self.name} cannot adopt a thread"
        previous = {
            "logical_proc": self.logical_proc,
            "thread": self.thread,
            "regs": self.regs,
            "pc": self.pc,
            "occurrences": self._occurrences,
            "issue_counter": self._issue_counter,
        }
        self.logical_proc = context["logical_proc"]
        self.thread = context["thread"]
        self.regs = context["regs"]
        self.pc = context["pc"]
        self._occurrences = context["occurrences"]
        self._issue_counter = context["issue_counter"]
        self.halted = False
        self.halt_time = None
        self._migrating = False
        return previous

    def become_idle(self, identity: dict) -> None:
        """Assume the (already halted) identity handed back by the target."""
        self.logical_proc = identity["logical_proc"]
        self.thread = identity["thread"]
        self.regs = identity["regs"]
        self.pc = identity["pc"]
        self._occurrences = identity["occurrences"]
        self._issue_counter = identity["issue_counter"]
        self._migrating = False
        self.halted = True
        self.halt_time = self.sim.now
