"""TraceSummary distillation and associative merging."""

import json
import pickle

from repro.trace import TOP_STALLS, TraceEvent, TraceSummary


def stall(track, name, begin, end):
    return (
        TraceEvent(time=begin, category="stall", name=name, phase="B",
                   track=track),
        TraceEvent(time=end, category="stall", name=name, phase="E",
                   track=track),
    )


def delivery(name, time=0):
    return TraceEvent(time=time, category="msg", name=name, phase="F",
                      track="net")


class TestFromEvents:
    def test_pairs_windows_per_track_and_name(self):
        events = (
            *stall("P0", "READ_VALUE", 0, 10),
            *stall("P1", "READ_VALUE", 5, 7),
            *stall("P0", "FENCE_DRAIN", 20, 21),
        )
        summary = TraceSummary.from_events(events)
        assert summary.stall_cycles("READ_VALUE") == 12
        assert summary.stall_cycles("FENCE_DRAIN") == 1
        assert dict(summary.stall_windows_by_reason) == {
            "READ_VALUE": 2, "FENCE_DRAIN": 1,
        }
        assert summary.total_stall_cycles == 13

    def test_interleaved_tracks_do_not_cross_pair(self):
        b0, e0 = stall("P0", "READ_VALUE", 0, 100)
        b1, e1 = stall("P1", "READ_VALUE", 10, 20)
        summary = TraceSummary.from_events((b0, b1, e1, e0))
        assert summary.stall_cycles("READ_VALUE") == 110

    def test_unmatched_begin_ignored(self):
        lone = TraceEvent(time=5, category="stall", name="READ_VALUE",
                          phase="B", track="P0")
        summary = TraceSummary.from_events((lone,))
        assert summary.stall_cycles_by_reason == ()
        assert summary.events_recorded == 1

    def test_unmatched_end_ignored(self):
        lone = TraceEvent(time=5, category="stall", name="READ_VALUE",
                          phase="E", track="P0")
        summary = TraceSummary.from_events((lone,))
        assert summary.stall_cycles_by_reason == ()

    def test_message_counts_deliveries_only(self):
        send = TraceEvent(time=0, category="msg", name="Inval", phase="S",
                          track="net")
        events = (send, delivery("Inval", 3), delivery("Ack", 4),
                  delivery("Ack", 5))
        summary = TraceSummary.from_events(events)
        assert dict(summary.message_counts) == {"Inval": 1, "Ack": 2}
        assert summary.total_messages == 3

    def test_longest_stall_leaderboard_capped_and_sorted(self):
        events = []
        for i in range(TOP_STALLS + 3):
            events.extend(stall("P0", f"R{i}", i * 100, i * 100 + i + 1))
        summary = TraceSummary.from_events(tuple(events))
        assert len(summary.longest_stalls) == TOP_STALLS
        durations = [span[0] for span in summary.longest_stalls]
        assert durations == sorted(durations, reverse=True)

    def test_dropped_count_carried(self):
        summary = TraceSummary.from_events((), dropped=17)
        assert summary.events_dropped == 17


class TestMerge:
    def test_merged_none_of_empty(self):
        assert TraceSummary.merged([]) is None
        assert TraceSummary.merged(iter([None, None])) is None

    def test_merge_adds_histograms_and_runs(self):
        a = TraceSummary.from_events(stall("P0", "READ_VALUE", 0, 4))
        b = TraceSummary.from_events(
            (*stall("P0", "READ_VALUE", 0, 6), delivery("Ack"))
        )
        merged = TraceSummary.merged([a, None, b])
        assert merged.runs == 2
        assert merged.stall_cycles("READ_VALUE") == 10
        assert dict(merged.stall_windows_by_reason) == {"READ_VALUE": 2}
        assert merged.message_count("Ack") == 1
        assert merged.events_recorded == a.events_recorded + b.events_recorded

    def test_merge_is_associative(self):
        parts = [
            TraceSummary.from_events(stall("P0", "READ_VALUE", 0, i + 1))
            for i in range(3)
        ]
        left = TraceSummary.merged(
            [TraceSummary.merged(parts[:2]), parts[2]]
        )
        right = TraceSummary.merged(
            [parts[0], TraceSummary.merged(parts[1:])]
        )
        assert left == right
        assert left == TraceSummary.merged(parts)


class TestSerialization:
    def test_to_dict_is_json_safe(self):
        summary = TraceSummary.from_events(
            (*stall("P0", "READ_VALUE", 0, 9), delivery("Inval"))
        )
        encoded = json.dumps(summary.to_dict())
        decoded = json.loads(encoded)
        assert decoded["stall_cycles_by_reason"] == {"READ_VALUE": 9}
        assert decoded["runs"] == 1

    def test_picklable(self):
        summary = TraceSummary.from_events(stall("P0", "READ_VALUE", 0, 9))
        assert pickle.loads(pickle.dumps(summary)) == summary

    def test_describe_mentions_stalls_and_messages(self):
        summary = TraceSummary.from_events(
            (*stall("P0", "READ_VALUE", 0, 9), delivery("Inval"))
        )
        text = summary.describe()
        assert "READ_VALUE: 9 cycles over 1 window(s)" in text
        assert "Inval: 1" in text
