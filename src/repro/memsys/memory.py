"""A memory module for the cache-less configurations of Figure 1.

Requests are serialized per arrival: the value a read returns, and the
order writes take effect, is determined by when the request message
*reaches* the module — Lamport's model, in which a general network can
violate sequential consistency even when each processor issues its
accesses in program order, because "accesses ... reach memory modules in
a different order".

Read-modify-writes execute atomically at the module (the paper's
single-location synchronization primitives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.core.operation import Location, Value
from repro.interconnect.base import Interconnect
from repro.sim.engine import Component, Simulator
from repro.sim.stats import Stats

MEMORY_ENDPOINT = "mem"


@dataclass(frozen=True)
class MemRead:
    location: Location
    token: int
    reply_to: str


@dataclass(frozen=True)
class MemWrite:
    location: Location
    value: Value
    token: int
    reply_to: str


@dataclass(frozen=True)
class MemRMW:
    """Atomic read-modify-write: ``new = compute(old)``."""

    location: Location
    compute: Callable[[Value], Value]
    token: int
    reply_to: str


@dataclass(frozen=True)
class MemReadResp:
    location: Location
    value: Value
    token: int


@dataclass(frozen=True)
class MemWriteAck:
    location: Location
    token: int


@dataclass(frozen=True)
class MemRMWResp:
    """Carries the atomically-read old value."""

    location: Location
    old_value: Value
    token: int


class MemoryModule(Component):
    """The single shared memory (conceptually: one module per location,
    since requests to different locations never queue behind each other
    here — service is concurrent)."""

    def __init__(
        self,
        sim: Simulator,
        interconnect: Interconnect,
        stats: Stats,
        initial_memory: Optional[Dict[Location, Value]] = None,
        service_latency: int = 2,
    ) -> None:
        super().__init__(sim, "memory")
        self.interconnect = interconnect
        self.stats = stats
        self.service_latency = service_latency
        self._memory: Dict[Location, Value] = dict(initial_memory or {})
        #: Requests already serviced, keyed by (requester, token).  A
        #: faulty network may deliver a request twice; replaying a write
        #: or RMW after later traffic would rewind memory, so duplicates
        #: are dropped here — at-least-once delivery tolerance.
        self._serviced: Set[Tuple[str, int]] = set()
        interconnect.register(MEMORY_ENDPOINT, self._on_message)

    def value(self, location: Location) -> Value:
        return self._memory.get(location, 0)

    def contents(self) -> Dict[Location, Value]:
        return dict(self._memory)

    def _on_message(self, payload: Any, src: str) -> None:
        # The serialization point is message arrival; the response leaves
        # after the service latency.
        if isinstance(payload, (MemRead, MemWrite, MemRMW)):
            request_id = (payload.reply_to, payload.token)
            if request_id in self._serviced:
                self.stats.bump("mem.duplicate_drops")
                return
            self._serviced.add(request_id)
        if isinstance(payload, MemRead):
            self.stats.bump("mem.reads")
            value = self.value(payload.location)
            self._respond(payload.reply_to, MemReadResp(payload.location, value, payload.token))
        elif isinstance(payload, MemWrite):
            self.stats.bump("mem.writes")
            self._memory[payload.location] = payload.value
            self._respond(payload.reply_to, MemWriteAck(payload.location, payload.token))
        elif isinstance(payload, MemRMW):
            self.stats.bump("mem.rmws")
            old = self.value(payload.location)
            self._memory[payload.location] = payload.compute(old)
            self._respond(payload.reply_to, MemRMWResp(payload.location, old, payload.token))
        else:  # pragma: no cover - defensive
            raise TypeError(f"memory cannot handle {payload!r}")

    def _respond(self, reply_to: str, response: Any) -> None:
        def send() -> None:
            self.interconnect.send(MEMORY_ENDPOINT, reply_to, response)

        self.sim.schedule(self.service_latency, send)
