"""QUANT — the quantitative DEF1-vs-DEF2 study (Section 7's future work).

Three workload families, each compared across SC / DEF1 / DEF2 (and
DEF2-R where read-only sync matters):

* release-heavy critical sections — DEF2's overlap of the release with
  subsequent private accesses should win, and the gap should grow with
  memory latency;
* producer/consumer pipelines — same shape, communication-dominated;
* Test-and-TestAndSet spinning — Section 6's pathology: plain DEF2
  serializes the read-only Tests through exclusive ownership; DEF2-R
  recovers by letting them hit shared copies.
"""

from repro.analysis.comparison import compare_policies, sweep
from repro.analysis.report import format_table, ratio
from repro.memsys.config import NET_CACHE
from repro.models.policies import (
    AllSyncPolicy,
    Def1Policy,
    Def2Policy,
    Def2RPolicy,
    RelaxedPolicy,
    SCPolicy,
)
from repro.workloads.locks import critical_section_program
from repro.workloads.producer_consumer import producer_consumer_program
from repro.workloads.read_sharing import read_sharing_program

HIGH_LATENCY = NET_CACHE.with_overrides(network_base_latency=16, network_jitter=4)


def _print_comparison(title, comparisons):
    print(f"\n[QUANT] {title}")
    print(
        format_table(
            ["policy", "cycles", "stall cycles", "messages", "sync NACKs"],
            [
                [c.policy_name, c.mean_cycles, c.mean_stall_cycles,
                 c.mean_messages, c.mean_sync_nacks]
                for c in comparisons
            ],
        )
    )


def test_quant_critical_sections(benchmark, executor):
    comparisons = benchmark.pedantic(
        lambda: compare_policies(
            program_factory=lambda: critical_section_program(
                2, 2, private_writes=6
            ),
            policies=[SCPolicy, Def1Policy, Def2Policy],
            config=HIGH_LATENCY,
            runs=5,
            executor=executor,
        ),
        rounds=1,
        iterations=1,
    )
    _print_comparison("lock-protected increments + private post-release work", comparisons)
    by_name = {c.policy_name: c for c in comparisons}
    print(
        f"  DEF1/DEF2 = {ratio(by_name['DEF1'].mean_cycles, by_name['DEF2'].mean_cycles)}, "
        f"SC/DEF2 = {ratio(by_name['SC'].mean_cycles, by_name['DEF2'].mean_cycles)}"
    )
    assert by_name["DEF2"].mean_cycles < by_name["DEF1"].mean_cycles
    assert by_name["DEF2"].mean_cycles < by_name["SC"].mean_cycles


def test_quant_latency_sweep(benchmark, executor):
    """The DEF2 advantage grows with memory latency."""
    points = benchmark.pedantic(
        lambda: sweep(
            parameter_values=[4, 12, 24],
            program_for=lambda latency: (
                lambda: critical_section_program(2, 2, private_writes=6)
            ),
            config_for=lambda latency: NET_CACHE.with_overrides(
                network_base_latency=latency, network_jitter=4
            ),
            policies=[Def1Policy, Def2Policy],
            runs=4,
            executor=executor,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.parameter, p.cycles_of("DEF1"), p.cycles_of("DEF2"),
         ratio(p.cycles_of("DEF1"), p.cycles_of("DEF2"))]
        for p in points
    ]
    print("\n[QUANT] latency sweep (critical sections)")
    print(format_table(["latency", "DEF1 cycles", "DEF2 cycles", "DEF1/DEF2"], rows))
    gaps = [p.cycles_of("DEF1") - p.cycles_of("DEF2") for p in points]
    assert gaps[-1] > gaps[0]


def test_quant_producer_consumer(benchmark, executor):
    comparisons = benchmark.pedantic(
        lambda: compare_policies(
            program_factory=lambda: producer_consumer_program(
                items=4, rounds=2, post_release_work=8
            ),
            policies=[SCPolicy, Def1Policy, Def2Policy],
            config=HIGH_LATENCY,
            runs=4,
            executor=executor,
        ),
        rounds=1,
        iterations=1,
    )
    _print_comparison("producer/consumer pipeline", comparisons)
    by_name = {c.policy_name: c for c in comparisons}
    assert by_name["DEF2"].mean_cycles <= by_name["SC"].mean_cycles


def test_quant_lock_handoff_latency(benchmark):
    """The acquirer-side metric behind Figure 3: mean release->acquire
    hand-off latency of the critical-section lock, per policy.  Both
    weak policies pay it ('P0 but not P1 gains an advantage'); it grows
    with memory latency under both."""
    from repro.analysis.handoff import mean_handoff_latency
    from repro.memsys.system import run_program

    config = NET_CACHE.with_overrides(network_base_latency=16, network_jitter=4)

    def measure():
        rows = []
        for policy_factory in (Def1Policy, Def2Policy):
            latencies = []
            for seed in range(5):
                run = run_program(
                    critical_section_program(2, 2, private_writes=4),
                    policy_factory(),
                    config,
                    seed=seed,
                )
                assert run.completed
                latency = mean_handoff_latency(run.execution, "lock")
                if latency is not None:
                    latencies.append(latency)
            rows.append(
                [policy_factory().name,
                 sum(latencies) / len(latencies) if latencies else 0.0]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n[QUANT] lock hand-off latency (cycles, release->acquire)")
    print(format_table(["policy", "mean handoff"], rows))
    assert all(row[1] > 0 for row in rows)


def test_quant_labels_vs_all_sync(benchmark, executor):
    """Section 3's claim quantified: hardware that must treat every
    access as potential synchronization ([Lam86]) loses badly to
    labelled DRF0 hardware on read-sharing workloads."""
    comparisons = benchmark.pedantic(
        lambda: compare_policies(
            program_factory=lambda: read_sharing_program(3, 4, 3),
            policies=[Def2Policy, Def2RPolicy, AllSyncPolicy],
            config=NET_CACHE,
            runs=4,
            executor=executor,
        ),
        rounds=1,
        iterations=1,
    )
    _print_comparison("read sharing: DRF0 labels vs assume-all-sync", comparisons)
    by_name = {c.policy_name: c for c in comparisons}
    print(
        f"  ALL-SYNC/DEF2 = "
        f"{ratio(by_name['ALL-SYNC'].mean_cycles, by_name['DEF2'].mean_cycles)}"
    )
    assert by_name["DEF2"].mean_cycles < by_name["ALL-SYNC"].mean_cycles
    assert by_name["DEF2-R"].mean_cycles < by_name["ALL-SYNC"].mean_cycles


def test_quant_test_and_test_and_set(benchmark, executor):
    """Section 6's spinning pathology and its refinement."""
    comparisons = benchmark.pedantic(
        lambda: compare_policies(
            program_factory=lambda: critical_section_program(
                3, 2, local_work=8, use_test_test_and_set=True
            ),
            policies=[Def1Policy, Def2Policy, Def2RPolicy],
            config=NET_CACHE,
            runs=4,
            executor=executor,
        ),
        rounds=1,
        iterations=1,
    )
    _print_comparison("Test-and-TestAndSet spinning (3 procs)", comparisons)
    by_name = {c.policy_name: c for c in comparisons}
    # The refinement must cut protocol traffic versus plain DEF2.
    assert by_name["DEF2-R"].mean_messages < by_name["DEF2"].mean_messages
