"""Diff two ``BENCH_prN.json`` snapshots with per-metric tolerance.

The committed perf trajectory (one snapshot per PR at the repo root) is
only useful if a regression in it fails loudly.  This tool compares a
baseline snapshot against a candidate, metric by metric::

    python benchmarks/bench_compare.py BENCH_pr7.json BENCH_pr8.json

Comparison rules, chosen to match what the numbers mean:

* keys ending in ``_s`` (wall-clock seconds) and ``_pct`` (overhead
  percentages) are noisy — the candidate may be *slower* by up to the
  tolerance band (default 50%, ``--tolerance``) before the gate fails;
  getting faster never fails.  Percentages additionally get an absolute
  grace band (``--pct-grace``, default 5 points) because a 1% → 2%
  overhead is a doubling that means nothing.
* every other numeric key is a count or configuration value
  (``runs``, ``sc_outcomes``, ``group_commit``) and must match exactly
  — a changed count is a changed workload, not a perf delta.
* ``schema``, ``pr``, and the ``host`` block identify the snapshot
  rather than measure it and are never compared.
* keys present on only one side are reported but do not fail: the
  trajectory grows a section per PR by design.

Exit status is 0 when every compared metric is within tolerance, 1
otherwise, so CI can use the comparison as a gate.
"""

import argparse
import json
import sys

#: Identity keys: they say *which* snapshot this is, not how fast.
SKIP_KEYS = ("schema", "pr", "host")

#: Default slack for wall-clock metrics: CI boxes are noisy, and the
#: trajectory is advisory between machines.  Regressions far outside
#: this band are real even through the noise.
DEFAULT_TOLERANCE = 0.5

#: Absolute grace (in points) for ``_pct`` overhead metrics.
DEFAULT_PCT_GRACE = 5.0


def flatten(snapshot, prefix=""):
    """Numeric leaves as dotted keys: ``{"cores.simple.campaign_s": x}``."""
    flat = {}
    for key, value in snapshot.items():
        if not prefix and key in SKIP_KEYS:
            continue
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten(value, f"{dotted}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[dotted] = value
    return flat


def compare(
    baseline,
    candidate,
    tolerance=DEFAULT_TOLERANCE,
    pct_grace=DEFAULT_PCT_GRACE,
    ignore=(),
):
    """Compare two snapshot dicts; returns (report_lines, violations)."""
    base = flatten(baseline)
    cand = flatten(candidate)
    lines = []
    violations = []
    for key in sorted(set(base) | set(cand)):
        if any(key == pat or key.startswith(pat + ".") for pat in ignore):
            continue
        if key not in cand:
            lines.append(f"  - {key}: removed (was {base[key]})")
            continue
        if key not in base:
            lines.append(f"  + {key}: added ({cand[key]})")
            continue
        old, new = base[key], cand[key]
        leaf = key.rsplit(".", 1)[-1]
        if leaf.endswith("_s"):
            limit = old * (1 + tolerance)
            ok = new <= limit
            delta = (new - old) / old * 100 if old else 0.0
            verdict = "ok" if ok else f"REGRESSION (> +{tolerance:.0%})"
            lines.append(
                f"    {key}: {old:g} -> {new:g} ({delta:+.1f}%) {verdict}"
            )
        elif leaf.endswith("_pct"):
            limit = max(old * (1 + tolerance), old + pct_grace)
            ok = new <= limit
            lines.append(
                f"    {key}: {old:g} -> {new:g} "
                f"({'ok' if ok else f'REGRESSION (> {limit:g})'})"
            )
        else:
            ok = new == old
            lines.append(
                f"    {key}: {old:g} -> {new:g} "
                f"({'ok' if ok else 'MISMATCH (counts must agree)'})"
            )
        if not ok:
            violations.append(key)
    return lines, violations


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="previous BENCH_prN.json")
    parser.add_argument("candidate", help="new BENCH_prN.json")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="FRAC",
        help="allowed slowdown fraction for _s/_pct metrics "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--pct-grace", type=float, default=DEFAULT_PCT_GRACE,
        metavar="POINTS",
        help="absolute grace band for _pct metrics, in percentage "
        "points (default %(default)s)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="KEY",
        help="dotted key (or prefix) to exclude; repeatable",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.candidate) as handle:
        candidate = json.load(handle)

    lines, violations = compare(
        baseline, candidate,
        tolerance=args.tolerance,
        pct_grace=args.pct_grace,
        ignore=tuple(args.ignore),
    )
    print(f"bench-compare: {args.baseline} -> {args.candidate} "
          f"(tolerance +{args.tolerance:.0%} on _s metrics)")
    for line in lines:
        print(line)
    if violations:
        print(f"FAIL: {len(violations)} metric(s) out of tolerance: "
              f"{', '.join(violations)}")
        return 1
    print("PASS: all compared metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
