"""Bounded model checking of the weak-ordering contract.

Seed campaigns *sample* hardware timings; the systematic explorer
*enumerates* them (all message schedules within a delay budget), so a
clean sweep is an exhaustive bounded proof.  This example:

1. exhaustively finds the Figure-1 violation on relaxed hardware,
2. certifies DEF2 against the DRF0 Dekker over every schedule at
   increasing budgets,
3. does the same for a lock-protected critical section.

Run:  python examples/model_checking.py
"""

from repro import (
    Def2Policy,
    RelaxedPolicy,
    SCVerifier,
    explore_program,
    verify_weak_ordering,
)
from repro.litmus import fig1_dekker, fig1_dekker_all_sync
from repro.workloads import critical_section_program


def main() -> None:
    verifier = SCVerifier()

    print("=== Relaxed hardware vs the racy Dekker ===")
    program = fig1_dekker(warm=True).executable_program()
    sc_set = verifier.sc_result_set(program)
    report = explore_program(program, RelaxedPolicy, max_delays=2)
    print(report.describe())
    violations = [o for o in report.observables if o not in sc_set]
    print(f"-> {len(violations)} non-SC outcome(s) found by exhaustive "
          f"bounded search\n")

    print("=== DEF2 vs the DRF0 (all-sync) Dekker ===")
    drf = fig1_dekker_all_sync(warm=True).executable_program()
    drf_sc = verifier.sc_result_set(drf)
    for budget in (1, 2, 3):
        holds, rep = verify_weak_ordering(
            drf, Def2Policy, drf_sc, max_delays=budget
        )
        print(f"budget {budget}: {rep.runs:5d} schedules, "
              f"exhaustive={rep.exhausted}, contract holds: {holds}")
        assert holds
    print()

    print("=== DEF2 vs a lock-protected critical section ===")
    lock_prog = critical_section_program(2, 1)
    lock_sc = verifier.sc_result_set(lock_prog)
    holds, rep = verify_weak_ordering(lock_prog, Def2Policy, lock_sc,
                                      max_delays=2)
    print(f"budget 2: {rep.runs} schedules, contract holds: {holds}")
    print()
    print("Within these bounds, no schedule of the Section-5 implementation")
    print("can make a DRF0 program observe a non-SC result — the Appendix B")
    print("theorem, checked mechanically rather than sampled.")


if __name__ == "__main__":
    main()
