"""Analysis: Figure-3 stall attribution, policy comparisons, reporting."""

from repro.analysis.comparison import (
    PolicyComparison,
    SweepPoint,
    compare_policies,
    sweep,
)
from repro.analysis.figure3 import (
    Figure3Row,
    ReleaseStallReport,
    analyze_release_stall,
    figure3_sweep,
)
from repro.analysis.handoff import (
    Handoff,
    handoff_summary,
    lock_handoffs,
    mean_handoff_latency,
)
from repro.analysis.invariants import (
    check_no_thin_air,
    check_per_location_read_order,
    check_per_location_write_order,
    check_rmw_atomicity,
    check_trace,
)
from repro.analysis.report import format_table, ratio
from repro.analysis.timeline import (
    render_execution,
    render_hardware_trace,
    render_with_races,
)

__all__ = [
    "Handoff",
    "check_no_thin_air",
    "handoff_summary",
    "lock_handoffs",
    "mean_handoff_latency",
    "check_per_location_read_order",
    "check_per_location_write_order",
    "check_rmw_atomicity",
    "check_trace",
    "render_execution",
    "render_hardware_trace",
    "render_with_races",
    "Figure3Row",
    "PolicyComparison",
    "ReleaseStallReport",
    "SweepPoint",
    "analyze_release_stall",
    "compare_policies",
    "figure3_sweep",
    "format_table",
    "ratio",
    "sweep",
]
