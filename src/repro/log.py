"""Logging for the ``repro`` package.

Library code gets loggers from :func:`get_logger` and never configures
handlers; the CLI (and only the CLI) installs a stderr handler via
:func:`configure_cli_logging`, mapped from ``-v``/``-q`` counts.  Results
stay on stdout via ``print``; progress and telemetry chatter goes
through logging so scripts capturing stdout see clean data.
"""

from __future__ import annotations

import logging
import sys

_ROOT = "repro"

#: Marker attribute identifying the handler installed by
#: :func:`configure_cli_logging`, so repeated ``main()`` calls (the test
#: suite invokes the CLI in-process) reconfigure instead of stacking
#: duplicate handlers.
_CLI_HANDLER_FLAG = "_repro_cli_handler"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """The package logger, or a ``repro.<name>`` child."""
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


def configure_cli_logging(verbosity: int = 0) -> None:
    """Install the CLI's stderr handler at a verbosity-mapped level.

    ``verbosity`` is ``-v`` count minus ``-q`` count:
    ``<= -1`` → ERROR, ``0`` → WARNING, ``1`` → INFO, ``>= 2`` → DEBUG.
    """
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        if getattr(handler, _CLI_HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _CLI_HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(level)
