"""Stress / soak coverage: bigger machines, heavier workloads, every
substrate.  These runs exercise interactions the unit suites cannot —
capacity pressure during contention, many-processor sync storms,
explorer x snooping, migration under DEF2 traffic.
"""

import pytest

from repro.analysis.invariants import check_trace
from repro.explore.explorer import explore_program
from repro.memsys.config import BUS_CACHE_SNOOP, NET_CACHE
from repro.memsys.system import System, run_program
from repro.models.policies import (
    AllSyncPolicy,
    Def1Policy,
    Def2Policy,
    Def2RPolicy,
    SCPolicy,
)
from repro.sc.trace_check import check_trace_sc
from repro.workloads.barrier import barrier_program
from repro.workloads.locks import critical_section_program
from repro.workloads.producer_consumer import (
    expected_checksum,
    producer_consumer_program,
)
from repro.workloads.ticket_lock import sense_barrier_program, ticket_lock_program


class TestManyProcessors:
    @pytest.mark.parametrize(
        "policy_cls", [Def1Policy, Def2Policy, Def2RPolicy], ids=lambda p: p.name
    )
    def test_six_processor_critical_sections(self, policy_cls):
        program = critical_section_program(6, 2, private_writes=2)
        run = run_program(
            program, policy_cls(), NET_CACHE, seed=11, max_cycles=5_000_000
        )
        assert run.completed
        assert run.observable.memory_value("count") == 12
        result = check_trace_sc(run.execution, dict(program.initial_memory))
        assert result.is_sc, result.describe()

    def test_five_processor_barrier_storm(self):
        program = barrier_program(5)
        for policy_cls in (Def2Policy, Def2RPolicy):
            run = run_program(
                program, policy_cls(), NET_CACHE, seed=7, max_cycles=5_000_000
            )
            assert run.completed
            assert run.observable.memory_value("bar") == 5

    def test_six_processor_ticket_lock_fifo(self):
        program = ticket_lock_program(6, 1)
        run = run_program(
            program, Def2RPolicy(), NET_CACHE, seed=3, max_cycles=5_000_000
        )
        assert run.completed
        assert run.observable.memory_value("count") == 6
        assert run.observable.memory_value("serving") == 6

    def test_four_stage_pipeline(self):
        program = producer_consumer_program(items=3, rounds=2, stages=4)
        run = run_program(
            program, Def2Policy(), NET_CACHE, seed=5, max_cycles=5_000_000
        )
        assert run.completed
        expected = expected_checksum(items=3, rounds=2, stages=4)
        assert run.observable.register(3, "sum") == expected


class TestCapacityPressureUnderContention:
    @pytest.mark.parametrize(
        "policy_cls", [SCPolicy, Def2Policy, AllSyncPolicy], ids=lambda p: p.name
    )
    def test_two_line_caches(self, policy_cls):
        config = NET_CACHE.with_overrides(cache_capacity=2)
        program = critical_section_program(3, 2, private_writes=3)
        run = run_program(
            program, policy_cls(), config, seed=9, max_cycles=5_000_000
        )
        assert run.completed
        assert run.observable.memory_value("count") == 6
        assert check_trace(run.execution, dict(program.initial_memory)) == []

    def test_sense_barrier_with_tiny_cache(self):
        config = NET_CACHE.with_overrides(cache_capacity=2)
        program = sense_barrier_program(3, episodes=2)
        run = run_program(
            program, Def2Policy(), config, seed=4, max_cycles=5_000_000
        )
        assert run.completed
        assert run.observable.memory_value("bsense") == 2


class TestSnoopingStress:
    def test_critical_sections_on_snooping_bus(self):
        program = critical_section_program(4, 2, private_writes=2)
        run = run_program(
            program, Def2Policy(), BUS_CACHE_SNOOP, seed=2, max_cycles=5_000_000
        )
        assert run.completed
        assert run.observable.memory_value("count") == 8

    def test_explorer_on_snooping_substrate(self):
        """Systematic exploration composes with the snooping protocol."""
        from repro.litmus.catalog import fig1_dekker_all_sync
        from repro.sc.verifier import SCVerifier

        program = fig1_dekker_all_sync().program
        verifier = SCVerifier()
        sc_set = verifier.sc_result_set(program)
        report = explore_program(
            program, Def2Policy, max_delays=2, config=BUS_CACHE_SNOOP
        )
        assert report.exhausted
        assert report.incomplete_runs == 0
        assert report.observables <= sc_set


class TestMigrationUnderLoad:
    def test_migrate_during_lock_contention(self):
        from repro.core.program import Program, Thread
        from repro.memsys.migration import MigrationController
        from repro.sc.verifier import SCVerifier

        base = critical_section_program(2, 2)
        program = Program(
            list(base.threads) + [Thread("P_idle", (), {})],
            initial_memory=dict(base.initial_memory),
            name="cs_mig",
        )
        verifier = SCVerifier()
        sc_set = verifier.sc_result_set(program)
        for seed in range(4):
            system = System(program, Def2Policy(), NET_CACHE, seed=seed)
            MigrationController(system).schedule(0, 2, at_cycle=40)
            run = system.run(max_cycles=5_000_000)
            assert run.completed, seed
            assert run.observable in sc_set, seed
            assert run.observable.memory_value("count") == 4
