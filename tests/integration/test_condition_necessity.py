"""Necessity of the Section 5.1 conditions, demonstrated by breakage.

Appendix B proves the five conditions *sufficient*; these tests provide
the converse evidence for the two load-bearing mechanisms:

* **condition 4** (no new access until previous syncs commit): with sync
  ops made fire-and-forget, a warm-exclusive all-sync Dekker reaches an
  SC-forbidden outcome — found exhaustively by the schedule explorer;
* **condition 5** (the reserve bit): on a network whose invalidations
  travel a separate virtual channel (the paper's general-interconnect
  setting), disabling reserve bits lets an acquirer's TestAndSet succeed
  while the releaser's data invalidation is still in flight — a stale
  read no SC execution allows.  The intact DEF2 survives the identical
  network because the reserve bit holds the TestAndSet until the counter
  (and hence the invalidation acknowledgement) drains.

A reproduction finding documented here and in docs/THEORY.md: on a
single-directory machine with full per-channel FIFO, condition 5 is
*subsumed by the fabric* — an invalidation can never be overtaken by a
later grant on the same channel, so the no-reserve variant is
experimentally indistinguishable from DEF2 there.  The reserve bit earns
its keep exactly when the network is as weak as the paper assumes.
"""

import pytest

from repro.core.operation import OpKind
from repro.core.program import Program, ThreadBuilder
from repro.explore.explorer import explore_program
from repro.interconnect.network import Network
from repro.memsys.config import NET_CACHE, NET_CACHE_VC
from repro.memsys.system import System
from repro.models.base import BlockKind
from repro.models.policies import Def2Policy
from repro.sc.verifier import SCVerifier


class NoCommitGateDef2(Def2Policy):
    """Condition 4 disabled: synchronization ops are fire-and-forget."""

    name = "DEF2-no-cond4"
    # Registered for report naming only — keep the broken variant out of
    # policy_names()/--policy choices.
    constructible_by_name = False

    def issue_gate(self, proc, kind):
        return None

    def block_kind(self, kind: OpKind) -> BlockKind:
        return BlockKind.NONE


class NoReserveDef2(Def2Policy):
    """Condition 5 disabled: no reserve bits."""

    name = "DEF2-no-cond5"
    constructible_by_name = False
    reserve_enabled = False


class SlowInvalNetwork(Network):
    """Invalidation virtual channel with pathological latency — the
    adversarial corner of the paper's unrestricted network."""

    INVAL_LATENCY = 100

    def send(self, src, dst, payload):
        from repro.coherence.protocol import Inval

        if isinstance(payload, Inval):
            self.sim.schedule(
                self.INVAL_LATENCY, lambda: self._deliver(src, dst, payload)
            )
            return
        super().send(src, dst, payload)


def warm_exclusive_dekker() -> Program:
    """All-sync Dekker with each processor warm-owning its read target:
    the sync read can then *hit locally* while the sync write is still
    in flight — exactly the overlap condition 4 forbids."""
    t0 = (
        ThreadBuilder("P0")
        .sync_store("y", 9)
        .sync_store("x", 1)
        .sync_load("r1", "y")
        .build()
    )
    t1 = (
        ThreadBuilder("P1")
        .sync_store("x", 9)
        .sync_store("y", 1)
        .sync_load("r2", "x")
        .build()
    )
    return Program([t0, t1], name="warm_exclusive_dekker")


def gated_handoff() -> Program:
    """DRF0 handoff: P1 legally warms a copy of x (ready handshake),
    waits for the in-section flag, acquires the lock, reads x."""
    t0 = (
        ThreadBuilder("P0")
        .label("r").sync_load("g0", "ready").beq("g0", 0, "r")
        .label("a").test_and_set("t", "lock").bne("t", 0, "a")
        .sync_store("flag", 1)
        .store("x", 42)
        .sync_store("lock", 0)
        .build()
    )
    t1 = (
        ThreadBuilder("P1")
        .load("w", "x")
        .sync_store("ready", 1)
        .label("f").sync_load("g", "flag").beq("g", 0, "f")
        .label("b").test_and_set("t", "lock").bne("t", 0, "b")
        .load("r2", "x")
        .sync_store("lock", 0)
        .build()
    )
    return Program([t0, t1], name="gated_handoff")


@pytest.fixture(scope="module")
def verifier():
    return SCVerifier()


class TestCondition4Necessity:
    def test_drf0_status(self):
        from repro.drf.drf0 import obeys_drf0

        assert obeys_drf0(warm_exclusive_dekker())

    def test_intact_def2_clean_exhaustively(self, verifier):
        program = warm_exclusive_dekker()
        sc_set = verifier.sc_result_set(program)
        report = explore_program(program, Def2Policy, max_delays=3)
        assert report.exhausted
        assert report.observables <= sc_set

    def test_without_condition4_the_contract_breaks(self, verifier):
        program = warm_exclusive_dekker()
        sc_set = verifier.sc_result_set(program)
        report = explore_program(program, NoCommitGateDef2, max_delays=3)
        violations = [o for o in report.observables if o not in sc_set]
        assert violations, "condition 4's removal must be observable"
        # The signature outcome: both sync reads hit their warm-exclusive
        # copies while the sync writes were in flight.
        assert any(
            o.register(0, "r1") == 9 and o.register(1, "r2") == 9
            for o in violations
        )


class TestCondition5Necessity:
    def test_drf0_status(self):
        from repro.drf.drf0 import obeys_drf0

        assert obeys_drf0(gated_handoff())

    def _run(self, policy, seed=0):
        def make_net(sim, stats, rng):
            return SlowInvalNetwork(
                sim, stats, rng, base_latency=2, jitter=0,
                point_to_point_fifo=True, inval_virtual_channel=True,
            )

        system = System(
            gated_handoff(), policy, NET_CACHE_VC.with_overrides(start_skew=0),
            seed=seed, interconnect_factory=make_net,
        )
        return system.run()

    def test_without_reserve_bits_the_contract_breaks(self, verifier):
        """Slow invalidation + no reserve bit: the acquirer reads stale
        data after a successful TestAndSet — SC-forbidden."""
        program = gated_handoff()
        sc_set = verifier.sc_result_set(program)
        run = self._run(NoReserveDef2())
        assert run.completed
        assert run.observable.register(1, "r2") == 0  # the stale read
        assert run.observable not in sc_set

    def test_intact_def2_survives_the_same_network(self, verifier):
        """The reserve bit NACKs the TestAndSet until the counter drains
        — i.e. until the invalidation has been acknowledged."""
        program = gated_handoff()
        sc_set = verifier.sc_result_set(program)
        run = self._run(Def2Policy())
        assert run.completed
        assert run.observable.register(1, "r2") == 42
        assert run.observable in sc_set
        assert run.stats.count("dir.sync_nacks") > 0  # the stall happened

    def test_fifo_fabric_subsumes_condition5(self, verifier):
        """The finding: on the fully-FIFO single-directory machine the
        no-reserve variant cannot be broken (within the explored bound) —
        the fabric orders invalidations before later grants."""
        program = gated_handoff()
        sc_set = verifier.sc_result_set(program)
        report = explore_program(
            program, NoReserveDef2, max_delays=4, config=NET_CACHE
        )
        assert report.exhausted
        assert report.observables <= sc_set


class TestVirtualChannelFleet:
    def test_intact_def2_on_inval_vc_fleet(self, verifier):
        """DEF2 keeps the contract on the inval-virtual-channel network
        across seeds and jitters (the paper's own setting)."""
        from repro.memsys.system import run_program
        from repro.workloads.random_programs import random_drf0_program

        config = NET_CACHE_VC.with_overrides(network_jitter=20)
        for program_seed in range(5):
            program = random_drf0_program(program_seed)
            sc_set = verifier.sc_result_set(program)
            for seed in range(4):
                run = run_program(program, Def2Policy(), config, seed=seed)
                assert run.completed
                assert run.observable in sc_set
