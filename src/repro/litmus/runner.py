"""The litmus campaign runner: Definition 2 as an executable check.

For a litmus test, a policy and a machine configuration, the runner
executes the program across many timing seeds, histograms the outcomes,
and classifies each against the exhaustive SC result set of the same
program.  An outcome outside the SC set is a sequential-consistency
violation — permitted for racy programs on weak hardware, *forbidden*
(Definition 2) for DRF0 programs on hardware claiming weak ordering
w.r.t. DRF0.

Execution goes through :mod:`repro.campaign`: the runner turns
``(test, policy, config, seeds)`` into a list of
:class:`~repro.campaign.spec.RunSpec` and classifies the returned
results, so a campaign runs serial or parallel (``executor=``/``jobs=``)
and optionally cached, with identical output either way.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign import (
    Executor,
    PolicySpec,
    ResultCache,
    RunResult,
    RunSpec,
    program_fingerprint,
)
from repro.core.execution import Observable
from repro.faults import FaultPlan
from repro.litmus.test import LitmusTest
from repro.memsys.config import MachineConfig
from repro.sc.verifier import SCVerifier
from repro.sim.rng import seed_stream
from repro.trace.events import TraceEvent
from repro.trace.summary import TraceSummary
from repro.trace.tracer import TraceSpec


@dataclass
class LitmusResult:
    """Outcome histogram of a litmus campaign plus its SC classification."""

    test: LitmusTest
    policy_name: str
    config_name: str
    runs: int
    completed_runs: int
    #: Outcome (projected registers) -> observation count.
    histogram: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    #: Full observables that fell outside the SC result set.
    sc_violations: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    #: Mean cycles across completed runs.
    mean_cycles: float = 0.0
    #: Runs that ended with a failure record (watchdog trip, crash).
    failed_runs: int = 0
    #: ``(label, events)`` per traced run — present only when the
    #: campaign carried a :class:`~repro.trace.tracer.TraceSpec`; feeds
    #: :func:`repro.trace.export.write_trace` directly.
    run_traces: List[Tuple[str, Tuple[TraceEvent, ...]]] = field(
        default_factory=list
    )
    #: Merged trace telemetry across the campaign's runs.
    trace_summary: Optional[TraceSummary] = None
    #: The campaign stopped early on SIGTERM/SIGINT; unexecuted seeds
    #: are counted in ``failed_runs`` and re-run on a journal resume.
    preempted: bool = False

    @property
    def violated_sc(self) -> bool:
        return bool(self.sc_violations)

    @property
    def forbidden_seen(self) -> Optional[int]:
        """How often the test's designated forbidden outcome appeared."""
        if self.test.forbidden is None:
            return None
        return self.histogram.get(self.test.forbidden, 0)

    def describe(self) -> str:
        failed = f", {self.failed_runs} failed" if self.failed_runs else ""
        lines = [
            f"{self.test.name} on {self.config_name}/{self.policy_name}: "
            f"{self.completed_runs}/{self.runs} runs, "
            f"mean {self.mean_cycles:.0f} cycles{failed}"
        ]
        for outcome, count in sorted(self.histogram.items()):
            marks = []
            if outcome in self.sc_violations:
                marks.append("NOT SC")
            if self.test.forbidden is not None and outcome == self.test.forbidden:
                marks.append("forbidden")
            suffix = f"   <-- {', '.join(marks)}" if marks else ""
            lines.append(
                f"  {self.test.describe_outcome(outcome)}: {count}{suffix}"
            )
        return "\n".join(lines)


#: Legacy positional order of :meth:`LitmusRunner.run`'s campaign
#: options, accepted (with a warning) by the deprecation shim.
_RUN_LEGACY_POSITIONALS = ("runs", "base_seed", "max_cycles")


class LitmusRunner:
    """Runs litmus campaigns, sharing one SC oracle across tests."""

    def __init__(self, verifier: Optional[SCVerifier] = None) -> None:
        self.verifier = verifier or SCVerifier()
        #: Content digest -> warmed executable program.  Keyed by the
        #: test's *content* (program fingerprint + warm flag), never its
        #: display name, so two distinct tests sharing a name can never
        #: silently reuse each other's executable.
        self._program_cache: Dict[str, object] = {}

    def run(
        self,
        test: LitmusTest,
        policy_factory,
        config: MachineConfig,
        *legacy_args,
        runs: int = 50,
        base_seed: int = 12345,
        max_cycles: int = 1_000_000,
        executor: Optional[Executor] = None,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        faults: Optional[FaultPlan] = None,
        trace: Optional[TraceSpec] = None,
        sanitize: Optional[str] = None,
        triage=None,
        journal=None,
        progress=None,
    ) -> LitmusResult:
        """Run ``runs`` seeds of ``test`` and classify the outcomes.

        ``policy_factory`` is anything :meth:`PolicySpec.of` accepts; a
        fresh policy is constructed per run (policies may hold per-run
        state) from its spec, in-process or in a worker.

        ``faults`` injects the given :class:`~repro.faults.FaultPlan`
        into every run — adversarial (but legal) message timings under
        which Definition 2's promise must still hold for DRF0 programs.

        ``trace`` records every run's event stream; the result carries
        per-run traces plus a merged summary.

        ``sanitize`` turns on the protocol sanitizer per run (``"log"``
        or ``"strict"``); ``triage`` is an optional
        :class:`~repro.sanitizer.triage.TriageConfig` directing failing
        runs into shrunk repro bundles.

        ``journal`` (a :class:`~repro.campaign.journal.CampaignJournal`
        or a path) makes the campaign durable: completed seeds append
        as they finish and replay on the next run, so a killed or
        preempted litmus campaign resumes where it left off.

        ``progress`` (``True`` or a
        :class:`~repro.obs.ProgressReporter`) prints a live heartbeat
        while the campaign runs.
        """
        if legacy_args:
            warnings.warn(
                "passing LitmusRunner.run options positionally is "
                "deprecated; pass runs/base_seed/max_cycles as keywords",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(legacy_args) > len(_RUN_LEGACY_POSITIONALS):
                raise TypeError(
                    f"LitmusRunner.run takes at most "
                    f"{3 + len(_RUN_LEGACY_POSITIONALS)} positional arguments"
                )
            overrides = dict(zip(_RUN_LEGACY_POSITIONALS, legacy_args))
            runs = overrides.get("runs", runs)
            base_seed = overrides.get("base_seed", base_seed)
            max_cycles = overrides.get("max_cycles", max_cycles)

        from repro.api import campaign as run_campaign

        policy_spec = PolicySpec.of(policy_factory)
        specs = self.campaign_specs(
            test, policy_spec, config, runs, base_seed, max_cycles,
            faults=faults, trace=trace, sanitize=sanitize,
        )
        campaign = run_campaign(
            specs,
            executor=executor,
            jobs=jobs,
            cache=cache,
            label=f"litmus:{test.name}:{config.name}:{policy_spec.name}",
            triage=triage,
            journal=journal,
            progress=progress,
        )
        result = self.collect(
            test, policy_spec.name, config.name, campaign.results
        )
        result.preempted = campaign.preempted
        return result

    def campaign_specs(
        self,
        test: LitmusTest,
        policy_spec: PolicySpec,
        config: MachineConfig,
        runs: int,
        base_seed: int,
        max_cycles: int = 1_000_000,
        faults: Optional[FaultPlan] = None,
        trace: Optional[TraceSpec] = None,
        sanitize: Optional[str] = None,
    ) -> List[RunSpec]:
        """The campaign's unit-of-work list: one spec per derived seed."""
        program = self._executable(test)
        return [
            RunSpec(
                program=program,
                policy=policy_spec,
                config=config,
                seed=seed,
                max_cycles=max_cycles,
                faults=faults,
                trace=trace,
                sanitize=sanitize,
            )
            for seed in seed_stream(base_seed, runs)
        ]

    def collect(
        self,
        test: LitmusTest,
        policy_name: str,
        config_name: str,
        results: Sequence[RunResult],
    ) -> LitmusResult:
        """Histogram campaign results and classify them against SC."""
        program = self._executable(test)
        sc_set: Set[Observable] = self.verifier.sc_result_set(program)

        histogram: Dict[Tuple[int, ...], int] = {}
        violations: Dict[Tuple[int, ...], int] = {}
        completed = 0
        total_cycles = 0
        failed = 0
        run_traces: List[Tuple[str, Tuple[TraceEvent, ...]]] = []
        for i, result in enumerate(results):
            if result.trace_events is not None:
                run_traces.append((f"run{i}", result.trace_events))
            if result.failure is not None:
                failed += 1
            if not result.completed or result.observable is None:
                continue
            completed += 1
            total_cycles += result.cycles
            outcome = test.project(result.observable)
            histogram[outcome] = histogram.get(outcome, 0) + 1
            if result.observable not in sc_set:
                violations[outcome] = violations.get(outcome, 0) + 1

        return LitmusResult(
            test=test,
            policy_name=policy_name,
            config_name=config_name,
            runs=len(results),
            completed_runs=completed,
            histogram=histogram,
            sc_violations=violations,
            mean_cycles=(total_cycles / completed) if completed else 0.0,
            failed_runs=failed,
            run_traces=run_traces,
            trace_summary=TraceSummary.merged(
                r.trace_summary for r in results
            ),
        )

    def sc_outcomes(self, test: LitmusTest) -> Set[Tuple[int, ...]]:
        """The projected outcomes SC allows for the test."""
        program = self._executable(test)
        return {test.project(obs) for obs in self.verifier.sc_result_set(program)}

    def executable(self, test: LitmusTest):
        """The test's executable program, cached by content.

        The executable (possibly warmed) program must be the same object
        across runs so the verifier's per-program cache hits; consumers
        that enumerate over the same program (the axiomatic
        cross-checker) share the cache through this accessor.
        """
        key = f"{program_fingerprint(test.program)}:warm={test.warm_caches}"
        if key not in self._program_cache:
            self._program_cache[key] = test.executable_program()
        return self._program_cache[key]

    # Backwards-compatible alias for the pre-1.2 private name.
    _executable = executable
