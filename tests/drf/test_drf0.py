"""Unit tests for the program-level DRF0 checker (Definition 3)."""

from repro.core.program import Program, ThreadBuilder
from repro.drf.drf0 import check_execution, check_program, obeys_drf0
from repro.drf.models import DRF0, DRF0_R
from repro.sc.executor import run_schedule
from repro.workloads.barrier import barrier_program, barrier_program_data_spin
from repro.workloads.locks import critical_section_program


def dekker() -> Program:
    t0 = ThreadBuilder("P0").store("x", 1).load("r1", "y").build()
    t1 = ThreadBuilder("P1").store("y", 1).load("r2", "x").build()
    return Program([t0, t1], name="dekker")


def all_sync_dekker() -> Program:
    t0 = ThreadBuilder("P0").sync_store("x", 1).sync_load("r1", "y").build()
    t1 = ThreadBuilder("P1").sync_store("y", 1).sync_load("r2", "x").build()
    return Program([t0, t1], name="dekker_sync")


class TestCheckProgram:
    def test_racy_dekker_rejected_with_witness(self):
        report = check_program(dekker())
        assert not report.obeys
        assert report.races
        assert report.witness is not None
        assert "VIOLATES" in report.describe()

    def test_all_sync_dekker_accepted(self):
        report = check_program(all_sync_dekker())
        assert report.obeys
        assert report.exhaustive
        assert "obeys" in report.describe()

    def test_lock_protected_program_accepted(self):
        assert obeys_drf0(critical_section_program(2, 1))

    def test_sync_barrier_accepted(self):
        assert obeys_drf0(barrier_program(2))

    def test_data_spin_barrier_rejected(self):
        """Section 6: spinning on a barrier count with a data read is a
        restricted data race — DRF0 rejects it."""
        assert not obeys_drf0(barrier_program_data_spin(2))

    def test_single_thread_trivially_drf(self):
        program = Program([ThreadBuilder("P0").store("x", 1).load("r", "x").build()])
        assert obeys_drf0(program)

    def test_disjoint_locations_drf(self):
        program = Program(
            [
                ThreadBuilder("P0").store("x", 1).build(),
                ThreadBuilder("P1").store("y", 1).build(),
            ]
        )
        assert obeys_drf0(program)

    def test_max_executions_marks_non_exhaustive(self):
        report = check_program(all_sync_dekker(), max_executions=2)
        assert report.obeys
        assert not report.exhaustive

    def test_racy_verdict_is_definitive_even_truncated(self):
        report = check_program(dekker(), max_executions=1)
        assert not report.obeys
        assert report.exhaustive

    def test_drf0r_rejects_read_release_program(self):
        """P0 'releases' with a read-only sync: DRF0 accepts (so orders
        all sync pairs) but the refined model does not."""
        t0 = ThreadBuilder("P0").store("x", 1).sync_load("t", "s").build()
        t1 = ThreadBuilder("P1").test_and_set("t", "s").load("r", "x").build()
        program = Program([t0, t1])
        # Not even DRF0-clean in all executions (the TAS may run first),
        # so compare on the execution where the chain exists.
        execution = run_schedule(program, [0, 0, 1, 1])
        assert check_execution(execution, model=DRF0) == []
        assert check_execution(execution, model=DRF0_R) != []

    def test_executions_checked_counted(self):
        report = check_program(all_sync_dekker(), prune=False)
        assert report.executions_checked >= 6

    def test_pruned_check_needs_fewer_executions_same_verdict(self):
        full = check_program(all_sync_dekker(), prune=False)
        pruned = check_program(all_sync_dekker(), prune=True)
        assert pruned.obeys == full.obeys
        assert pruned.executions_checked <= full.executions_checked
