"""The litmus campaign runner: Definition 2 as an executable check.

For a litmus test, a policy and a machine configuration, the runner
executes the program across many timing seeds, histograms the outcomes,
and classifies each against the exhaustive SC result set of the same
program.  An outcome outside the SC set is a sequential-consistency
violation — permitted for racy programs on weak hardware, *forbidden*
(Definition 2) for DRF0 programs on hardware claiming weak ordering
w.r.t. DRF0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.execution import Observable
from repro.litmus.test import LitmusTest
from repro.memsys.config import MachineConfig
from repro.memsys.system import System
from repro.models.base import OrderingPolicy
from repro.sc.verifier import SCVerifier
from repro.sim.rng import seed_stream


@dataclass
class LitmusResult:
    """Outcome histogram of a litmus campaign plus its SC classification."""

    test: LitmusTest
    policy_name: str
    config_name: str
    runs: int
    completed_runs: int
    #: Outcome (projected registers) -> observation count.
    histogram: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    #: Full observables that fell outside the SC result set.
    sc_violations: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    #: Mean cycles across completed runs.
    mean_cycles: float = 0.0

    @property
    def violated_sc(self) -> bool:
        return bool(self.sc_violations)

    @property
    def forbidden_seen(self) -> Optional[int]:
        """How often the test's designated forbidden outcome appeared."""
        if self.test.forbidden is None:
            return None
        return self.histogram.get(self.test.forbidden, 0)

    def describe(self) -> str:
        lines = [
            f"{self.test.name} on {self.config_name}/{self.policy_name}: "
            f"{self.completed_runs}/{self.runs} runs, "
            f"mean {self.mean_cycles:.0f} cycles"
        ]
        for outcome, count in sorted(self.histogram.items()):
            marks = []
            if outcome in self.sc_violations:
                marks.append("NOT SC")
            if self.test.forbidden is not None and outcome == self.test.forbidden:
                marks.append("forbidden")
            suffix = f"   <-- {', '.join(marks)}" if marks else ""
            lines.append(
                f"  {self.test.describe_outcome(outcome)}: {count}{suffix}"
            )
        return "\n".join(lines)


class LitmusRunner:
    """Runs litmus campaigns, sharing one SC oracle across tests."""

    def __init__(self, verifier: Optional[SCVerifier] = None) -> None:
        self.verifier = verifier or SCVerifier()
        self._program_cache: Dict[str, object] = {}

    def run(
        self,
        test: LitmusTest,
        policy_factory,
        config: MachineConfig,
        runs: int = 50,
        base_seed: int = 12345,
        max_cycles: int = 1_000_000,
    ) -> LitmusResult:
        """Run ``runs`` seeds of ``test`` and classify the outcomes.

        ``policy_factory`` is called once per run (policies may hold
        per-run state).
        """
        program = self._executable(test)
        sc_set: Set[Observable] = self.verifier.sc_result_set(program)

        histogram: Dict[Tuple[int, ...], int] = {}
        violations: Dict[Tuple[int, ...], int] = {}
        completed = 0
        total_cycles = 0
        for seed in seed_stream(base_seed, runs):
            system = System(program, policy_factory(), config, seed=seed)
            run = system.run(max_cycles=max_cycles)
            if not run.completed:
                continue
            completed += 1
            total_cycles += run.cycles
            outcome = test.project(run.observable)
            histogram[outcome] = histogram.get(outcome, 0) + 1
            if run.observable not in sc_set:
                violations[outcome] = violations.get(outcome, 0) + 1

        return LitmusResult(
            test=test,
            policy_name=policy_factory().name,
            config_name=config.name,
            runs=runs,
            completed_runs=completed,
            histogram=histogram,
            sc_violations=violations,
            mean_cycles=(total_cycles / completed) if completed else 0.0,
        )

    def sc_outcomes(self, test: LitmusTest) -> Set[Tuple[int, ...]]:
        """The projected outcomes SC allows for the test."""
        program = self._executable(test)
        return {test.project(obs) for obs in self.verifier.sc_result_set(program)}

    def _executable(self, test: LitmusTest):
        # The executable (possibly warmed) program must be the same
        # object across runs so the verifier's per-program cache hits.
        if test.name not in self._program_cache:
            self._program_cache[test.name] = test.executable_program()
        return self._program_cache[test.name]
