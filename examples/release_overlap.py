"""Figure 3: where the release-side stall goes, DEF1 vs DEF2.

Reproduces the paper's analysis of the W(x) ... Unset(s) /
TestAndSet(s) ... R(x) scenario: under the old definition the releaser
stalls until its data writes are globally performed; under the paper's
implementation the release only needs to *commit*, and the releaser
overlaps the writes' completion with its subsequent work.  The acquirer
stalls under both — "P0 but not P1 gains an advantage."

Run:  python examples/release_overlap.py
"""

from repro import Def1Policy, Def2Policy
from repro.analysis import analyze_release_stall, figure3_sweep, format_table


def main() -> None:
    print("Single run at default latency:")
    for policy in (Def1Policy(), Def2Policy()):
        print(" ", analyze_release_stall(policy, seed=7).describe())
    print()

    rows = figure3_sweep(latencies=[4, 8, 16, 32, 64], seeds=[1, 2, 3, 4, 5])
    print("Latency sweep (means over 5 seeds):")
    print(
        format_table(
            [
                "latency",
                "DEF1 release stall",
                "DEF2 release stall",
                "DEF1 P0 done",
                "DEF2 P0 done",
                "DEF1 P1 done",
                "DEF2 P1 done",
            ],
            [
                [
                    r.network_latency,
                    r.def1_release_stall,
                    r.def2_release_stall,
                    r.def1_releaser_finish,
                    r.def2_releaser_finish,
                    r.def1_acquirer_finish,
                    r.def2_acquirer_finish,
                ]
                for r in rows
            ],
        )
    )
    print()
    print("DEF1's cost at the release grows with write latency; DEF2's")
    print("releaser finishes earlier and the gap widens — Figure 3's shape.")


if __name__ == "__main__":
    main()
