"""The canonical unit of campaign work: ``RunSpec`` -> ``RunResult``.

ARCHITECTURE.md guarantees that a hardware run is a pure function of
``(program, policy, config, seed)``.  :class:`RunSpec` reifies that
tuple as a picklable value object, so campaigns — litmus batteries, the
conformance grid, parameter sweeps, the systematic explorer — become
embarrassingly parallel lists of independent work items.  Executing a
spec yields a :class:`RunResult`: the observable outcome plus the
deterministic (simulation-time) timings every aggregation layer needs.

Two deliberate properties:

* **Picklable both ways.**  A spec carries a :class:`PolicySpec` — the
  policy's report name plus constructor parameters — instead of a live
  policy object, so worker processes reconstruct a fresh policy per run
  (policies hold per-run state) and lambdas never cross the process
  boundary.
* **Deterministic results.**  ``RunResult`` contains only
  simulation-derived data (no wall-clock), so serial and parallel
  executions of the same spec are byte-identical under pickling; this
  is what makes on-disk result caching and the serial/parallel
  equivalence tests possible.
"""

from __future__ import annotations

import hashlib
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.execution import Observable
from repro.core.program import Program
from repro.faults import FaultPlan
from repro.memsys.config import MachineConfig
from repro.models.base import OrderingPolicy, policy_class_by_name
from repro.sim.stats import StallReason
from repro.trace.events import TraceEvent
from repro.trace.summary import TraceSummary
from repro.trace.tracer import TraceSpec


@dataclass(frozen=True)
class PolicySpec:
    """A picklable description of an ordering policy.

    ``name`` is the policy's report name (``"DEF2"``); ``params`` the
    constructor keyword arguments as a sorted tuple of pairs, so two
    specs describing the same policy compare and hash equal.  ``core``
    names the processor-core shape the policy runs on (the second axis
    of the model space, see :mod:`repro.cpu.core`); the default
    ``"simple"`` keeps every pre-PR6 spec equal to its old form.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()
    core: str = "simple"

    @classmethod
    def of(cls, policy_or_factory) -> "PolicySpec":
        """Coerce a policy instance, class, or zero-arg factory to a spec.

        A policy instance stamped with a ``core`` attribute (see
        :func:`repro.models.policies.policy_by_name`) carries that
        choice into the spec.
        """
        if isinstance(policy_or_factory, PolicySpec):
            return policy_or_factory
        policy = policy_or_factory
        if not isinstance(policy, OrderingPolicy):
            policy = policy_or_factory()
        if not isinstance(policy, OrderingPolicy):
            raise TypeError(
                f"expected an OrderingPolicy, factory, or PolicySpec; "
                f"got {policy_or_factory!r}"
            )
        return cls(
            name=policy.name,
            params=tuple(sorted(policy.spec_params())),
            core=getattr(policy, "core", "simple"),
        )

    def build(self) -> OrderingPolicy:
        """Construct a fresh policy instance (one per run)."""
        policy = policy_class_by_name(self.name)(**dict(self.params))
        if self.core != "simple":
            policy.core = self.core
        return policy


@dataclass(frozen=True)
class RunMetrics:
    """Simulation-time timings of one run (deterministic by design)."""

    stall_cycles: int = 0
    messages: int = 0
    sync_nacks: int = 0
    #: Stall cycles aggregated per reason, sorted by reason name.
    stall_by_reason: Tuple[Tuple[StallReason, int], ...] = ()
    #: Stall cycles per (processor, reason), sorted — the per-processor
    #: attribution the Figure-3 aggregation consumes.  Holds the
    #: :class:`StallReason` members themselves (not their values): enum
    #: singletons keep pickles byte-identical across cache round-trips.
    proc_stalls: Tuple[Tuple[int, StallReason, int], ...] = ()
    #: Per-thread halt times (None for threads that never halted).
    halt_times: Tuple[Optional[int], ...] = ()

    def stall_of(self, reason: StallReason) -> int:
        for r, cycles in self.stall_by_reason:
            if r is reason:
                return cycles
        return 0

    def proc_stall_of(self, proc: int, reason: StallReason) -> int:
        total = 0
        for p, r, cycles in self.proc_stalls:
            if p == proc and r is reason:
                total += cycles
        return total


#: Failure kinds, in roughly increasing distance from the simulation:
#: ``sim-timeout`` — the cycle-budget watchdog tripped (deterministic);
#: ``sanitizer``   — a protocol invariant check fired (deterministic);
#: ``exception``   — spec execution raised (deterministic);
#: ``wall-timeout``— the run exceeded its wall-clock budget (environment);
#: ``worker-lost`` — the worker process died and retries were exhausted;
#: ``preempted``   — the campaign was asked to stop (SIGTERM/SIGINT)
#:                   before this spec ran; a resumed campaign will
#:                   execute it (never cached or journaled).
FAILURE_KINDS = (
    "sim-timeout",
    "sanitizer",
    "exception",
    "wall-timeout",
    "worker-lost",
    "preempted",
)

#: Failure kinds that are pure functions of the spec — safe to memoise.
DETERMINISTIC_FAILURES = frozenset({"sim-timeout", "sanitizer", "exception"})


@dataclass(frozen=True)
class RunFailure:
    """Why a run produced no (full) outcome — data, not an exception.

    Failures travel inside :class:`RunResult` so one bad run can never
    abort a campaign: the batch always comes back complete, in spec
    order, with failures reported in place.
    """

    kind: str
    message: str
    traceback: str = ""
    #: Execution attempts consumed (> 1 only after executor retries).
    attempts: int = 1

    def describe(self) -> str:
        note = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return f"[{self.kind}]{note} {self.message}"


@dataclass(frozen=True)
class RunResult:
    """The campaign-visible outcome of executing one :class:`RunSpec`."""

    observable: Optional[Observable]
    cycles: int
    completed: bool
    timings: RunMetrics = field(default_factory=RunMetrics)
    #: Systematic exploration only: pending-pool size at every oracle
    #: choice point, so the explorer can branch without re-running.
    choice_log: Optional[Tuple[int, ...]] = None
    #: Systematic exploration only: per choice point, the eligible
    #: messages' target locations in pool order (``None`` entries for
    #: payloads without one).  The explorer's conflict-aware pruning
    #: uses these to skip decisions that only permute independent
    #: deliveries.
    choice_details: Optional[Tuple[Tuple[Optional[str], ...], ...]] = None
    #: Set when the run failed (watchdog, exception, wall-clock timeout,
    #: lost worker) instead of producing a full outcome.
    failure: Optional[RunFailure] = None
    #: Trace payloads, present only when the spec carried a
    #: :class:`~repro.trace.tracer.TraceSpec` asking for them.
    trace_events: Optional[Tuple[TraceEvent, ...]] = None
    trace_summary: Optional[TraceSummary] = None
    #: Sanitizer violations recorded during the run (``log`` mode lets
    #: the run finish and reports them all here; ``strict`` raises on
    #: the first one, which lands in ``failure`` instead).
    sanitizer_violations: Tuple[Any, ...] = ()
    #: Rendered wait-for diagnosis, set when the run hung (watchdog trip
    #: or quiescence with unfinished threads).  A string, not the
    #: diagnosis object, so results stay cheaply picklable.
    diagnosis: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None and self.completed


@dataclass(frozen=True)
class RunSpec:
    """One unit of campaign work: ``(program, policy, config, seed)``.

    When ``schedule`` is set the run replays that oracle decision string
    on the :class:`~repro.explore.oracle.ScheduledInterconnect` instead
    of sampling timings from the seed — the systematic explorer's
    re-execution search expressed in the same unit of work.
    """

    program: Program
    policy: PolicySpec
    config: MachineConfig
    seed: int
    max_cycles: int = 1_000_000
    schedule: Optional[Tuple[int, ...]] = None
    relaxed_request_channels: bool = False
    inval_virtual_channel: bool = False
    #: Optional fault-injection plan; seed-derived, so it keeps the run
    #: a pure function of the spec (see :mod:`repro.faults`).
    faults: Optional[FaultPlan] = None
    #: Optional tracing request; the recorded events/summary come back
    #: on the :class:`RunResult`.  Tracing never changes simulated
    #: behaviour, so it does not perturb cached (untraced) digests.
    trace: Optional[TraceSpec] = None
    #: Optional sanitizer mode (``"log"`` or ``"strict"``; None keeps
    #: the checker off).  Like tracing, the sanitizer observes without
    #: perturbing simulated behaviour — but strict mode turns the first
    #: violation into a run failure, so the mode is part of the digest.
    sanitize: Optional[str] = None

    def execute(self) -> RunResult:
        """Run the spec on a freshly built system (pure; picklable)."""
        from repro.memsys.system import System

        if self.schedule is None:
            system = System(
                self.program,
                self.policy.build(),
                self.config,
                seed=self.seed,
                fault_plan=self.faults,
                trace=self.trace,
                sanitize=self.sanitize,
            )
            run = system.run(max_cycles=self.max_cycles)
            return _package(run, choice_log=None)

        if self.faults is not None and not self.faults.is_null:
            raise ValueError(
                "fault injection cannot be combined with schedule replay: "
                "the scheduled interconnect is already adversarial and "
                "must stay replay-exact"
            )

        from repro.explore.oracle import ReplayOracle, ScheduledInterconnect

        oracle = ReplayOracle(self.schedule)
        system = System(
            self.program,
            self.policy.build(),
            self.config,
            seed=self.seed,
            trace=self.trace,
            sanitize=self.sanitize,
            interconnect_factory=lambda sim, stats, rng: ScheduledInterconnect(
                sim,
                stats,
                oracle,
                relaxed_request_channels=self.relaxed_request_channels,
                inval_virtual_channel=self.inval_virtual_channel,
            ),
        )
        run = system.run(max_cycles=self.max_cycles)
        return _package(
            run,
            choice_log=tuple(oracle.log),
            choice_details=tuple(oracle.detail_log),
        )

    def digest(self) -> str:
        """A stable content hash of the spec — the result-cache key.

        Memoised per instance (the spec is frozen): the journal replay
        check, the result cache, and the incremental journal callback
        all key on the digest, and hashing the program fingerprint is
        the most expensive non-I/O step in a journaled campaign.
        """
        cached = self.__dict__.get("_digest")
        if cached is not None:
            return cached
        parts = [
            program_fingerprint(self.program),
            self.policy.name,
            repr(self.policy.params),
            repr(self.config),
            str(self.seed),
            str(self.max_cycles),
            repr(self.schedule),
            str(self.relaxed_request_channels),
            str(self.inval_virtual_channel),
            repr(self.faults),
        ]
        if self.policy.core != "simple":
            # Appended only for non-default cores, so every pre-PR6
            # cached digest (which predates the core axis) stays valid.
            parts.append(f"core={self.policy.core}")
        if self.trace is not None:
            # Appended only when tracing, so every pre-existing cached
            # digest of an untraced spec stays valid.
            parts.append(repr(self.trace))
        if self.sanitize is not None:
            # Same append-when-set rule as ``trace`` above.
            parts.append(f"sanitize={self.sanitize}")
        value = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
        object.__setattr__(self, "_digest", value)
        return value


def _package(
    run,
    choice_log: Optional[Tuple[int, ...]],
    choice_details: Optional[Tuple[Tuple[Optional[str], ...], ...]] = None,
) -> RunResult:
    """Distill a :class:`~repro.memsys.system.HardwareRun` to a result."""
    by_reason: Dict[StallReason, int] = {}
    proc_stalls: Dict[Tuple[int, StallReason], int] = {}
    for (proc, reason), cycles in run.stats.stall_breakdown().items():
        by_reason[reason] = by_reason.get(reason, 0) + cycles
        key = (proc, reason)
        proc_stalls[key] = proc_stalls.get(key, 0) + cycles
    timings = RunMetrics(
        stall_cycles=run.stats.stall_cycles(),
        messages=run.stats.count("interconnect.delivered"),
        sync_nacks=run.stats.count("dir.sync_nacks"),
        stall_by_reason=tuple(
            sorted(by_reason.items(), key=lambda kv: kv[0].value)
        ),
        proc_stalls=tuple(
            (proc, reason, cycles)
            for (proc, reason), cycles in sorted(
                proc_stalls.items(),
                key=lambda kv: (kv[0][0], kv[0][1].value),
            )
        ),
        halt_times=tuple(run.halt_times),
    )
    diagnosis = run.deadlock.describe() if run.deadlock is not None else None
    failure = None
    if run.timed_out:
        message = (
            f"simulation watchdog tripped after {run.cycles} cycles "
            f"without quiescing"
        )
        if diagnosis is not None:
            message = f"{message}\n{diagnosis}"
        failure = RunFailure(kind="sim-timeout", message=message)
    return RunResult(
        observable=run.observable if run.completed else None,
        cycles=run.cycles,
        completed=run.completed,
        timings=timings,
        choice_log=choice_log,
        choice_details=choice_details,
        failure=failure,
        trace_events=run.trace_events,
        trace_summary=run.trace_summary,
        sanitizer_violations=run.sanitizer_violations,
        diagnosis=diagnosis,
    )


def execute_spec(spec: RunSpec) -> RunResult:
    """Module-level entry point for worker processes (picklable by ref)."""
    return spec.execute()


def execute_spec_guarded(spec: RunSpec) -> RunResult:
    """Execute a spec, converting any exception into a failure result.

    This is what executors actually run: a crashing spec yields a
    ``RunResult`` with ``failure.kind == "exception"`` (message plus
    traceback as data) instead of tearing down the batch.  The guard
    wraps execution at the same stack depth in-process and in workers,
    so serial and parallel campaigns stay byte-identical even for
    failures.
    """
    try:
        return spec.execute()
    except Exception as exc:
        from repro.cpu.counter import CounterUnderflow
        from repro.sanitizer.checker import ProtocolError, SanitizerViolation

        sanitizer_kinds = (SanitizerViolation, ProtocolError, CounterUnderflow)
        kind = "sanitizer" if isinstance(exc, sanitizer_kinds) else "exception"
        return RunResult(
            observable=None,
            cycles=0,
            completed=False,
            failure=RunFailure(
                kind=kind,
                message=f"{type(exc).__name__}: {exc}",
                traceback=traceback_module.format_exc(),
            ),
        )


def program_fingerprint(program: Program) -> str:
    """A content hash of a program: threads, instructions, initial memory.

    Dataclass ``repr`` is deterministic for the instruction types, so
    two structurally identical programs fingerprint equal regardless of
    the objects' identities or display names' provenance.
    """
    parts = [program.name]
    for thread in program.threads:
        parts.append(thread.name)
        parts.append(repr(thread.instructions))
        parts.append(repr(sorted(thread.labels.items())))
    parts.append(repr(sorted(program.initial_memory.items())))
    return hashlib.sha256("\x1e".join(parts).encode()).hexdigest()
