"""The concrete ordering policies compared in the paper.

=============  ==========================================================
``RELAXED``    No cross-access ordering beyond intra-processor data
               dependencies — the violation-producing baseline of
               Figure 1.  Writes are fire-and-forget; reads overtake
               pending writes.
``SC``         The Scheurich-Dubois sufficient condition for sequential
               consistency (Section 2.1): accesses issue in program
               order and none issues until the previous access is
               globally performed.
``DEF1``       Weak ordering per Dubois/Scheurich/Briggs Definition 1:
               (2) no sync issues until all previous accesses are
               globally performed; (3) no access issues until the
               previous sync is globally performed.
``DEF2``       The paper's new implementation (Section 5.3): counters +
               reserve bits; a sync op only needs to *commit* (procure
               the line exclusive and perform on it) before the issuing
               processor proceeds — the stall moves to the *next*
               processor synchronizing on the same location.
``DEF2_R``     Section 6's refinement of DEF2: read-only synchronization
               operations are treated as data reads by the protocol (no
               serialization through exclusive ownership, no reserve),
               fixing the Test-and-TestAndSet spinning pathology.
=============  ==========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.operation import OpKind
from repro.models.base import BlockKind, OrderingPolicy
from repro.sim.stats import StallReason

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import ProcessorCore


class RelaxedPolicy(OrderingPolicy):
    """No ordering constraints beyond intra-processor dependencies."""

    name = "RELAXED"


class RP3FencePolicy(RelaxedPolicy):
    """Relaxed issue with ordering only at explicit ``Fence`` instructions.

    Section 2.1: the RP3 "provides an option by which a process is
    required to wait for acknowledgements on its outstanding requests
    only on a fence instruction.  As will be apparent later, this option
    functions as a weakly ordered system."  The fence semantics live in
    the processor (policy-independent drain); this subclass exists so
    reports name the configuration.
    """

    name = "RP3-FENCE"


class SCPolicy(OrderingPolicy):
    """Sequential consistency via the Scheurich-Dubois condition."""

    name = "SC"
    #: The issue gate keeps at most one access in flight, so a forward
    #: could never trigger anyway; declared off as defense-in-depth — SC
    #: hardware must never bind a read to a write that has not globally
    #: performed.
    allows_store_forwarding = False

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        if proc.pending_accesses:
            return StallReason.SC_PREVIOUS_GP
        return None


class Def1Policy(OrderingPolicy):
    """Weak ordering, old definition (Definition 1)."""

    name = "DEF1"

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        # Condition (3): nothing issues until the previous sync op is
        # globally performed.
        if any(a.kind.is_sync for a in proc.pending_accesses):
            return StallReason.DEF1_WAITS_SYNC_GP
        # Condition (2): a sync op waits for *all* previous accesses to
        # be globally performed.
        if kind.is_sync and proc.pending_accesses:
            return StallReason.DEF1_SYNC_WAITS_PREV
        return None


class Def2Policy(OrderingPolicy):
    """The paper's implementation of weak ordering w.r.t. DRF0 (Section 5.3).

    Args:
        nack_mode: reserved-line recalls are NACKed for retry (default)
            or queued at the owner until the counter drains.
        miss_bound_while_reserved: optional bound on outstanding misses
            while any line is reserved (the paper's suggestion for
            keeping the counter's drain time bounded).
    """

    name = "DEF2"
    requires_cache = True
    reserve_enabled = True

    def __init__(
        self,
        nack_mode: bool = True,
        miss_bound_while_reserved: Optional[int] = None,
    ) -> None:
        self.nack_mode = nack_mode
        self.miss_bound_while_reserved = miss_bound_while_reserved

    def spec_params(self):
        return (
            ("nack_mode", self.nack_mode),
            ("miss_bound_while_reserved", self.miss_bound_while_reserved),
        )

    def sync_read_needs_exclusive(self) -> bool:
        # "All synchronization operations will be treated as write
        # operations by the cache coherence protocol." (Section 5.2)
        return True

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        # Condition 4: no new access until previous sync ops committed.
        if any(a.kind.is_sync and not a.committed for a in proc.pending_accesses):
            return StallReason.DEF2_SYNC_COMMIT
        cache = proc.cache
        assert cache is not None, "DEF2 requires a cache-coherent system"
        # The flush-stall rule: capacity pressure on reserved lines.
        if cache.over_capacity:
            return StallReason.DEF2_FLUSH_RESERVED
        if (
            self.miss_bound_while_reserved is not None
            and cache.any_reserved()
            and len(proc.pending_accesses) >= self.miss_bound_while_reserved
        ):
            return StallReason.DEF2_MISS_BOUND
        return None

    def block_kind(self, kind: OpKind) -> BlockKind:
        # A sync op must commit before the processor proceeds past it
        # (procure the line exclusive, perform the op) — but commit only,
        # not global perform: that is the whole point of the paper.
        if kind.is_sync:
            return BlockKind.COMMIT
        return BlockKind.NONE


class Def2RPolicy(Def2Policy):
    """DEF2 with Section 6's read-only-synchronization refinement."""

    name = "DEF2-R"
    model_name = "DRF0-R"
    sync_read_as_data = True

    def sync_read_needs_exclusive(self) -> bool:
        return False


class AllSyncPolicy(Def2Policy):
    """Hardware that must assume *every* access could synchronize.

    Section 3's alternative: "we believe ... that slow synchronization
    operations coupled with fast reads and writes will yield better
    performance than the alternative, where hardware must assume all
    accesses could be used for synchronization (as in [Lam86])."  This
    policy is that alternative: every access gets the full DEF2
    synchronization treatment — exclusive procurement, commit-blocking,
    reserve bits, serialization through ownership — because no labels
    tell the hardware which accesses actually synchronize.

    It is trivially weakly ordered w.r.t. DRF0 (it is stronger than
    DEF2) and serves as the quantitative baseline for the paper's claim
    that hardware-visible synchronization labels buy performance.
    """

    name = "ALL-SYNC"
    #: Every access commit-blocks, so no write is ever pending when a
    #: read issues; declared off as defense-in-depth, like SC.
    allows_store_forwarding = False

    def sync_protocol(self, kind: OpKind) -> bool:
        return True

    def needs_exclusive(self, kind: OpKind) -> bool:
        return True

    def block_kind(self, kind: OpKind) -> BlockKind:
        # Every access is a potential synchronization: it must commit
        # before the processor proceeds.
        return BlockKind.COMMIT

    def issue_gate(self, proc: "ProcessorCore", kind: OpKind) -> Optional[StallReason]:
        # Condition 4 with everything labelled sync: nothing new until
        # the previous access commits (enforced by block_kind); the
        # remaining DEF2 gates still apply.
        return super().issue_gate(proc, kind)


def policy_by_name(name: str, core: Optional[str] = None) -> OrderingPolicy:
    """Construct a fresh policy instance from its report name.

    ``core`` optionally names the processor-core shape the policy should
    run on (``"simple"``/``"pipelined"``, see
    :func:`repro.cpu.core.core_names`); the choice is validated against
    the policy's :attr:`~repro.models.base.OrderingPolicy.supported_cores`
    and stamped on the instance, where ``PolicySpec.of`` and ``System``
    pick it up.  ``None`` leaves the default (``"simple"``).
    """
    table = {
        "RELAXED": RelaxedPolicy,
        "RP3-FENCE": RP3FencePolicy,
        "SC": SCPolicy,
        "DEF1": Def1Policy,
        "DEF2": Def2Policy,
        "DEF2-R": Def2RPolicy,
        "ALL-SYNC": AllSyncPolicy,
    }
    try:
        policy = table[name.upper().replace("_", "-")]()
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; choose from {sorted(table)}")
    if core is not None:
        from repro.cpu.core import core_class_by_name

        core_class_by_name(core)  # unknown names fail loudly here
        if core not in policy.supported_cores:
            raise ValueError(
                f"policy {policy.name} does not support core {core!r}; "
                f"supported: {list(policy.supported_cores)}"
            )
        policy.core = core
    return policy
