"""Tests for the conformance grid."""

import pytest

from repro.conformance import (
    DEFAULT_CONFIGS,
    VERDICT_BROKEN,
    VERDICT_NA,
    VERDICT_SC,
    VERDICT_WEAK,
    run_conformance,
)
from repro.litmus.catalog import (
    fig1_dekker,
    fig1_dekker_all_sync,
    message_passing_sync,
)
from repro.memsys.config import BUS_NOCACHE, NET_CACHE, NET_NOCACHE
from repro.models.policies import Def2Policy, RelaxedPolicy, SCPolicy


@pytest.fixture(scope="module")
def small_report():
    """A reduced grid that still exercises every verdict."""
    return run_conformance(
        configs=[NET_NOCACHE, NET_CACHE],
        policies=[RelaxedPolicy, SCPolicy, Def2Policy],
        tests=[
            fig1_dekker(),
            fig1_dekker(warm=True),
            fig1_dekker_all_sync(),
            fig1_dekker_all_sync(warm=True),
            message_passing_sync(),
        ],
        runs_per_test=25,
    )


class TestVerdicts:
    def test_sc_policy_is_sc_everywhere(self, small_report):
        for config in ("net_nocache", "net_cache"):
            assert small_report.cell(config, "SC").verdict == VERDICT_SC

    def test_relaxed_breaks_the_contract(self, small_report):
        """RELAXED violates even the DRF0 all-sync Dekker: BROKEN."""
        assert small_report.cell("net_nocache", "RELAXED").verdict == VERDICT_BROKEN

    def test_def2_weakly_ordered_on_caches(self, small_report):
        cell = small_report.cell("net_cache", "DEF2")
        assert cell.verdict == VERDICT_WEAK
        # It violated only racy tests:
        for name in cell.violated_tests:
            assert "sync" not in name or name.endswith("_warm") is False or True
        assert "fig1_dekker_sync" not in cell.violated_tests
        assert "message_passing_sync" not in cell.violated_tests

    def test_def2_na_without_caches(self, small_report):
        assert small_report.cell("net_nocache", "DEF2").verdict == VERDICT_NA

    def test_no_incomplete_runs(self, small_report):
        for cell in small_report.cells:
            assert cell.incomplete == [], (cell.config_name, cell.policy_name)


class TestReportStructure:
    def test_grid_shape(self, small_report):
        rows = small_report.to_rows()
        assert len(rows) == 3  # three policies
        assert all(len(row) == 3 for row in rows)  # policy + two configs

    def test_describe_renders_table(self, small_report):
        text = small_report.describe()
        assert "RELAXED" in text and "net_cache" in text

    def test_cell_lookup_missing(self, small_report):
        assert small_report.cell("nonexistent", "SC") is None

    def test_default_configs_include_snooping(self):
        names = {c.name for c in DEFAULT_CONFIGS}
        assert "bus_cache_snoop" in names
