"""Figure 1, regenerated: the SC-violation matrix.

For each of the four machine organizations of the paper's Figure 1
({shared bus, general network} x {no caches, coherent caches}), runs the
Dekker-core litmus under the relaxed and the SC-enforcing policy and
reports how often the forbidden (0,0) outcome — "P1 and P2 are both
killed" — appears.

Run:  python examples/figure1_matrix.py
"""

from repro import FIGURE1_CONFIGS, LitmusRunner, RelaxedPolicy, SCPolicy
from repro.analysis import format_table
from repro.litmus import fig1_dekker

RUNS = 80


def main() -> None:
    runner = LitmusRunner()
    rows = []
    for config in FIGURE1_CONFIGS:
        # Cache machines exhibit the violation with warm caches, exactly
        # as the figure's caption describes ("both processors initially
        # have X and Y in their caches").
        warm = config.has_caches
        test = fig1_dekker(warm=warm)
        for policy in (RelaxedPolicy, SCPolicy):
            result = runner.run(test, policy, config, runs=RUNS)
            rows.append(
                [
                    config.name,
                    policy().name,
                    "warm" if warm else "cold",
                    result.forbidden_seen,
                    RUNS,
                    "VIOLATES SC" if result.violated_sc else "appears SC",
                ]
            )
    print("Figure 1: forbidden outcome (r1,r2)=(0,0) frequency")
    print(
        format_table(
            ["machine", "policy", "caches", "(0,0) seen", "runs", "verdict"],
            rows,
        )
    )
    print()
    print("Every organization violates SC under relaxed ordering and none")
    print("does under the Scheurich-Dubois SC condition — the figure's point.")


if __name__ == "__main__":
    main()
