"""Automatic failure triage: failing campaign runs -> repro bundles.

Campaigns hand every failing ``(spec, result)`` pair to
:func:`triage_failures`; triage deduplicates them by failure signature
(one bundle per distinct way-of-failing, not per failing run), shrinks
each representative with :func:`~repro.sanitizer.shrink.shrink_spec`,
and writes a :class:`~repro.sanitizer.bundle.ReproBundle` per signature
into the bundles directory.  Environment-flavoured failures
(``wall-timeout``, ``worker-lost``) are skipped: a bundle certifies a
*deterministic* reproduction, and those kinds are not functions of the
spec.

Filenames are deterministic — ``{label}-{signature}.json`` with the
signature slugified — so re-running a campaign overwrites its bundles
in place instead of accumulating near-duplicates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import DETERMINISTIC_FAILURES, RunResult, RunSpec
from repro.sanitizer.bundle import ReproBundle
from repro.sanitizer.shrink import (
    failure_signature,
    instruction_count,
    shrink_spec,
)

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text.lower()).strip("-") or "failure"


@dataclass(frozen=True)
class TriageConfig:
    """Knobs for campaign-side triage."""

    #: Where bundles are written (created if missing).
    directory: Path
    #: Shrink each representative spec before bundling (recommended;
    #: disable for very cheap smoke campaigns).
    shrink: bool = True
    #: At most this many bundles per campaign — triage is a debugging
    #: aid, not an archive.
    max_bundles: int = 8
    #: Oracle-run budget per shrink.
    max_shrink_runs: int = 300


@dataclass(frozen=True)
class TriageReport:
    """What triage did with one campaign's failures."""

    #: ``(signature, bundle path)`` per bundle written, in signature order.
    bundles: Tuple[Tuple[str, str], ...] = ()
    #: Failing runs examined (including duplicates of a signature).
    failures_seen: int = 0
    #: Failures skipped as non-deterministic (wall-timeout/worker-lost).
    skipped_nondeterministic: int = 0
    #: Distinct signatures beyond ``max_bundles`` that were dropped.
    dropped_over_cap: int = 0

    @property
    def bundles_written(self) -> int:
        return len(self.bundles)

    def describe(self) -> str:
        if not self.failures_seen:
            return "triage: no failures"
        lines = [
            f"triage: {self.failures_seen} failing run(s) -> "
            f"{self.bundles_written} bundle(s)"
        ]
        for signature, path in self.bundles:
            lines.append(f"  {signature}: {path}")
        if self.skipped_nondeterministic:
            lines.append(
                f"  skipped {self.skipped_nondeterministic} "
                f"non-deterministic failure(s)"
            )
        if self.dropped_over_cap:
            lines.append(
                f"  dropped {self.dropped_over_cap} signature(s) over "
                f"the {self.bundles_written}-bundle cap"
            )
        return "\n".join(lines)


def triage_failures(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    config: TriageConfig,
    label: str = "campaign",
) -> TriageReport:
    """Bundle one shrunk repro per distinct deterministic failure."""
    directory = Path(config.directory)
    representatives: Dict[str, Tuple[RunSpec, RunResult]] = {}
    failures_seen = 0
    skipped = 0
    for spec, result in zip(specs, results):
        signature = failure_signature(result)
        if signature is None:
            continue
        failures_seen += 1
        kind = result.failure.kind if result.failure else "deadlock"
        deterministic = kind == "deadlock" or kind in DETERMINISTIC_FAILURES
        if not deterministic:
            skipped += 1
            continue
        representatives.setdefault(signature, (spec, result))

    ordered = sorted(representatives)
    dropped = max(0, len(ordered) - config.max_bundles)
    bundles: List[Tuple[str, str]] = []
    if ordered[: config.max_bundles]:
        directory.mkdir(parents=True, exist_ok=True)
    for signature in ordered[: config.max_bundles]:
        spec, result = representatives[signature]
        original = instruction_count(spec.program)
        runs = 0
        exhausted = False
        if config.shrink:
            shrunk = shrink_spec(
                spec, signature=signature, max_runs=config.max_shrink_runs
            )
            spec = shrunk.spec
            runs = shrunk.runs
            exhausted = shrunk.exhausted
        message = ""
        if result.failure is not None:
            message = result.failure.message.splitlines()[0]
        bundle = ReproBundle(
            spec=spec,
            signature=signature,
            kind=result.failure.kind if result.failure else "deadlock",
            message=message,
            label=label,
            shrink_runs=runs,
            shrink_exhausted=exhausted,
            original_instructions=original,
            minimized_instructions=instruction_count(spec.program),
        )
        path = directory / f"{_slug(label)}-{_slug(signature)}.json"
        path.write_text(bundle.to_json())
        bundles.append((signature, str(path)))

    return TriageReport(
        bundles=tuple(bundles),
        failures_seen=failures_seen,
        skipped_nondeterministic=skipped,
        dropped_over_cap=dropped,
    )
