"""Shared fixture: a clean, enabled process-wide registry per test.

The registry is a process singleton, so every test that enables it must
also restore the previous enablement and drop its samples — otherwise
observability tests would leak counters into each other and into the
rest of the suite.
"""

import pytest

from repro.obs import METRICS, disable_metrics


@pytest.fixture
def metrics():
    was_enabled = METRICS.enabled
    METRICS.reset()
    METRICS.enable()
    yield METRICS
    METRICS.reset()
    disable_metrics()
    METRICS.enabled = was_enabled
