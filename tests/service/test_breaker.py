"""Circuit breaker: closed → open → half-open → probe outcome."""

from repro.service.breaker import CLOSED, CircuitBreaker, HALF_OPEN, OPEN

import pytest


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestClosed:
    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker(clock=clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_failure_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_threshold_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)


class TestTrip:
    def test_consecutive_failures_open_it(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_open_denies_until_reset_timeout(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def _opened(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        return breaker

    def test_exactly_one_probe(self, clock):
        breaker = self._opened(clock)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else keeps degrading
        assert not breaker.allow()

    def test_probe_success_closes(self, clock):
        breaker = self._opened(clock)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_timer(self, clock):
        breaker = self._opened(clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        # The timer restarted: still open just before the new deadline.
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()


class TestMetrics:
    def test_opens_counter_and_state_gauge(self, clock):
        from repro.obs import METRICS, disable_metrics

        was = METRICS.enabled
        METRICS.reset()
        METRICS.enable()
        try:
            breaker = CircuitBreaker(failure_threshold=1, clock=clock)
            breaker.record_failure()
            assert METRICS.value("repro_service_breaker_opens_total") == 1
            assert METRICS.value("repro_service_breaker_state") == 2.0
            breaker.record_success()
            assert METRICS.value("repro_service_breaker_state") == 0.0
        finally:
            METRICS.reset()
            disable_metrics()
            METRICS.enabled = was
