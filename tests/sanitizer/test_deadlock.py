"""Deadlock diagnosis: wait-for graphs, cycle finding, explanations."""

from repro.coherence.directory import DirectoryEntry, EntryState
from repro.coherence.line import CacheLine, LineState
from repro.core.program import Program, ThreadBuilder
from repro.memsys.config import NET_CACHE
from repro.memsys.system import System, run_program
from repro.models.policies import Def2Policy
from repro.sanitizer import diagnose
from repro.trace.tracer import TraceSpec

from tests.sanitizer.conftest import spin_deadlock_program


def test_completed_run_carries_no_diagnosis():
    p0 = ThreadBuilder("P0")
    p0.store("x", 1)
    run = run_program(
        Program([p0.build()], name="trivial"), Def2Policy(), NET_CACHE
    )
    assert run.completed
    assert run.deadlock is None


def test_spinning_thread_diagnosed_as_livelock():
    run = run_program(
        spin_deadlock_program(), Def2Policy(), NET_CACHE,
        seed=0, max_cycles=20_000,
    )
    assert run.timed_out and not run.completed
    diagnosis = run.deadlock
    assert diagnosis is not None
    assert diagnosis.kind == "livelock"
    assert diagnosis.cycle == ()
    assert "retry storm or a spinning thread" in diagnosis.describe()


def test_diagnosis_includes_trace_excerpt_when_traced():
    run = run_program(
        spin_deadlock_program(), Def2Policy(), NET_CACHE,
        seed=0, max_cycles=20_000, trace=TraceSpec(),
    )
    assert run.deadlock is not None
    assert run.deadlock.trace_excerpt


def test_mutual_reserve_deadlock_found_as_wait_for_cycle():
    """Two caches each hold a line the other needs, both reserved with
    counters that never drain: the classic condition-5 deadlock.  The
    directory NACK-retries forever; the diagnosis must name the cycle
    through both reserve bits and counters."""
    p0 = ThreadBuilder("P0")
    p0.store("b", 1)
    p1 = ThreadBuilder("P1")
    p1.store("a", 1)
    program = Program([p0.build(), p1.build()], name="mutual_reserve")
    system = System(program, Def2Policy(), NET_CACHE, seed=0)
    c0, c1 = system.caches[:2]
    c0._lines["a"] = CacheLine("a", LineState.EXCLUSIVE, 1, reserved=True)
    c0.counter.increment()
    c1._lines["b"] = CacheLine("b", LineState.EXCLUSIVE, 1, reserved=True)
    c1.counter.increment()
    system.directory._entries["a"] = DirectoryEntry(
        state=EntryState.EXCLUSIVE, owner=c0.cache_id, value=1
    )
    system.directory._entries["b"] = DirectoryEntry(
        state=EntryState.EXCLUSIVE, owner=c1.cache_id, value=1
    )

    run = system.run(max_cycles=5_000)

    assert not run.completed
    diagnosis = run.deadlock
    assert diagnosis is not None
    assert diagnosis.kind == "deadlock"
    participants = set(diagnosis.participants)
    assert f"reserve:{c0.name}:a" in participants
    assert f"reserve:{c1.name}:b" in participants
    assert f"counter:{c0.name}" in participants
    assert f"counter:{c1.name}" in participants
    text = diagnosis.describe()
    assert "wait-for cycle" in text
    assert "Section 5.3" in text


def test_diagnose_is_pure_and_reusable():
    """diagnose() can be re-run on the final state with the same answer."""
    p0 = ThreadBuilder("P0")
    p0.store("b", 1)
    program = Program([p0.build()], name="one_store")
    system = System(program, Def2Policy(), NET_CACHE, seed=0)
    run = system.run()
    assert run.completed
    diagnosis = diagnose(system, timed_out=False)
    assert diagnosis.kind == "stall"  # nothing is waiting, no cycle
    assert diagnosis.cycle == ()
    assert diagnosis.edges == diagnose(system, timed_out=False).edges
