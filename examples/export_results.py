"""Export experiment results to CSV/JSON for external analysis.

Runs a small battery (a litmus campaign, a policy comparison, the
Figure-3 sweep) and writes each to ``results/`` as both CSV and JSON.

Run:  python examples/export_results.py
"""

from pathlib import Path

from repro import Def1Policy, Def2Policy, LitmusRunner, NET_CACHE, RelaxedPolicy, SCPolicy
from repro.analysis import compare_policies, figure3_sweep
from repro.analysis.export import (
    comparison_rows,
    figure3_rows,
    litmus_rows,
    write_csv,
    write_json,
)
from repro.litmus import fig1_dekker
from repro.workloads import critical_section_program


def main() -> None:
    out = Path("results")
    out.mkdir(exist_ok=True)

    runner = LitmusRunner()
    litmus = litmus_rows(
        runner.run(fig1_dekker(warm=True), RelaxedPolicy, NET_CACHE, runs=60)
    )
    write_csv(out / "litmus_fig1.csv", litmus)
    write_json(out / "litmus_fig1.json", litmus)

    comparisons = comparison_rows(
        compare_policies(
            lambda: critical_section_program(2, 2, private_writes=6),
            [SCPolicy, Def1Policy, Def2Policy],
            NET_CACHE.with_overrides(network_base_latency=16, network_jitter=4),
            runs=5,
        )
    )
    write_csv(out / "quant_critical_sections.csv", comparisons)
    write_json(out / "quant_critical_sections.json", comparisons)

    fig3 = figure3_rows(figure3_sweep(latencies=[4, 8, 16, 32, 64]))
    write_csv(out / "figure3_sweep.csv", fig3)
    write_json(out / "figure3_sweep.json", fig3)

    for path in sorted(out.iterdir()):
        print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
