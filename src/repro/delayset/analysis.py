"""Shasha-Snir delay-set analysis [ShS88] (paper Section 2.1).

"Their scheme statically identifies a minimal set of pairs of accesses
within a process, such that delaying the issue of one of the elements in
each pair until the other is globally performed guarantees sequential
consistency."

The analysis operates on *straight-line* programs (the classic setting;
branchy programs need the conservative treatment the paper alludes to
when it notes the approach "may be quite pessimistic"):

* build the graph ``G = P ∪ C`` over static accesses, where ``P`` holds
  directed program-order edges within each thread and ``C`` holds
  conflict edges (both directions) between threads;
* a program-order pair ``(a, b)`` must be **delayed** iff it lies on a
  cycle of ``G`` — equivalently, iff ``b`` reaches ``a`` without using
  the ``(a, b)`` edge (any such path must leave the thread through a
  conflict edge and return through one, so the cycle is genuinely
  "mixed");
* Shasha & Snir prove the *minimal* delay set consists of the pairs on
  **critical cycles**: simple mixed cycles visiting at most two accesses
  per processor, adjacent in the cycle.  :func:`minimal_delay_pairs`
  implements that refinement by cycle enumeration (fine at litmus
  scale); :func:`delay_pairs` is the sound reachability-based superset
  that scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.core.instructions import MemInstruction
from repro.core.operation import OpKind
from repro.core.program import Program


class NotStraightLineError(ValueError):
    """Delay-set analysis requires branch-free threads."""


@dataclass(frozen=True)
class StaticAccess:
    """A static memory access: (processor, instruction index)."""

    proc: int
    pos: int
    kind: OpKind
    location: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "W" if self.kind.writes_memory else "R"
        return f"{tag}(P{self.proc}@{self.pos},{self.location})"


#: A delay pair: the later access may not issue until the earlier one is
#: globally performed.
DelayPair = Tuple[StaticAccess, StaticAccess]


def static_accesses(program: Program) -> List[List[StaticAccess]]:
    """Per-thread lists of static accesses; rejects branchy programs."""
    from repro.core.instructions import Branch, Jump

    per_thread: List[List[StaticAccess]] = []
    for proc, thread in enumerate(program.threads):
        accesses = []
        for pos, instr in enumerate(thread.instructions):
            if isinstance(instr, (Branch, Jump)):
                raise NotStraightLineError(
                    f"thread {thread.name!r} has control flow at {pos}; "
                    "delay-set analysis handles straight-line programs"
                )
            if isinstance(instr, MemInstruction):
                accesses.append(
                    StaticAccess(proc, pos, instr.kind, instr.location)
                )
        per_thread.append(accesses)
    return per_thread


#: Static summary of one access: ``(location, writes_memory, is_sync)``.
AccessSummary = Tuple[str, bool, bool]

#: Access summaries reachable from one program point.
Footprint = FrozenSet[AccessSummary]


def static_footprints(program: Program) -> Tuple[Tuple[Footprint, ...], ...]:
    """Per-thread, per-pc sets of accesses reachable from that pc.

    ``result[proc][pc]`` over-approximates every memory access thread
    ``proc`` can still perform once control reaches ``pc`` — computed as
    a reachability fixpoint on the thread's control-flow graph, so it
    handles branches and loops that :func:`static_accesses` rejects.
    Registers are ignored (both branch arms are assumed reachable),
    which keeps the footprint sound for any data valuation; that is what
    lets the SC search use it to bound the future behaviour of a thread
    other threads cannot influence except through memory.

    Each tuple has ``len(instructions) + 1`` entries; the final entry is
    the empty footprint of the implicit halt past the last instruction.
    """
    from repro.core.instructions import Branch, Halt, Jump

    per_thread: List[Tuple[Footprint, ...]] = []
    for thread in program.threads:
        size = len(thread.instructions)
        successors: List[Tuple[int, ...]] = []
        generated: List[Optional[AccessSummary]] = []
        for pc, instr in enumerate(thread.instructions):
            if isinstance(instr, Halt):
                successors.append(())
            elif isinstance(instr, Jump):
                successors.append((thread.target_of(instr),))
            elif isinstance(instr, Branch):
                successors.append((thread.target_of(instr), pc + 1))
            else:
                successors.append((pc + 1,))
            if isinstance(instr, MemInstruction):
                generated.append(
                    (instr.location, instr.kind.writes_memory, instr.kind.is_sync)
                )
            else:
                generated.append(None)
        reachable: List[Set[AccessSummary]] = [set() for _ in range(size + 1)]
        changed = True
        while changed:
            changed = False
            for pc in range(size - 1, -1, -1):
                update: Set[AccessSummary] = set()
                if generated[pc] is not None:
                    update.add(generated[pc])
                for succ in successors[pc]:
                    if succ < size:
                        update |= reachable[succ]
                if not update <= reachable[pc]:
                    reachable[pc] |= update
                    changed = True
        per_thread.append(tuple(frozenset(fp) for fp in reachable))
    return tuple(per_thread)


def _conflicts(a: StaticAccess, b: StaticAccess) -> bool:
    if a.proc == b.proc or a.location != b.location:
        return False
    return a.kind.writes_memory or b.kind.writes_memory


def conflict_graph(program: Program) -> nx.DiGraph:
    """``P ∪ C``: program edges directed, conflict edges both ways."""
    per_thread = static_accesses(program)
    graph = nx.DiGraph()
    for accesses in per_thread:
        graph.add_nodes_from(accesses)
        for earlier, later in zip(accesses, accesses[1:]):
            graph.add_edge(earlier, later, kind="program")
    flat = [a for accesses in per_thread for a in accesses]
    for i, a in enumerate(flat):
        for b in flat[i + 1 :]:
            if _conflicts(a, b):
                graph.add_edge(a, b, kind="conflict")
                graph.add_edge(b, a, kind="conflict")
    return graph


def _program_pairs(per_thread: List[List[StaticAccess]]) -> Iterator[DelayPair]:
    """All program-ordered pairs (not just adjacent ones)."""
    for accesses in per_thread:
        for i, a in enumerate(accesses):
            for b in accesses[i + 1 :]:
                yield (a, b)


def delay_pairs(program: Program) -> Set[DelayPair]:
    """The sound (cycle-membership) delay set.

    ``(a, b)`` is delayed iff some path leads from ``b`` back to ``a`` —
    i.e. the pair lies on a mixed cycle, so reordering it could be
    observed.  This is a superset of the minimal set but already far
    smaller than total order for typical programs.
    """
    per_thread = static_accesses(program)
    graph = conflict_graph(program)
    delays: Set[DelayPair] = set()
    # Reachability restricted to each thread-exit: compute descendants of
    # every node once.
    descendants: Dict[StaticAccess, Set[StaticAccess]] = {
        node: nx.descendants(graph, node) for node in graph.nodes
    }
    for a, b in _program_pairs(per_thread):
        if a in descendants.get(b, set()):
            delays.add((a, b))
    return delays


def _is_critical_cycle(cycle: List[StaticAccess]) -> bool:
    """Shasha-Snir critical-cycle side conditions.

    At most two accesses per processor, and a processor's accesses must
    be adjacent in the cycle (they form the program-order chord being
    tested); at most three accesses per location.
    """
    n = len(cycle)
    by_proc: Dict[int, List[int]] = {}
    by_loc: Dict[str, int] = {}
    for idx, node in enumerate(cycle):
        by_proc.setdefault(node.proc, []).append(idx)
        by_loc[node.location] = by_loc.get(node.location, 0) + 1
    for indices in by_proc.values():
        if len(indices) > 2:
            return False
        if len(indices) == 2:
            i, j = indices
            if (j - i) % n != 1 and (i - j) % n != 1:
                return False
    return all(count <= 3 for count in by_loc.values())


def minimal_delay_pairs(
    program: Program, max_cycle_length: int = 12
) -> Set[DelayPair]:
    """The delay pairs lying on critical cycles (Shasha-Snir's minimal set).

    Enumerates simple cycles of the mixed graph (bounded by
    ``max_cycle_length``), keeps the critical ones, and collects their
    program-order chords.  Exponential in the worst case; intended for
    litmus/kernel-sized programs.
    """
    graph = conflict_graph(program)
    per_thread = static_accesses(program)
    order: Dict[StaticAccess, int] = {}
    for accesses in per_thread:
        for idx, access in enumerate(accesses):
            order[access] = idx

    delays: Set[DelayPair] = set()
    for cycle in nx.simple_cycles(graph):
        if len(cycle) < 2 or len(cycle) > max_cycle_length:
            continue
        if not _is_critical_cycle(cycle):
            continue
        n = len(cycle)
        for idx, node in enumerate(cycle):
            nxt = cycle[(idx + 1) % n]
            if node.proc == nxt.proc:
                if order[node] < order[nxt]:
                    delays.add((node, nxt))
                else:
                    delays.add((nxt, node))
    return delays


def describe_delay_set(delays: Set[DelayPair]) -> str:
    """Human-readable, deterministic rendering of a delay set."""
    if not delays:
        return "delay set: empty (no mixed cycles — any issue order is SC)"
    lines = [f"delay set ({len(delays)} pair(s)):"]
    for a, b in sorted(delays, key=lambda p: (p[0].proc, p[0].pos, p[1].pos)):
        lines.append(f"  P{a.proc}: {a!r} must globally perform before {b!r} issues")
    return "\n".join(lines)
