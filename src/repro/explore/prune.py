"""Conflict-aware pruning of delay decisions.

The delay-bounded explorer branches by taking decision ``j > 0`` at a
choice point: the ``j``-th oldest eligible message is delivered first,
overtaking the ``j`` messages ahead of it.  When the overtaking message
provably *commutes* with every message it overtakes, the deviated
schedule can only replay behaviour the FIFO-relative order already
exhibits — the deviation permutes two independent deliveries and every
schedule in the deviated subtree has an equivalent schedule of no higher
delay cost in the subtrees the explorer already visits.  Skipping those
decisions collapses whole subtrees without losing any observable.

Message-level commutation is *stricter* than the per-access independence
the SC kernels use.  The scheduled interconnect delivers one message per
slot, so permuting two deliveries also shifts their timing relative to
the concurrently executing processors — and for two *racing* lines that
timing shift can re-resolve the race and reach outcomes the cheaper
subtrees never produce (removing a processor-side ordering condition
makes exactly such cross-line reorderings observable).  Two deliveries
therefore commute only when their target lines differ **and** at least
one of the two lines is conflict-free program-wide: accessed by a single
processor, or never written.  A conflict-free line can participate in no
race (:func:`repro.hb.conflict.accesses_conflict` is false for every
pair of accesses to it), so sliding its messages past another line's
cannot change which conflicting accesses resolve first; any interleaving
of the owning processor's *shared* accesses that the deviation could
induce is already induced directly by delaying the shared lines'
own messages, which are never pruned.

Three conservative guards bound the relation where the argument thins
out:

* a message whose payload exposes no target location is treated as
  dependent on everything;
* messages for the *same* location are always dependent — even two
  read-shared grants can race a recall differently, so no read-read
  refinement is attempted at the message level;
* machines with a bounded cache capacity disable message pruning
  entirely: delivering a grant for line ``x`` can evict line ``y``, so
  deliveries for different lines stop commuting once eviction couples
  them.

The equivalence suite validates the relation empirically by comparing
pruned and unpruned exploration over the full litmus catalog.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence

from repro.core.instructions import MemInstruction
from repro.core.operation import Location
from repro.core.program import Program
from repro.memsys.config import MachineConfig


def supports_message_pruning(config: MachineConfig) -> bool:
    """True when delay-decision pruning is sound for this machine.

    Bounded-capacity caches couple deliveries for different lines
    through eviction, so only unlimited-capacity machines (the default
    configurations) qualify.
    """
    return config.cache_capacity is None


def conflict_free_locations(program: Program) -> FrozenSet[Location]:
    """Locations of ``program`` that can participate in no race.

    A location is conflict-free when every pair of accesses to it
    commutes: it is touched by at most one processor, or no processor
    ever writes it.  Messages for such lines cannot change which
    conflicting accesses resolve first, which is what makes them
    prunable (see the module docstring).
    """
    accessors: dict = {}
    writers: dict = {}
    for proc, thread in enumerate(program.threads):
        for instr in thread.instructions:
            if not isinstance(instr, MemInstruction):
                continue
            accessors.setdefault(instr.location, set()).add(proc)
            if instr.kind.writes_memory:
                writers.setdefault(instr.location, set()).add(proc)
    return frozenset(
        loc
        for loc, procs in accessors.items()
        if len(procs) <= 1 or not writers.get(loc)
    )


def decision_redundant(
    details: Sequence[Optional[Location]],
    decision: int,
    conflict_free: FrozenSet[Location],
) -> bool:
    """True when taking ``decision`` at this choice point is redundant.

    ``details`` holds the eligible messages' target locations in pool
    order (as recorded by the
    :class:`~repro.explore.oracle.ReplayOracle`); ``decision`` delivers
    ``details[decision]`` ahead of ``details[:decision]``.  Redundant
    iff every permuted pair commutes: both locations are known, they
    differ, and at least one of the two is conflict-free program-wide —
    then the subtree can only repeat outcomes cheaper schedules already
    reach.
    """
    if decision >= len(details):
        return False
    overtaking = details[decision]
    if overtaking is None:
        return False
    return all(
        overtaken is not None
        and overtaken != overtaking
        and (overtaking in conflict_free or overtaken in conflict_free)
        for overtaken in details[:decision]
    )
