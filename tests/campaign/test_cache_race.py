"""ResultCache under concurrent writers sharing one directory.

The contract (ISSUE 9 satellite): two processes evicting the same cache
directory simultaneously must neither error nor over-evict.  The sweep
is serialised by a non-blocking ``.evict.lock`` — one sweeper acts, the
rest skip — and entries deleted under the sweeper by a racing process
count as reclaimed space rather than charging extra evictions.
"""

import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.campaign import PolicySpec, ResultCache, RunSpec
from repro.campaign.cache import EVICT_LOCK_TTL
from repro.campaign.spec import RunResult
from repro.litmus.catalog import fig1_dekker
from repro.memsys.config import NET_NOCACHE
from repro.models.policies import RelaxedPolicy
from repro.testing.chaos import default_repo_env


def _spec(seed):
    return RunSpec(
        program=fig1_dekker().program,
        policy=PolicySpec.of(RelaxedPolicy),
        config=NET_NOCACHE,
        seed=seed,
    )


def _result(seed):
    return RunResult(observable=None, cycles=seed, completed=True)


def _fill(cache, n, base=0):
    for seed in range(base, base + n):
        cache.put(_spec(seed), _result(seed))


class TestEvictionLock:
    def test_lock_held_skips_the_sweep(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, 4)
        assert cache._acquire_evict_lock()
        try:
            other = ResultCache(tmp_path, max_bytes=10**9)
            assert other.evict(0) == 0  # sweep is in other hands
            assert len(other) == 4  # nothing deleted
        finally:
            cache._release_evict_lock()

    def test_lock_released_after_sweep(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, 3)
        assert cache.evict(0) == 3
        assert not (tmp_path / ".evict.lock").exists()
        assert cache.evict(0) == 0  # lock free again: sweep runs, no-op

    def test_lock_released_even_when_sweep_raises(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, 2)
        with pytest.raises(RuntimeError):
            original = cache._evict_locked
            cache._evict_locked = lambda budget: (_ for _ in ()).throw(
                RuntimeError("boom")
            )
            try:
                cache.evict(0)
            finally:
                cache._evict_locked = original
        assert not (tmp_path / ".evict.lock").exists()

    def test_stale_lock_is_broken(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, 3)
        lock = tmp_path / ".evict.lock"
        lock.touch()
        stale = time.time() - EVICT_LOCK_TTL - 30
        os.utime(lock, (stale, stale))
        assert cache.evict(0) == 3  # orphan broken, sweep proceeds

    def test_fresh_lock_is_respected(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, 3)
        (tmp_path / ".evict.lock").touch()
        assert cache.evict(0) == 0
        assert len(cache) == 3

    def test_lock_file_never_counts_as_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, 2)
        (tmp_path / ".evict.lock").touch()
        assert len(cache) == 2
        assert cache.bytes_on_disk() == sum(
            p.stat().st_size for p in tmp_path.glob("*.pkl")
        )


class TestRacingDeletes:
    def test_entry_deleted_under_sweep_counts_as_reclaimed(self, tmp_path):
        # Three entries, oldest first; budget holds once the oldest is
        # gone.  Simulate a racing process deleting the oldest between
        # the sweep's listing and its unlink: the sweep must charge the
        # vanished bytes against the budget and stop — not delete a
        # second entry to "make up" for the one it never removed.
        cache = ResultCache(tmp_path, max_bytes=10**9)
        _fill(cache, 3)
        paths = sorted(tmp_path.glob("*.pkl"), key=lambda p: p.stat().st_mtime)
        now = time.time()
        for i, path in enumerate(paths):
            os.utime(path, (now - 100 + i, now - 100 + i))
        sizes = [p.stat().st_size for p in paths]
        budget = sum(sizes) - sizes[0]

        original_unlink = os.unlink

        def racing_unlink(target, *a, **k):
            if os.fspath(target) == str(paths[0]):
                original_unlink(target)  # the racer got there first
                raise FileNotFoundError(target)
            return original_unlink(target, *a, **k)

        import pathlib
        from unittest import mock

        with mock.patch.object(
            pathlib.Path, "unlink",
            lambda self, *a, **k: racing_unlink(self),
        ):
            removed = cache.evict(budget)
        assert removed == 0  # this sweep deleted nothing itself
        survivors = set(tmp_path.glob("*.pkl"))
        assert survivors == set(paths[1:])  # no over-evict


WORKER = r"""
import sys
from repro.campaign import PolicySpec, ResultCache, RunSpec
from repro.campaign.spec import RunResult
from repro.litmus.catalog import fig1_dekker
from repro.memsys.config import NET_NOCACHE
from repro.models.policies import RelaxedPolicy

directory, base, count, budget = sys.argv[1:5]
cache = ResultCache(directory, max_bytes=int(budget))
for seed in range(int(base), int(base) + int(count)):
    spec = RunSpec(
        program=fig1_dekker().program,
        policy=PolicySpec.of(RelaxedPolicy),
        config=NET_NOCACHE,
        seed=seed,
    )
    cache.put(spec, RunResult(observable=None, cycles=seed, completed=True))
    cache.get(spec)
    cache.evict(int(budget))
print("ok", cache.evictions)
"""


@pytest.mark.slow
class TestMultiprocessStress:
    def test_concurrent_writers_never_error_or_over_evict(self, tmp_path):
        shared = tmp_path / "cache"
        probe = ResultCache(shared)
        _fill(probe, 1, base=10_000)
        entry = probe.bytes_on_disk()
        budget = entry * 6
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", WORKER,
                 str(shared), str(1000 * (i + 1)), "30", str(budget)],
                env=default_repo_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for i in range(4)
        ]
        for proc in workers:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
            assert out.startswith(b"ok"), out
        # The lock is always released, every surviving entry is intact,
        # and the directory respects the budget within one entry of
        # slack (a final put may land after the last sweep).
        assert not (shared / ".evict.lock").exists()
        for path in shared.glob("*.pkl"):
            result = pickle.loads(path.read_bytes())
            assert isinstance(result, RunResult)
        final = ResultCache(shared, max_bytes=budget)
        assert final.bytes_on_disk() <= budget + entry
