"""Tests for the ALL-SYNC baseline (Section 3's [Lam86] alternative)."""

import pytest

from repro.analysis.comparison import compare_policies
from repro.core.operation import OpKind
from repro.memsys.config import NET_CACHE
from repro.memsys.system import run_program
from repro.models.base import BlockKind
from repro.models.policies import AllSyncPolicy, Def2Policy, policy_by_name
from repro.sc.verifier import SCVerifier
from repro.workloads.random_programs import random_racy_program
from repro.workloads.read_sharing import (
    expected_reader_sum,
    read_sharing_program,
)


class TestPolicySurface:
    def test_everything_is_sync_protocol(self):
        policy = AllSyncPolicy()
        for kind in OpKind:
            assert policy.sync_protocol(kind)
            assert policy.needs_exclusive(kind)
            assert policy.block_kind(kind) is BlockKind.COMMIT

    def test_lookup_by_name(self):
        assert isinstance(policy_by_name("all-sync"), AllSyncPolicy)


class TestCorrectness:
    def test_appears_sc_even_for_racy_programs(self):
        """Stronger than DEF2: with everything serialized through
        exclusive ownership and commit-blocking, even racy programs
        appear SC."""
        verifier = SCVerifier()
        for program_seed in range(8):
            program = random_racy_program(program_seed, num_procs=2, ops_per_proc=4)
            sc_set = verifier.sc_result_set(program)
            for hw_seed in range(4):
                run = run_program(program, AllSyncPolicy(), NET_CACHE, seed=hw_seed)
                assert run.completed
                assert run.observable in sc_set

    def test_read_sharing_checksums(self):
        program = read_sharing_program(num_readers=2, locations=3, passes=2)
        expected = expected_reader_sum(locations=3, passes=2)
        run = run_program(program, AllSyncPolicy(), NET_CACHE, seed=1)
        assert run.completed
        assert run.observable.register(1, "sum") == expected
        assert run.observable.register(2, "sum") == expected


class TestTheSection3Claim:
    def test_labels_beat_all_sync_on_read_sharing(self):
        """'Slow synchronization operations coupled with fast reads and
        writes will yield better performance than the alternative':
        DEF2 with DRF0 labels must beat ALL-SYNC hardware on
        read-sharing, in both cycles and protocol traffic."""
        comparisons = compare_policies(
            program_factory=lambda: read_sharing_program(3, 4, 3),
            policies=[Def2Policy, AllSyncPolicy],
            config=NET_CACHE,
            runs=4,
        )
        by_name = {c.policy_name: c for c in comparisons}
        assert by_name["DEF2"].mean_cycles < by_name["ALL-SYNC"].mean_cycles
        assert by_name["DEF2"].mean_messages < by_name["ALL-SYNC"].mean_messages
