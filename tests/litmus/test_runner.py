"""Unit tests for the litmus campaign runner."""

import pytest

from repro.litmus.catalog import fig1_dekker, message_passing_sync
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import NET_CACHE, NET_NOCACHE
from repro.models.policies import Def2Policy, RelaxedPolicy, SCPolicy


@pytest.fixture(scope="module")
def runner():
    return LitmusRunner()


class TestRunner:
    def test_histogram_sums_to_completed(self, runner):
        result = runner.run(fig1_dekker(), SCPolicy, NET_NOCACHE, runs=20)
        assert sum(result.histogram.values()) == result.completed_runs
        assert result.completed_runs == 20

    def test_sc_policy_never_violates(self, runner):
        result = runner.run(fig1_dekker(), SCPolicy, NET_NOCACHE, runs=30)
        assert not result.violated_sc
        assert result.forbidden_seen == 0

    def test_relaxed_violates_on_network(self, runner):
        result = runner.run(fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=60)
        assert result.violated_sc
        assert result.forbidden_seen > 0
        assert result.sc_violations.get(result.test.forbidden, 0) > 0

    def test_drf0_program_clean_on_def2(self, runner):
        result = runner.run(message_passing_sync(), Def2Policy, NET_CACHE, runs=25)
        assert not result.violated_sc
        assert result.completed_runs == 25

    def test_describe_marks_violations(self, runner):
        result = runner.run(fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=60)
        text = result.describe()
        assert "NOT SC" in text
        assert "forbidden" in text

    def test_mean_cycles_positive(self, runner):
        result = runner.run(fig1_dekker(), SCPolicy, NET_NOCACHE, runs=5)
        assert result.mean_cycles > 0

    def test_reproducible_with_same_base_seed(self, runner):
        a = runner.run(fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=15, base_seed=7)
        b = runner.run(fig1_dekker(), RelaxedPolicy, NET_NOCACHE, runs=15, base_seed=7)
        assert a.histogram == b.histogram

    def test_sc_outcomes_projection(self, runner):
        outcomes = runner.sc_outcomes(fig1_dekker())
        assert outcomes == {(0, 1), (1, 0), (1, 1)}
