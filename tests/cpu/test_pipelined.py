"""PipelinedCore: store-to-load forwarding, issue-window overlap, hazards.

The pipelined core implements parallelized-sequential-composition
semantics: accesses from one thread overlap in an issue window, and a
read may be satisfied by forwarding from the newest pending same-location
write.  These tests pin three things:

* forwarding is real and counted (``core.forwards``), happens only on
  plain data reads, and always selects the *newest* pending write;
* the reordering it produces is policy-gated: SC and ALL-SYNC declare
  ``allows_store_forwarding = False`` and never forward, and their
  verdicts stay SC;
* the per-(core, policy) outcome sets on the forwarding litmus battery
  are exactly as expected — the pipelined core widens the histogram on
  weak policies and nowhere else.

A structural note the expectations below encode: the cached network
configs use per-(src, dst) FIFO request channels into a single
directory, so a processor's read request can never overtake its *own*
earlier write request in the network.  The symmetric SC-forbidden
outcomes (both threads stale at once) are therefore architecturally
unreachable here even with forwarding — the core-originated reordering
shows up as one-sided stale reads and overlapping-read outcomes instead.
"""

from __future__ import annotations

import pytest

from repro.campaign import PolicySpec
from repro.core.program import Program, ThreadBuilder
from repro.litmus.catalog import (
    forwarding_catalog,
    mp_release_overlapping_reads,
    store_forward_chain,
    store_forward_coherence,
    store_forward_dekker,
)
from repro.litmus.runner import LitmusRunner
from repro.memsys.config import NET_CACHE
from repro.memsys.system import System
from repro.models.policies import policy_by_name
from repro.sim.stats import StallReason


RUNS = 30
BASE_SEED = 77

#: (core, policy) -> sorted outcome tuples observed on NET_CACHE with the
#: campaign above.  Pinned from the implementation run; any drift means
#: core or policy semantics moved.
VERDICTS = {
    "store_forward_dekker": {
        ("simple", "RELAXED"): [(1, 1, 1, 1)],
        ("simple", "SC"): [(1, 1, 1, 1)],
        ("simple", "DEF1"): [(1, 1, 1, 1)],
        ("simple", "DEF2"): [(1, 1, 1, 1)],
        ("simple", "DEF2-R"): [(1, 1, 1, 1)],
        ("simple", "ALL-SYNC"): [(1, 1, 1, 1)],
        ("pipelined", "RELAXED"): [(1, 0, 1, 1), (1, 1, 1, 0), (1, 1, 1, 1)],
        ("pipelined", "SC"): [(1, 1, 1, 1)],
        ("pipelined", "DEF1"): [(1, 0, 1, 1), (1, 1, 1, 0), (1, 1, 1, 1)],
        ("pipelined", "DEF2"): [(1, 0, 1, 1), (1, 1, 1, 0), (1, 1, 1, 1)],
        ("pipelined", "DEF2-R"): [(1, 0, 1, 1), (1, 1, 1, 0), (1, 1, 1, 1)],
        ("pipelined", "ALL-SYNC"): [(1, 1, 1, 1)],
    },
    "store_forward_chain": {
        ("simple", "RELAXED"): [(1, 0, 1)],
        ("simple", "SC"): [(1, 0, 1)],
        ("simple", "DEF1"): [(1, 0, 1)],
        ("simple", "DEF2"): [(1, 0, 1)],
        ("simple", "DEF2-R"): [(1, 0, 1)],
        ("simple", "ALL-SYNC"): [(1, 0, 1)],
        ("pipelined", "RELAXED"): [(1, 0, 0), (1, 0, 1), (1, 1, 1)],
        ("pipelined", "SC"): [(1, 0, 1)],
        ("pipelined", "DEF1"): [(1, 0, 0), (1, 0, 1), (1, 1, 1)],
        ("pipelined", "DEF2"): [(1, 0, 0), (1, 0, 1), (1, 1, 1)],
        ("pipelined", "DEF2-R"): [(1, 0, 0), (1, 0, 1), (1, 1, 1)],
        ("pipelined", "ALL-SYNC"): [(1, 0, 1)],
    },
    "mp_release_overlapping_reads": {
        ("simple", "RELAXED"): [(0, 42), (1, 42)],
        ("simple", "SC"): [(0, 42)],
        ("simple", "DEF1"): [(0, 42)],
        ("simple", "DEF2"): [(0, 42)],
        ("simple", "DEF2-R"): [(0, 42)],
        ("simple", "ALL-SYNC"): [(0, 42)],
        ("pipelined", "RELAXED"): [(0, 0), (0, 42), (1, 42)],
        ("pipelined", "SC"): [(0, 42)],
        ("pipelined", "DEF1"): [(0, 0), (0, 42)],
        ("pipelined", "DEF2"): [(0, 0), (0, 42)],
        ("pipelined", "DEF2-R"): [(0, 0), (0, 42)],
        ("pipelined", "ALL-SYNC"): [(0, 42)],
    },
}

CORES = ("simple", "pipelined")
POLICIES = ("RELAXED", "SC", "DEF1", "DEF2", "DEF2-R", "ALL-SYNC")
FORWARDING_POLICIES = ("RELAXED", "DEF1", "DEF2", "DEF2-R")


def _run_histogram(test, core, policy_name):
    runner = LitmusRunner()
    result = runner.run(
        test,
        lambda: policy_by_name(policy_name, core=core),
        NET_CACHE,
        runs=RUNS,
        base_seed=BASE_SEED,
    )
    return result


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize(
    "test_name", sorted(VERDICTS), ids=sorted(VERDICTS)
)
def test_per_policy_verdicts(test_name, core, policy_name):
    test = {t.name: t for t in forwarding_catalog()}[test_name]
    result = _run_histogram(test, core, policy_name)
    assert result.completed_runs == RUNS
    assert sorted(result.histogram) == sorted(VERDICTS[test_name][(core, policy_name)])
    # The SC-forbidden target outcome never survives the FIFO network.
    assert test.forbidden not in result.histogram


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("policy_name", POLICIES)
def test_coherence_forwards_newest_write(core, policy_name):
    """r1 must read 2 — the newest pending write — on every core/policy."""
    test = store_forward_coherence()
    result = _run_histogram(test, core, policy_name)
    assert result.completed_runs == RUNS
    assert all(outcome[0] == 2 for outcome in result.histogram)


@pytest.mark.parametrize("policy_name", FORWARDING_POLICIES)
def test_forwarding_counted(policy_name):
    """The three store-forwarding shapes actually forward on weak policies."""
    for test in (store_forward_dekker(), store_forward_chain(),
                 store_forward_coherence()):
        forwards = 0
        for seed in range(1, 11):
            system = System(
                test.program, policy_by_name(policy_name, core="pipelined"),
                NET_CACHE, seed=seed,
            )
            system.run()
            forwards += system.stats.count("core.forwards")

            system = System(
                test.program, policy_by_name(policy_name, core="simple"),
                NET_CACHE, seed=seed,
            )
            system.run()
            assert system.stats.count("core.forwards") == 0, test.name
        assert forwards > 0, test.name


@pytest.mark.parametrize("policy_name", ("SC", "ALL-SYNC"))
def test_forwarding_disabled_policies_never_forward(policy_name):
    assert not policy_by_name(policy_name).allows_store_forwarding
    for test in forwarding_catalog():
        system = System(
            test.program, policy_by_name(policy_name, core="pipelined"),
            NET_CACHE, seed=11,
        )
        system.run()
        assert system.stats.count("core.forwards") == 0, test.name


def test_window_full_stalls():
    """More independent misses than window slots stall on CORE_WINDOW_FULL."""
    builder = ThreadBuilder("P0")
    for i, loc in enumerate("abcdef"):
        builder = builder.store(loc, i + 1)
    program = Program([builder.build()], name="wide_stores")

    system = System(
        program, policy_by_name("RELAXED", core="pipelined"), NET_CACHE, seed=3
    )
    system.run()
    breakdown = system.stats.stall_breakdown()
    window_stalls = sum(
        cycles for (_proc, reason), cycles in breakdown.items()
        if reason is StallReason.CORE_WINDOW_FULL
    )
    assert window_stalls > 0

    system = System(
        program, policy_by_name("RELAXED", core="simple"), NET_CACHE, seed=3
    )
    system.run()
    assert not any(
        reason is StallReason.CORE_WINDOW_FULL
        for (_proc, reason) in system.stats.stall_breakdown()
    )


def test_scoreboard_raw_hazard():
    """A dependent store waits for the load that produces its operand."""
    t0 = ThreadBuilder("P0").load("r1", "x").store("y", "r1").build()
    program = Program([t0], name="raw_chain", initial_memory={"x": 9})
    system = System(
        program, policy_by_name("RELAXED", core="pipelined"), NET_CACHE, seed=5
    )
    run = system.run()
    assert run.completed
    assert system.processors[0].regs.read("r1") == 9
    assert system.final_memory()["y"] == 9
    breakdown = system.stats.stall_breakdown()
    raw_stalls = sum(
        cycles for (_proc, reason), cycles in breakdown.items()
        if reason is StallReason.READ_VALUE
    )
    assert raw_stalls > 0


def test_forwarding_only_plain_writes():
    """Sync writes never feed a forward: the read takes the memory path."""
    t0 = (
        ThreadBuilder("P0")
        .sync_store("x", 5)
        .load("r1", "x")
        .build()
    )
    program = Program([t0], name="sync_no_forward")
    system = System(
        program, policy_by_name("DEF2", core="pipelined"), NET_CACHE, seed=2
    )
    run = system.run()
    assert run.completed
    assert system.stats.count("core.forwards") == 0
    assert system.processors[0].regs.read("r1") == 5


def test_campaign_serial_parallel_identity():
    """Pipelined campaigns stay byte-identical across executors."""
    from repro.api import campaign as run_campaign

    runner = LitmusRunner()
    spec = PolicySpec.of(lambda: policy_by_name("DEF1", core="pipelined"))
    specs = runner.campaign_specs(
        store_forward_dekker(), spec, NET_CACHE, 8, 555
    )
    serial = run_campaign(specs, jobs=1)
    parallel = run_campaign(specs, jobs=4)
    for a, b in zip(serial.results, parallel.results):
        assert a.observable == b.observable
        assert a.cycles == b.cycles
        assert a.completed == b.completed


def test_core_rides_the_digest():
    """core= extends RunSpec digests append-only: default core leaves the
    digest exactly as it was before cores existed."""
    runner = LitmusRunner()
    test = store_forward_dekker()

    default = runner.campaign_specs(
        test, PolicySpec.of(lambda: policy_by_name("DEF1")), NET_CACHE, 1, 99
    )[0]
    explicit_simple = runner.campaign_specs(
        test,
        PolicySpec.of(lambda: policy_by_name("DEF1", core="simple")),
        NET_CACHE, 1, 99,
    )[0]
    pipelined = runner.campaign_specs(
        test,
        PolicySpec.of(lambda: policy_by_name("DEF1", core="pipelined")),
        NET_CACHE, 1, 99,
    )[0]

    assert default.digest() == explicit_simple.digest()
    assert pipelined.digest() != default.digest()
    assert "core=" not in repr(default.digest())


def test_unsupported_core_rejected():
    with pytest.raises(ValueError):
        policy_by_name("SC", core="no-such-core")

    class _Narrow:
        pass

    # A policy that names only the simple core refuses the pipelined one.
    policy = policy_by_name("SC")
    policy.supported_cores = ("simple",)
    from repro.memsys.system import ConfigurationError, ensure_compatible

    with pytest.raises(ConfigurationError):
        ensure_compatible(policy, NET_CACHE, "pipelined")


def test_mp_overlap_is_core_originated():
    """(0, 0) on the release-ordered MP shape needs the pipelined window:
    the x read is satisfied before the flag read completes."""
    test = mp_release_overlapping_reads()
    simple = _run_histogram(test, "simple", "DEF1")
    pipelined = _run_histogram(test, "pipelined", "DEF1")
    assert (0, 0) not in simple.histogram
    assert (0, 0) in pipelined.histogram
