"""JOURNAL — the durability overhead contract, measured.

A campaign journal buys crash-safety with three costs: the spec digests
computed up front, the JSON/pickle encoding per record, and an
``fsync`` per record (the default, power-fail durable) or per group
(``fsync_every=N``, durable against process kills — the chaos harness's
threat model — with a bounded window of re-executable work).

The per-record fsync is a *device-speed floor*, not code we can tune:
on sub-millisecond litmus runs it dominates, which is why the <5%
acceptance gate is stated against a representative soak campaign —
runs of several milliseconds, the kind worth resuming — in group-commit
mode.  Full-durability overhead and the resume-replay speedup are
printed and recorded alongside so the trajectory keeps all three
numbers honest.
"""

import os
import time

from repro.campaign import (
    CampaignJournal,
    PolicySpec,
    RunSpec,
    run_campaign,
)
from repro.memsys.config import NET_CACHE
from repro.models.policies import Def2Policy
from repro.workloads.ticket_lock import ticket_lock_program

RUNS = 20
REPEATS = 5
GROUP_COMMIT = 8


def journal_specs(runs=RUNS):
    """A representative soak campaign: a 4-proc ticket lock, ~10 ms/run."""
    program = ticket_lock_program(
        num_procs=4, acquisitions_per_proc=3, critical_work=8
    )
    policy = PolicySpec.of(Def2Policy)
    return [
        RunSpec(program=program, policy=policy, config=NET_CACHE, seed=seed)
        for seed in range(runs)
    ]


def measure_journal_overhead(tmp_dir, specs=None, repeats=REPEATS):
    """Best-of-N wall-clock for plain / journaled / group-commit / replay.

    The four variants are timed *interleaved*, one round each per
    repeat, so machine-load drift between phases cannot masquerade as
    journal overhead.  Shared by this benchmark and
    ``make_bench_json.py`` so the committed trajectory snapshot and the
    gated benchmark measure the same thing.
    """
    specs = specs or journal_specs()
    tmp_dir = str(tmp_dir)
    counter = [0]

    def journaled(fsync_every):
        counter[0] += 1
        path = os.path.join(tmp_dir, f"j-{fsync_every}-{counter[0]}.jsonl")
        with CampaignJournal(path, fsync_every=fsync_every) as journal:
            run_campaign(specs, journal=journal, label="bench-journal")

    run_campaign(specs)  # warm imports and caches outside the timed region
    warm = os.path.join(tmp_dir, "warm.jsonl")
    with CampaignJournal(warm) as journal:
        run_campaign(specs, journal=journal)

    variants = {
        "plain_s": lambda: run_campaign(specs),
        "durable_s": lambda: journaled(1),
        "grouped_s": lambda: journaled(GROUP_COMMIT),
        "replay_s": lambda: run_campaign(
            specs, journal=warm, label="bench-replay"
        ),
    }
    best = {name: float("inf") for name in variants}
    for _ in range(repeats):
        for name, fn in variants.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    plain_s = best["plain_s"]
    durable_s = best["durable_s"]
    grouped_s = best["grouped_s"]
    replay_s = best["replay_s"]
    return {
        "runs": len(specs),
        "plain_s": plain_s,
        "durable_s": durable_s,
        "grouped_s": grouped_s,
        "replay_s": replay_s,
        "group_commit": GROUP_COMMIT,
        "overhead_durable_pct": (durable_s / plain_s - 1.0) * 100.0,
        "overhead_grouped_pct": (grouped_s / plain_s - 1.0) * 100.0,
    }


def test_journal_overhead(benchmark, tmp_path):
    specs = journal_specs()
    stats = benchmark.pedantic(
        lambda: measure_journal_overhead(tmp_path, specs),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in stats.items()}
    )

    plain_s = stats["plain_s"]
    per_record_ms = (stats["durable_s"] - plain_s) / RUNS * 1e3
    print(f"\n[JOURNAL] {RUNS}-run ticket-lock campaign, best of {REPEATS}")
    print(f"  plain:                {plain_s * 1e3:8.2f} ms "
          f"({plain_s / RUNS * 1e3:.2f} ms/run)")
    print(f"  journal (fsync=1):    {stats['durable_s'] * 1e3:8.2f} ms "
          f"(+{stats['overhead_durable_pct']:.1f}%, "
          f"~{per_record_ms:.2f} ms/record)")
    print(f"  journal (fsync={GROUP_COMMIT}):    {stats['grouped_s'] * 1e3:8.2f} ms "
          f"(+{stats['overhead_grouped_pct']:.1f}%)")
    print(f"  resume replay:        {stats['replay_s'] * 1e3:8.2f} ms "
          f"({stats['replay_s'] / plain_s:.3f}x)")

    # Replaying a finished journal must be much cheaper than running it.
    assert stats["replay_s"] < plain_s * 0.5
    # Durable journaling is allowed to cost an fsync per record, but
    # never a multiple of the campaign itself on ~10 ms runs.
    assert stats["durable_s"] < plain_s * 1.5
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert stats["overhead_grouped_pct"] < 5.0, (
            f"journal group-commit overhead regressed: "
            f"+{stats['overhead_grouped_pct']:.1f}% (budget <5%)"
        )
